#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verification suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> network fault injection (single-threaded, deterministic)"
cargo test -q -p gridwatch-serve --test net_faults -- --test-threads=1
cargo test -q -p gridwatch-serve --test wire_roundtrip -- --test-threads=1
cargo test -q -p gridwatch-cli --test listen -- --test-threads=1

echo "CI OK"
