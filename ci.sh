#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verification suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> strict clippy on library crates (float-cmp, unwrap-used)"
cargo clippy -q -p gridwatch-timeseries -p gridwatch-grid -p gridwatch-core \
    -p gridwatch-detect -p gridwatch-serve -p gridwatch-obs -p gridwatch-store \
    -p gridwatch-sync --lib -- \
    -D warnings -D clippy::float_cmp -D clippy::unwrap_used

echo "==> gridwatch-audit: lint + concurrency pass + allowlist reconciliation"
# Prints the burn-down and concurrency trend lines; fails on any new
# violation (per-file rules, lock-order cycles, blocking-under-lock,
# condvar-no-loop) or stale allowlist entry.
cargo run -q -p gridwatch-audit --bin gridwatch-audit -- lint --concurrency --root .

echo "==> gridwatch-audit: fixture self-check"
# The bad corpus must FAIL (proves the rules fire, including the seeded
# AB/BA lock inversion) and the good corpus must pass (proves they
# don't over-fire).
bad_out=$(cargo run -q -p gridwatch-audit --bin gridwatch-audit -- --paths crates/audit/tests/fixtures/bad || true)
if ! grep -q "lock-cycle" <<< "$bad_out"; then
    echo "audit self-check FAILED: seeded lock inversion not flagged" >&2
    exit 1
fi
if cargo run -q -p gridwatch-audit --bin gridwatch-audit -- --paths crates/audit/tests/fixtures/bad > /dev/null; then
    echo "audit self-check FAILED: bad fixture corpus passed the lints" >&2
    exit 1
fi
cargo run -q -p gridwatch-audit --bin gridwatch-audit -- --paths crates/audit/tests/fixtures/good > /dev/null

echo "==> runtime lockdep unit tests (rank table + inversion panics)"
cargo test -q -p gridwatch-sync
cargo test -q -p gridwatch-sync --features validate

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> observability goldens (exposition format + stats schema)"
cargo test -q -p gridwatch-serve --lib -- \
    prometheus_exposition_is_pinned stats_dump_schema_is_pinned

echo "==> observability overhead gate (disabled tracing + exemplars must be free)"
# Hard-gates both disabled hot paths at <= 15ns/step and prints the
# fourth CI trend line: exemplar posture (retained / dropped / bytes).
cargo bench -q -p gridwatch-bench --bench obs_overhead

echo "==> network fault injection (single-threaded, deterministic)"
cargo test -q -p gridwatch-serve --test net_faults -- --test-threads=1
cargo test -q -p gridwatch-serve --test wire_roundtrip -- --test-threads=1
cargo test -q -p gridwatch-cli --test listen -- --test-threads=1

echo "==> multi-process shard fabric (single-threaded, real processes)"
cargo test -q -p gridwatch-serve --test fabric_equivalence -- --test-threads=1
cargo test -q -p gridwatch-serve --test fabric_faults -- --test-threads=1
cargo test -q -p gridwatch-cli --test fabric -- --test-threads=1

echo "==> fault suites under runtime lockdep (validate: rank checks armed)"
# Any lock-order inversion on the fabric merge, engine stats, TCP
# ingest, or flight-recorder paths panics with both stacks here.
cargo test -q -p gridwatch-serve --features validate --test net_faults -- --test-threads=1
cargo test -q -p gridwatch-serve --features validate --test fabric_faults -- --test-threads=1

echo "==> lockdep overhead gate (validate-off OrderedMutex must be free)"
cargo bench -q -p gridwatch-bench --bench lockdep_overhead

echo "==> history store: format goldens, corruption corpus, proptests"
cargo test -q -p gridwatch-store --test golden
cargo test -q -p gridwatch-store --test corruption
cargo test -q -p gridwatch-store --test proptests

echo "==> history store: crash consistency (SIGKILL mid-append, real processes)"
cargo test -q -p gridwatch-store --test crash_kill -- --test-threads=1

echo "==> history sink: retention bound + bit-identical score replay"
cargo test -q -p gridwatch-serve --test history_store

echo "==> chaos regimes: pinned per-regime goldens + drift pipeline e2e"
cargo test -q -p gridwatch-cli --test chaos

echo "==> drift detector: zero false rebuilds on stationary traces (proptest)"
cargo test -q -p gridwatch-detect --test drift_props

echo "==> adaptive sampling: bit-identical below the watermark (proptest)"
cargo test -q -p gridwatch-serve --test sampling_props

echo "==> scored chaos evaluation smoke (all shape checks must pass)"
cargo run -q --release -p gridwatch-cli -- eval --chaos \
    --machines 2 --max-pairs 10 --days 1

echo "==> drift overhead gate (disabled drift path must be free)"
cargo bench -q -p gridwatch-bench --bench chaos_step

echo "==> sketch gate: no oscillation at the threshold (proptest) + gated pipeline"
cargo test -q -p gridwatch-detect --test sketch_props

echo "==> sketch gate: sharded promotion parity + checkpointed candidates"
cargo test -q -p gridwatch-serve --test sketch_serve

echo "==> sketch overhead gate (disabled path <= 15ns/step) + posture trend line"
# Prints the third CI trend line: tracked pairs / materialized models /
# sketch bytes on the benchmark engine.
cargo bench -q -p gridwatch-bench --bench sketch_throughput

echo "==> compact row memory gate (quantized rows fit >= 4x models per GB)"
cargo bench -q -p gridwatch-bench --bench model_rss

echo "==> causal trace exemplars: fabric 7-stage coverage + report bit-identity"
cargo test -q -p gridwatch-serve --test trace_exemplars -- --test-threads=1

echo "==> trace query + health plane e2e (gridwatch trace, /healthz flip)"
cargo test -q -p gridwatch-cli --test trace -- --test-threads=1

echo "CI OK"
