//! Compare the paper's grid-Markov model against the baseline detectors
//! on the same simulated pair, across three regimes: normal operation, a
//! correlation-preserving load surge (should stay quiet), and a
//! correlation break (should alarm).
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use gridwatch::baselines::{
    GmmDetector, LinearInvariantDetector, MarkovDetector, PairDetector, ZScoreDetector,
};
use gridwatch::timeseries::{PairSeries, Point2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Training: a noisy linear pair at a steady load with occasional
    // flash crowds (so the correlation models have seen high values, but
    // they remain rare enough to be >3 sigma for a per-metric monitor).
    let history = PairSeries::from_samples((0..2000u64).map(|k| {
        let burst = if k % 20 < 3 { 0.35 } else { 0.0 };
        let load = 0.5 + 0.05 * (k as f64 * std::f64::consts::TAU / 240.0).sin() + burst;
        let jitter = 1.0 + 0.01 * (((k * 2654435761) % 97) as f64 / 97.0 - 0.5);
        (k * 360, 100.0 * load * jitter, 220.0 * load * jitter + 8.0)
    }))?;

    let mut detectors: Vec<Box<dyn PairDetector>> = vec![
        Box::new(MarkovDetector::default()),
        Box::new(LinearInvariantDetector::default()),
        Box::new(GmmDetector::default()),
        Box::new(ZScoreDetector::default()),
    ];
    for d in &mut detectors {
        d.fit(&history)?;
    }

    // Three probes: in-pattern, correlated surge at the top of the
    // trained range, and a broken relationship.
    let normal = Point2::new(50.0, 118.0);
    let surge = Point2::new(85.0, 195.0);
    let broken = Point2::new(50.0, 10.0);

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>9}",
        "detector", "normal", "surge", "broken", "validity"
    );
    for d in &mut detectors {
        // Give trajectory-aware detectors context before each probe.
        d.observe(Point2::new(48.0, 113.0));
        let s_normal = d.observe(normal);
        // Two steps into the surge, then probe: the flash crowd has been
        // underway for a couple of samples, as in the paper's Figure 1.
        d.observe(Point2::new(83.0, 190.0));
        d.observe(Point2::new(84.0, 192.0));
        let s_surge = d.observe(surge);
        d.observe(Point2::new(48.0, 113.0));
        let s_broken = d.observe(broken);
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>9.3}",
            d.name(),
            s_normal,
            s_surge,
            s_broken,
            d.validity()
        );
    }
    println!(
        "\nreading: the correlation-aware detectors keep the correlated surge \
         normal, while the\nper-metric z-score is the most alarmed by it — the \
         false-positive failure mode the\npaper's introduction describes. All \
         correlation methods drive the broken\nrelationship to ~0."
    );
    Ok(())
}
