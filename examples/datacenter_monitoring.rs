//! Monitor a simulated datacenter group end to end: generate a month of
//! telemetry with an injected fault, train the detection engine on the
//! first eight days, then stream the test day and report alarms.
//!
//! ```text
//! cargo run --release --example datacenter_monitoring
//! ```

use gridwatch::detect::{AlarmPolicy, DetectionEngine, EngineConfig, PairScreen, Snapshot};
use gridwatch::model::ModelConfig;
use gridwatch::sim::scenario::{figure12_fault_window, group_fault_scenario, TEST_DAY};
use gridwatch::timeseries::{AlignmentPolicy, GroupId, PairSeries, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One month of telemetry for a group-A-style infrastructure with a
    // correlation-breaking fault on the test day at 8-10am and a
    // correlation-preserving flash crowd at 4-5am.
    let scenario = group_fault_scenario(GroupId::A, 4, 7);
    let trace = &scenario.trace;
    println!(
        "simulated {} measurements on {} machines",
        trace.measurement_count(),
        4
    );

    // Train on days 0-7 over the screened (high-variance) pairs.
    let train_end = Timestamp::from_days(8);
    let mut training = std::collections::BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace.series(id).unwrap().slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        max_pairs: Some(40),
        ..PairScreen::default()
    };
    let pairs = screen.select(&training);
    let histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let config = EngineConfig {
        model: ModelConfig::builder().update_threshold(0.005).build()?,
        alarm: AlarmPolicy {
            system_threshold: 0.9,
            measurement_threshold: 0.55,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(histories, config)?;
    println!("watching {} measurement pairs", engine.model_count());

    // Stream the test day.
    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let mut alarms = Vec::new();
    for t in trace.interval().ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        let report = engine.step(&snap);
        alarms.extend(report.alarms);
    }

    let (fs, fe) = figure12_fault_window(GroupId::A);
    println!("\nground truth fault window: [{fs}, {fe})");
    println!("alarms raised ({}):", alarms.len());
    for alarm in &alarms {
        let in_window = alarm.at >= fs && alarm.at < fe;
        println!(
            "  {alarm}  {}",
            if in_window {
                "<-- inside fault window"
            } else {
                ""
            }
        );
    }
    Ok(())
}
