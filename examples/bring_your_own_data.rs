//! Run the detection pipeline on external monitoring data: parse a CSV
//! trace (the format monitoring agents export — one row per sample),
//! train, stream, and print an incident report. Here the "external"
//! CSV is generated in-memory; point [`Trace::read_csv`] at a file for
//! real data.
//!
//! ```text
//! cargo run --release --example bring_your_own_data
//! ```

use gridwatch::detect::{DetectionEngine, EngineConfig, IncidentReport, PairScreen, Snapshot};
use gridwatch::model::ModelConfig;
use gridwatch::sim::Trace;
use gridwatch::timeseries::{AlignmentPolicy, PairSeries, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An "external" CSV feed: three metrics on two machines, 4 days of
    // 6-minute samples, with machine-001's CPU breaking away from the
    // load on the last afternoon.
    let mut csv = String::from("timestamp_secs,group,machine,metric,value\n");
    for k in 0..(4 * 240u64) {
        let t = k * 360;
        let load = 0.5 + 0.3 * (k as f64 * std::f64::consts::TAU / 240.0).sin();
        let jitter = 1.0 + 0.01 * (((k * 69069) % 101) as f64 / 101.0 - 0.5);
        let broken = (3 * 86_400 + 14 * 3600..3 * 86_400 + 16 * 3600).contains(&t);
        let cpu1 = if broken {
            12.0 + ((k * 31) % 17) as f64 // stuck low, decoupled
        } else {
            70.0 * load * jitter
        };
        csv.push_str(&format!(
            "{t},A,machine-000,CpuUtilization,{:.3}\n",
            65.0 * load * jitter
        ));
        csv.push_str(&format!(
            "{t},A,machine-000,MemoryUsage,{:.3}\n",
            30.0 + 40.0 * load * jitter
        ));
        csv.push_str(&format!("{t},A,machine-001,CpuUtilization,{cpu1:.3}\n"));
    }

    let trace = Trace::from_csv_str(&csv)?;
    println!(
        "parsed {} measurements at {} sampling",
        trace.measurement_count(),
        trace.interval()
    );

    // Train on the first three days.
    let train_end = Timestamp::from_days(3);
    let mut training = std::collections::BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace.series(id).unwrap().slice(Timestamp::EPOCH, train_end),
        );
    }
    let histories: Vec<_> = PairScreen::default()
        .select(&training)
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let config = EngineConfig {
        model: ModelConfig::builder().update_threshold(0.005).build()?,
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(histories, config)?;

    // Stream day 4 and keep the lowest-scoring instant's board.
    let mut worst: Option<(f64, gridwatch::detect::ScoreBoard)> = None;
    for t in trace.interval().ticks(train_end, Timestamp::from_days(4)) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        let report = engine.step(&snap);
        if let Some(q) = report.scores.system_score() {
            if worst.as_ref().is_none_or(|(w, _)| q < *w) {
                worst = Some((q, report.scores));
            }
        }
    }
    let (q, board) = worst.expect("day 4 produced scores");
    println!("\nworst instant of day 4 (Q_t = {q:.4}):");
    println!("{}", IncidentReport::compile(&engine, &board, 3));
    Ok(())
}
