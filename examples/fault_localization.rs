//! Problem localization: degrade one machine of a simulated group and
//! drill down from the system score to the per-machine ranking, as in
//! the paper's Figure 14 workflow.
//!
//! ```text
//! cargo run --release --example fault_localization
//! ```

use std::collections::BTreeMap;

use gridwatch::detect::{DetectionEngine, EngineConfig, Localizer, PairScreen, Snapshot};
use gridwatch::model::ModelConfig;
use gridwatch::sim::scenario::{localization_scenario, TEST_DAY};
use gridwatch::timeseries::{AlignmentPolicy, GroupId, MachineId, PairSeries, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Machine 0 degrades for the whole test day: its load share collapses
    // and extra noise appears on all of its metrics.
    let scenario = localization_scenario(GroupId::B, 5, 13);
    let trace = &scenario.trace;

    let train_end = Timestamp::from_days(15);
    let mut training = BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace.series(id).unwrap().slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        ..PairScreen::default()
    };
    let histories: Vec<_> = screen
        .select(&training)
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let config = EngineConfig {
        model: ModelConfig::builder().update_threshold(0.005).build()?,
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(histories, config)?;

    // Accumulate per-machine averages over the test day.
    let mut acc: BTreeMap<MachineId, (f64, usize)> = BTreeMap::new();
    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let mut last_board = None;
    for t in trace.interval().ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        let report = engine.step(&snap);
        for (machine, q) in report.scores.machine_scores() {
            let e = acc.entry(machine).or_insert((0.0, 0));
            e.0 += q;
            e.1 += 1;
        }
        last_board = Some(report.scores);
    }

    println!("per-machine mean fitness over the test day (Figure 14 view):");
    let mut ranked: Vec<(MachineId, f64)> = acc
        .into_iter()
        .map(|(m, (sum, n))| (m, sum / n as f64))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (machine, q) in &ranked {
        let marker = if *machine == MachineId::new(0) {
            "   <-- ground-truth degraded machine"
        } else {
            ""
        };
        println!("  {machine}: {q:.4}{marker}");
    }

    // Final-instant drill-down: most suspect measurements.
    if let Some(board) = last_board {
        println!("\nmost suspect measurements at the last sample:");
        for s in Localizer::rank_measurements(&board).into_iter().take(5) {
            println!("  {}: {:.4}", s.id, s.score);
        }
    }
    assert_eq!(
        ranked[0].0,
        MachineId::new(0),
        "degraded machine ranks worst"
    );
    Ok(())
}
