//! Quickstart: learn a pairwise correlation model from history data and
//! score new observations online.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gridwatch::model::{ModelConfig, TransitionModel};
use gridwatch::timeseries::{PairSeries, Point2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // History: two measurements tied by a noisy linear relationship,
    // sampled every six minutes (the paper's setting).
    let history = PairSeries::from_samples((0..2000u64).map(|k| {
        let load = 50.0 + 30.0 * (k as f64 / 40.0).sin();
        let jitter = ((k * 7919) % 101) as f64 / 101.0 - 0.5;
        (k * 360, load + jitter, 2.0 * load + 5.0 + jitter)
    }))?;

    // M = (G, V): adaptive grid + transition probability matrix.
    let mut model = TransitionModel::fit(&history, ModelConfig::default())?;
    println!(
        "trained on {} transitions; grid {}x{} = {} cells",
        model.matrix().total_observations(),
        model.grid().columns(),
        model.grid().rows(),
        model.grid().cell_count()
    );

    // Score two hypothetical transitions from the same starting state: a
    // small in-pattern move versus a broken correlation (y collapses).
    let from = Point2::new(60.0, 125.0);
    let normal_score = model
        .score_transition(from, Point2::new(61.0, 127.0))
        .expect("starting point is inside the grid");
    let broken_score = model
        .score_transition(from, Point2::new(61.0, 50.0))
        .expect("starting point is inside the grid");
    println!(
        "normal transition: fitness {:.3}, probability {:.3e} (rank {:?} of {})",
        normal_score.fitness(),
        normal_score.probability(),
        normal_score.rank(),
        normal_score.cell_count()
    );
    println!(
        "broken transition: fitness {:.3}, probability {:.3e} (rank {:?} of {})",
        broken_score.fitness(),
        broken_score.probability(),
        broken_score.rank(),
        broken_score.cell_count()
    );
    // The paper alarms when P(x_t -> x_{t+1}) drops below a threshold δ;
    // the broken transition's probability collapses even when its
    // rank-based fitness only dips.
    assert!(broken_score.probability() < normal_score.probability() / 10.0);
    // Online use updates the model as data streams in.
    let outcome = model.observe(Point2::new(60.0, 125.0));
    println!(
        "streamed one observation: updated = {}, extended = {}",
        outcome.updated, outcome.extended
    );

    // The paper's human-debugging output: the offending value ranges.
    if let Some(cell) = broken_score.destination() {
        println!(
            "anomalous values fell into cell ranges {}",
            model.cell_ranges(cell)
        );
    }
    assert!(normal_score.fitness() >= broken_score.fitness());
    Ok(())
}
