//! The paper's Figure 13(a) in miniature: an offline model (trained
//! once) versus an adaptive model (updated online) on drifting data —
//! the adaptive model keeps its fitness as the distribution moves.
//!
//! ```text
//! cargo run --release --example adaptive_vs_offline
//! ```

use gridwatch::model::{ModelConfig, TransitionModel};
use gridwatch::timeseries::{PairSeries, Point2};

fn value_at(k: u64, drift: f64) -> (f64, f64) {
    let load = 50.0 + 20.0 * (k as f64 / 40.0).sin() + drift;
    let jitter = (((k * 48271) % 89) as f64 / 89.0 - 0.5) * 0.8;
    (load + jitter, 2.0 * load - 10.0 + jitter)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One day of history with no drift.
    let history = PairSeries::from_samples((0..240u64).map(|k| {
        let (x, y) = value_at(k, 0.0);
        (k * 360, x, y)
    }))?;

    let mut offline = TransitionModel::fit(&history, ModelConfig::default().frozen())?;
    let mut adaptive = TransitionModel::fit(&history, ModelConfig::default())?;

    // Five days of test data whose level drifts upward day by day.
    let mut sums = (0.0f64, 0.0f64);
    let mut count = 0usize;
    println!("{:>4} {:>12} {:>12}", "day", "offline Q", "adaptive Q");
    for day in 0..5u64 {
        let mut day_sums = (0.0f64, 0.0f64);
        let mut day_count = 0usize;
        for k in 0..240u64 {
            let t = 240 + day * 240 + k;
            let drift = day as f64 * 6.0 + k as f64 * 0.025;
            let (x, y) = value_at(t, drift);
            let p = Point2::new(x, y);
            if let Some(s) = offline.observe(p).score {
                day_sums.0 += s.fitness();
                day_count += 1;
            }
            if let Some(s) = adaptive.observe(p).score {
                day_sums.1 += s.fitness();
            }
        }
        println!(
            "{:>4} {:>12.4} {:>12.4}",
            day + 1,
            day_sums.0 / day_count as f64,
            day_sums.1 / day_count as f64
        );
        sums.0 += day_sums.0;
        sums.1 += day_sums.1;
        count += day_count;
    }
    let (offline_avg, adaptive_avg) = (sums.0 / count as f64, sums.1 / count as f64);
    println!("\noverall: offline {offline_avg:.4}, adaptive {adaptive_avg:.4}");
    println!(
        "grid growth: offline {} extensions, adaptive {} extensions",
        offline.extensions(),
        adaptive.extensions()
    );
    assert!(
        adaptive_avg > offline_avg,
        "adaptation must help under drift"
    );
    Ok(())
}
