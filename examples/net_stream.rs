//! Stream live snapshots into a running `gridwatch serve --listen`
//! session over TCP, using the length-prefixed JSON wire encoding.
//!
//! ```text
//! gridwatch serve --listen 127.0.0.1:7700 --engine engine.json &
//! cargo run --example net_stream -- 127.0.0.1:7700
//! ```

use std::io::Write;
use std::net::TcpStream;

use gridwatch::detect::Snapshot;
use gridwatch::serve::{encode_json, WireFrame};
use gridwatch::timeseries::{MachineId, MeasurementId, MetricKind, Timestamp};

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let mut conn = match TcpStream::connect(&addr) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("no listener at {addr} ({e}); start `gridwatch serve --listen {addr}`");
            return Ok(());
        }
    };

    let cpu = MeasurementId::new(MachineId::new(3), MetricKind::CpuUtilization);
    let io = MeasurementId::new(MachineId::new(3), MetricKind::IoThroughput);
    for seq in 0..20u64 {
        // One frame per 6-minute step: every frame carries a monotonic
        // per-source sequence number, so the server can re-order and
        // de-duplicate across reconnects.
        let load = 40.0 + 10.0 * (seq as f64 / 3.0).sin();
        let mut snap = Snapshot::new(Timestamp::from_secs(seq * 360));
        snap.insert(cpu, load);
        snap.insert(io, 2.5 * load + 12.0);
        let frame = WireFrame {
            source: "example-sender".to_string(),
            seq,
            snapshot: snap,
        };
        conn.write_all(&encode_json(&frame).expect("encodable frame"))?;
    }
    println!("streamed 20 frames to {addr}");
    Ok(())
}
