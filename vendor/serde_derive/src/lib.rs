//! Vendored offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. This crate
//! re-implements the `#[derive(Serialize, Deserialize)]` macros for the
//! subset of Rust shapes this workspace actually uses:
//!
//! - structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip)]`),
//! - tuple structs (newtype structs serialize transparently),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generic types and the rest of serde's attribute language are not
//! supported and fail with a compile error. The generated code targets the
//! simplified data model of the vendored `serde` crate (`serde::Content`),
//! not real serde's `Serializer`/`Deserializer` traits.
//!
//! The macro is implemented without `syn`/`quote`: the input item is parsed
//! directly from the `proc_macro::TokenStream`, and the generated impl is
//! assembled as a string and re-parsed, which keeps this crate entirely
//! dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    skip: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Serde-relevant flags found in one attribute list.
#[derive(Default)]
struct SerdeFlags {
    default: bool,
    skip: bool,
}

/// Consumes leading attributes at `i`, returning any serde flags seen.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> SerdeFlags {
    let mut flags = SerdeFlags::default();
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            match flag.to_string().as_str() {
                                "default" => flags.default = true,
                                "skip" => flags.skip = true,
                                other => panic!(
                                    "vendored serde_derive does not support #[serde({other})]"
                                ),
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    flags
}

/// Consumes an optional `pub` / `pub(...)` visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    };
    Item { name, kind }
}

/// Skips one type expression, stopping after the top-level `,` (or at the
/// end of the stream). Tracks `<`/`>` nesting so commas inside generic
/// arguments are not treated as field separators; `->` is ignored.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if !prev_dash => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        *i += 1;
                        return;
                    }
                    _ => {}
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let flags = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default: flags.default,
            skip: flags.skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let flags = skip_attributes(&tokens, &mut i);
        if flags.default || flags.skip {
            panic!("vendored serde_derive does not support serde attributes on tuple fields");
        }
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("vendored serde_derive does not support explicit discriminants")
            }
            None => {}
            other => panic!("expected `,` after variant `{name}`, found {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut __f: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__f.push((\"{n}\".to_string(), \
                     ::serde::Serialize::to_content(&self.{n})?));\n",
                    n = f.name
                ));
            }
            s.push_str("::std::result::Result::Ok(::serde::Content::Struct(__f))");
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k})?"))
                .collect();
            format!(
                "::std::result::Result::Ok(::serde::Content::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            "::std::result::Result::Ok(::serde::Content::Null)".to_string()
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::std::result::Result::Ok(::serde::Content::Str(\"{vn}\".to_string())),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__a0) => ::std::result::Result::Ok(\
                         ::serde::Content::variant(\"{vn}\", \
                         ::serde::Serialize::to_content(__a0)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__a{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})?"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::std::result::Result::Ok(\
                             ::serde::Content::variant(\"{vn}\", \
                             ::serde::Content::Seq(vec![{}]))),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "__f.push((\"{n}\".to_string(), \
                                 ::serde::Serialize::to_content({n})?));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __f: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Content)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::std::result::Result::Ok(::serde::Content::variant(\"{vn}\", \
                             ::serde::Content::Struct(__f)))\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::std::result::Result<::serde::Content, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// One named field's initializer inside a braced constructor.
fn named_field_init(ty: &str, accessor: &str, f: &Field) -> String {
    if f.skip {
        return format!("{n}: ::std::default::Default::default(),\n", n = f.name);
    }
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty}\", \"{n}\"))",
            n = f.name
        )
    };
    format!(
        "{n}: match {accessor}.get_field(\"{ty}\", \"{n}\")? {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| named_field_init(name, "__c", f))
                .collect();
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                .collect();
            format!(
                "let __s = __c.seq_items(\"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let __p = ::serde::Content::payload(__p, \"{name}::{vn}\")?;\n\
                         ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_content(__p)?))\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __p = ::serde::Content::payload(__p, \"{name}::{vn}\")?;\n\
                             let __s = __p.seq_items(\"{name}::{vn}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let ty = format!("{name}::{vn}");
                        let inits: String = fields
                            .iter()
                            .map(|f| named_field_init(&ty, "__p", f))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __p = ::serde::Content::payload(__p, \"{ty}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "let (__v, __p) = __c.variant_parts(\"{name}\")?;\n\
                 match __v {{\n\
                 {arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(\"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}
