//! Vendored offline stand-in for `criterion`.
//!
//! Implements the bench-definition API this workspace uses — groups,
//! `bench_with_input` / `bench_function`, `iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop
//! instead of upstream's statistical machinery. Each benchmark prints its
//! per-iteration min / mean / max to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The stand-in accepts and
    /// ignores the harness arguments cargo-bench passes (e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_benchmark(&id.into(), sample_size, measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label());
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Converts to a benchmark id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// How much setup output to batch per timing in
/// [`Bencher::iter_batched`]; the stand-in times one routine call per
/// setup regardless, so variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values; many per batch upstream.
    SmallInput,
    /// Large setup values; few per batch upstream.
    LargeInput,
    /// Fresh setup value for every iteration.
    PerIteration,
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: scale iterations-per-sample so one sample costs
        // roughly measurement_time / sample_size, min 1 iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label}: mean {} [min {}, max {}] over {} samples",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Defines a benchmark group entry point callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        for &n in &[4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * n));
            });
        }
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    criterion_group!(benches, bench_square);

    #[test]
    fn group_macro_and_harness_run() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fit", 32).label(), "fit/32");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
    }
}
