//! Vendored offline stand-in for `crossbeam`.
//!
//! Provides the two crossbeam facilities this workspace uses:
//!
//! - [`thread::scope`] — scoped threads, implemented over
//!   [`std::thread::scope`] (available since Rust 1.63) with crossbeam's
//!   closure signature (`|scope| scope.spawn(|_| ...)`);
//! - [`channel`] — MPMC channels (bounded and unbounded) built on a
//!   mutex-protected ring with condvars. Semantics match crossbeam's for
//!   the operations offered: `send` blocks when full, `try_send` fails fast,
//!   receivers are cloneable, and disconnection is reported once the other
//!   side is fully dropped.

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    use std::any::Any;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so
        /// nested spawns work as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads),
    /// this wrapper propagates panics from `std::thread::scope` and
    /// otherwise always returns `Ok`; callers' `.expect(..)` styles keep
    /// working.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channels with crossbeam's API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending side of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving side of a channel; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a bounded MPMC channel of the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(capacity))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        shared
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.capacity.is_some_and(|cap| inner.queue.len() >= cap);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when at capacity,
        /// [`TrySendError::Disconnected`] when all receivers are gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.capacity.is_some_and(|cap| inner.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.shared);
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.shared);
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn bounded_channel_blocks_and_flows() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(rx.recv().is_err());

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn mpmc_receivers_share_the_stream() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        for k in 0..100 {
            tx.send(k).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        let (a, b) = super::thread::scope(|scope| {
            let h1 = scope.spawn(move |_| {
                let mut v = Vec::new();
                while let Ok(x) = rx1.recv() {
                    v.push(x);
                }
                v
            });
            let h2 = scope.spawn(move |_| {
                let mut v = Vec::new();
                while let Ok(x) = rx2.recv() {
                    v.push(x);
                }
                v
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        seen.extend(a);
        seen.extend(b);
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_pipeline() {
        let (tx, rx) = bounded::<u64>(4);
        let sum = super::thread::scope(|scope| {
            let producer = scope.spawn(move |_| {
                for k in 0..1000u64 {
                    tx.send(k).unwrap();
                }
            });
            let consumer = scope.spawn(move |_| {
                let mut total = 0u64;
                while let Ok(v) = rx.recv() {
                    total += v;
                }
                total
            });
            producer.join().unwrap();
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
