//! Vendored offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronisation primitives behind parking_lot's panic-free
//! API: lock methods return guards directly (a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's no-poisoning
//! semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
