//! Vendored offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! subset of serde's API this workspace uses, built around a simplified
//! self-describing data model ([`Content`]) instead of real serde's
//! visitor-based `Serializer`/`Deserializer` traits:
//!
//! - [`Serialize`] converts a value into a [`Content`] tree;
//! - [`Deserialize`] reconstructs a value from a [`Content`] tree;
//! - the `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//!   vendored `serde_derive`) generate those conversions for structs and
//!   enums, honouring `#[serde(default)]` and `#[serde(skip)]`.
//!
//! The vendored `serde_json` crate renders [`Content`] trees to JSON text
//! and parses them back. Formats match real serde's externally-tagged
//! defaults closely enough that persisted files look conventional, but the
//! two implementations are **not** wire-compatible in general — this
//! workspace only ever reads JSON it wrote itself.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Errors produced while converting to or from [`Content`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::custom(format!("unknown variant `{variant}` for {ty}"))
    }

    /// The content tree had the wrong shape.
    pub fn invalid_type(expected: &str, found: &Content) -> Self {
        Error::custom(format!(
            "invalid type: expected {expected}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A self-describing value tree — the vendored serde data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Content>),
    /// String-keyed fields (JSON object); produced by struct serialization.
    Struct(Vec<(String, Content)>),
    /// A map with arbitrary keys (rendered as an object when keys are
    /// string-like, as an array of `[key, value]` pairs otherwise).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Builds an externally-tagged enum variant payload.
    pub fn variant(name: &str, payload: Content) -> Content {
        Content::Struct(vec![(name.to_string(), payload)])
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Struct(_) => "object",
            Content::Map(_) => "map",
        }
    }

    /// Looks up a named field on an object-like content tree.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not object-like.
    pub fn get_field(&self, ty: &str, name: &str) -> Result<Option<&Content>, Error> {
        match self {
            Content::Struct(fields) => Ok(fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            Content::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
                .map(|(_, v)| v)),
            other => Err(Error::custom(format!(
                "expected an object for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the content as a sequence of exactly `n` items.
    pub fn seq_items(&self, ty: &str, n: usize) -> Result<&[Content], Error> {
        match self {
            Content::Seq(items) if items.len() == n => Ok(items),
            Content::Seq(items) => Err(Error::custom(format!(
                "expected {n} elements for {ty}, found {}",
                items.len()
            ))),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }

    /// Splits an externally-tagged enum content into `(tag, payload)`.
    pub fn variant_parts(&self, ty: &str) -> Result<(&str, Option<&Content>), Error> {
        match self {
            Content::Str(s) => Ok((s, None)),
            Content::Struct(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            Content::Map(entries) if entries.len() == 1 => match &entries[0].0 {
                Content::Str(s) => Ok((s, Some(&entries[0].1))),
                other => Err(Error::custom(format!(
                    "expected a string variant tag for {ty}, found {}",
                    other.kind()
                ))),
            },
            other => Err(Error::custom(format!(
                "expected an enum variant for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps an enum variant's payload, erroring when absent.
    pub fn payload<'a>(payload: Option<&'a Content>, ty: &str) -> Result<&'a Content, Error> {
        payload.ok_or_else(|| Error::custom(format!("variant {ty} requires a payload")))
    }
}

/// Types convertible into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a content tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented.
    fn to_content(&self) -> Result<Content, Error>;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree has the wrong shape.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Result<Content, Error> {
                Ok(Content::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    // Map keys arrive as strings (JSON object keys).
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|e| Error::custom(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(Error::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Result<Content, Error> {
                Ok(Content::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom(format!("integer {v} out of range")))?,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|e| Error::custom(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (as in real serde_json);
            // restoring them as NaN keeps roundtrips total.
            Content::Null => Ok(f64::NAN),
            other => Err(Error::invalid_type("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Bool(*self))
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Str(self.to_string()))
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::invalid_type("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Str(self.clone()))
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Result<Content, Error> {
        (**self).to_content()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Result<Content, Error> {
        match self {
            None => Ok(Content::Null),
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Seq(
            self.iter()
                .map(Serialize::to_content)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Seq(
            self.iter()
                .map(Serialize::to_content)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Seq(
            self.iter()
                .map(Serialize::to_content)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Result<Content, Error> {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let items = Vec::<T>::from_content(c)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, found {n}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(Content::Seq(
            self.iter()
                .map(Serialize::to_content)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }
}

fn map_to_content<'a, K, V, I>(entries: I) -> Result<Content, Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Content, Content)> = entries
        .map(|(k, v)| Ok((k.to_content()?, v.to_content()?)))
        .collect::<Result<_, Error>>()?;
    Ok(Content::Map(pairs))
}

fn map_from_content<K: Deserialize, V: Deserialize>(c: &Content) -> Result<Vec<(K, V)>, Error> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        Content::Struct(fields) => fields
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect(),
        // Maps with structured keys are written as arrays of [key, value].
        Content::Seq(items) => items
            .iter()
            .map(|entry| {
                let pair = entry.seq_items("map entry", 2)?;
                Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
            })
            .collect(),
        other => Err(Error::invalid_type("map", other)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Result<Content, Error> {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Result<Content, Error> {
        // Deterministic output: sort entries by their serialized key.
        let mut pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| Ok((k.to_content()?, v.to_content()?)))
            .collect::<Result<_, Error>>()?;
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Ok(Content::Map(pairs))
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Result<Content, Error> {
                Ok(Content::Seq(vec![$(self.$n.to_content()?),+]))
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($n)),+].len();
                let items = c.seq_items("tuple", LEN)?;
                Ok(($($t::from_content(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Content {
    fn to_content(&self) -> Result<Content, Error> {
        Ok(self.clone())
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content().unwrap()).unwrap(), 42);
        assert_eq!(
            i64::from_content(&(-7i64).to_content().unwrap()).unwrap(),
            -7
        );
        assert_eq!(
            f64::from_content(&1.5f64.to_content().unwrap()).unwrap(),
            1.5
        );
        assert!(bool::from_content(&true.to_content().unwrap()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let c = v.to_content().unwrap();
        assert_eq!(Vec::<(u64, f64)>::from_content(&c).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(5usize, "five".to_string());
        let c = m.to_content().unwrap();
        assert_eq!(BTreeMap::<usize, String>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn option_null_roundtrip() {
        let c = Option::<u64>::None.to_content().unwrap();
        assert_eq!(c, Content::Null);
        assert_eq!(Option::<u64>::from_content(&c).unwrap(), None);
        let c = Some(9u64).to_content().unwrap();
        assert_eq!(Option::<u64>::from_content(&c).unwrap(), Some(9));
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1.0f64, 2.0];
        let c = a.to_content().unwrap();
        assert_eq!(<[f64; 2]>::from_content(&c).unwrap(), a);
        assert!(<[f64; 3]>::from_content(&c).is_err());
    }
}
