//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / regex-string
//! strategies, `collection::{vec, btree_set}`, `num::f64` class strategies,
//! `any`, [`test_runner::ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test path mixed with the case index), so failures are reproducible run
//! to run. Unlike upstream proptest there is no shrinking: a failing case
//! reports its seed and message as-is.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_range_inclusive_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    if end < <$t>::MAX {
                        rng.random_range(start..end + 1)
                    } else if start > <$t>::MIN {
                        rng.random_range(start - 1..end).wrapping_add(1)
                    } else {
                        // Full domain: raw bits are already uniform.
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_range_inclusive_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            // Scale raw bits over the closed unit interval so `end` is
            // reachable, then lerp.
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            start + (end - start) * unit
        }
    }

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut StdRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            loop {
                if let Some(c) = char::from_u32(rng.random_range(lo..hi)) {
                    return c;
                }
            }
        }
    }

    /// `&str` regex-subset strategies: char classes `[a-z0-9_]`, repetition
    /// `{m}` / `{m,n}` / `+` / `*` / `?`, escapes, and literal characters.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
        let mut ranges = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match chars.next() {
                None => panic!("unterminated character class in pattern"),
                Some(']') => break,
                Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                    let start = prev.take().unwrap();
                    let end = chars.next().unwrap();
                    ranges.push((start, end));
                }
                Some('\\') => {
                    if let Some(p) = prev.replace(chars.next().unwrap()) {
                        ranges.push((p, p));
                    }
                }
                Some(c) => {
                    if let Some(p) = prev.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
        if let Some(p) = prev {
            ranges.push((p, p));
        }
        assert!(!ranges.is_empty(), "empty character class in pattern");
        Atom::Class(ranges)
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        match chars.peek() {
            Some('+') => {
                chars.next();
                Some((1, 8))
            }
            Some('*') => {
                chars.next();
                Some((0, 8))
            }
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                };
                Some((lo, hi))
            }
            _ => None,
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => parse_class(&mut chars),
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                '.' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]),
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_repeat(&mut chars).unwrap_or((1, 1));
            let count = if lo == hi {
                lo
            } else {
                rng.random_range(lo..hi + 1)
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(ch) => out.push(*ch),
                    Atom::Class(ranges) => {
                        let (start, end) = ranges[rng.random_range(0..ranges.len())];
                        let code = rng.random_range(start as u32..end as u32 + 1);
                        out.push(char::from_u32(code).unwrap_or(start));
                    }
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+),)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
    }

    /// Collection strategies (`vec`, `btree_set`).
    pub mod collection {
        use super::{BTreeSet, Rng};
        use super::{Range, StdRng, Strategy};

        /// A strategy for `Vec`s with lengths drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of `element` values with `size` entries.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for `BTreeSet`s with target sizes drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates sets of `element` values aiming for `size` entries
        /// (duplicates permitting).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            assert!(size.start < size.end, "empty size range");
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let target = rng.random_range(self.size.clone());
                let mut set = BTreeSet::new();
                // Duplicates shrink the set below target; bound the retries
                // so degenerate element domains still terminate.
                for _ in 0..target * 20 + 50 {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }
    }

    /// Numeric class strategies (`num::f64::NORMAL | num::f64::ZERO`, ...).
    pub mod num {
        /// Class-based `f64` strategies.
        pub mod f64 {
            use super::super::{StdRng, Strategy};
            use rand::Rng;
            use std::ops::BitOr;

            /// A union of floating-point classes usable as a strategy.
            #[derive(Debug, Clone, Copy, PartialEq, Eq)]
            pub struct FloatClass(u32);

            /// Normal (non-zero, non-subnormal) finite values of either sign.
            pub const NORMAL: FloatClass = FloatClass(1);
            /// Positive or negative zero.
            pub const ZERO: FloatClass = FloatClass(1 << 1);
            /// Subnormal values of either sign.
            pub const SUBNORMAL: FloatClass = FloatClass(1 << 2);
            /// Positive or negative infinity.
            pub const INFINITE: FloatClass = FloatClass(1 << 3);

            impl BitOr for FloatClass {
                type Output = FloatClass;
                fn bitor(self, rhs: FloatClass) -> FloatClass {
                    FloatClass(self.0 | rhs.0)
                }
            }

            impl Strategy for FloatClass {
                type Value = f64;
                fn generate(&self, rng: &mut StdRng) -> f64 {
                    let classes: Vec<FloatClass> = [NORMAL, ZERO, SUBNORMAL, INFINITE]
                        .into_iter()
                        .filter(|c| self.0 & c.0 != 0)
                        .collect();
                    assert!(!classes.is_empty(), "empty float class");
                    let sign = (rng.next_u64() & 1) << 63;
                    match classes[rng.random_range(0..classes.len())] {
                        c if c == ZERO => f64::from_bits(sign),
                        c if c == INFINITE => f64::from_bits(sign | f64::INFINITY.to_bits()),
                        c if c == SUBNORMAL => {
                            let mantissa = rng.random_range(1u64..1 << 52);
                            f64::from_bits(sign | mantissa)
                        }
                        _ => {
                            let exponent = rng.random_range(1u64..2047) << 52;
                            let mantissa = rng.next_u64() >> 12;
                            f64::from_bits(sign | exponent | mantissa)
                        }
                    }
                }
            }
        }
    }
}

/// [`Arbitrary`](arbitrary::Arbitrary) and [`any`](arbitrary::any).
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (e.g. `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_arbitrary_primitive {
        ($($t:ty => $gen:expr,)*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let f: fn(&mut StdRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }
    impl_arbitrary_primitive! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| (rng.next_u64() >> 32) as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
        f64 => |rng| rng.random::<f64>(),
    }
}

pub mod test_runner {
    //! Test-run configuration and case-level error reporting.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config that runs `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count
        /// against the budget of successful cases.
        Reject(String),
        /// An assertion in the case body failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }
}

/// Deterministic per-test, per-case seed (FNV-1a of the test path mixed
/// with the case counter). Not part of the public proptest API.
#[doc(hidden)]
pub fn __seed(test_path: &str, case: u32) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1))
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempt: u32 = 0;
            while __passed < __cfg.cases {
                let __seed = $crate::__seed(__path, __attempt);
                __attempt += 1;
                if __attempt > __cfg.cases.saturating_mul(16) + 256 {
                    panic!(
                        "proptest {}: too many rejected cases ({} passed of {})",
                        __path, __passed, __cfg.cases
                    );
                }
                let mut __rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(__seed);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed (case seed {:#x}): {}",
                            __path, __seed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Rejects the current case (without failing) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::strategy::{collection, num};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_strategy_matches_shape() {
        use crate::strategy::Strategy;
        let mut rng = <crate::__StdRng as crate::__SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_hold_bounds(
            n in 1usize..10,
            xs in prop::collection::vec(0u64..100, 2..20),
            set in prop::collection::btree_set(0u32..1000, 1..30),
            q in 0.0f64..=1.0,
            flag in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(!set.is_empty() && set.len() < 30);
            prop_assert!((0.0..=1.0).contains(&q));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn float_classes_generate_members(v in prop::num::f64::NORMAL | prop::num::f64::ZERO) {
            prop_assert!(v == 0.0 || v.is_normal(), "unexpected value {v}");
        }

        #[test]
        fn prop_map_applies(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
