//! Vendored offline stand-in for `rand` 0.9.
//!
//! Provides the subset of the rand API this workspace uses: the [`Rng`]
//! trait with `random`/`random_range`/`random_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator than the real crate's ChaCha12, so seeded streams differ from
//! upstream rand. Everything in this workspace only relies on streams being
//! deterministic per seed and statistically uniform, both of which hold.

use std::ops::Range;

/// A random number generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a supported type (`f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        (self.random::<f64>()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::random`] can produce.
pub trait Random {
    /// Draws one uniformly random value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::random_range`] can sample.
pub trait UniformRange: Sized {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Lemire's debiased multiply-shift rejection sampling.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if m as u64 >= threshold {
                        break range.start.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + (range.end - range.start) * rng.random::<f64>()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; not reproducible against the
    /// real rand crate's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
