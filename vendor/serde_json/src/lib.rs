//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Content`] data model to JSON text and
//! parses it back. Floats are written with Rust's `{}` formatting, which
//! produces the shortest decimal string that round-trips to the same bits
//! (the guarantee the real crate's `float_roundtrip` feature provides), and
//! parsed with `f64::from_str`, which is correctly rounded — so
//! serialize→deserialize restores models bit-identically.
//!
//! Conventions (self-consistent; files written here are read back here):
//! - maps with string or numeric keys become JSON objects (numeric keys are
//!   stringified, as in real serde_json);
//! - maps with structured keys become arrays of `[key, value]` pairs (real
//!   serde_json errors on those — this crate chooses to support them);
//! - non-finite floats serialize as `null` and deserialize as NaN.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Error raised by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// A `Result` alias matching the real crate's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value cannot be represented.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value.to_content()?;
    let mut out = String::new();
    write_content(&mut out, &content);
    Ok(out)
}

/// Serializes a value to indented JSON.
///
/// # Errors
///
/// Returns an error when the value cannot be represented.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value.to_content()?;
    let mut out = String::new();
    write_content_pretty(&mut out, &content, 0);
    Ok(out)
}

/// Serializes a value to a JSON byte vector.
///
/// # Errors
///
/// Returns an error when the value cannot be represented.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `1.0f64` formats as "1"; keep it a float token so integers and
        // floats stay distinguishable when reparsed.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a map key: string-like keys become JSON object keys.
fn key_string(key: &Content) -> Option<String> {
    match key {
        Content::Str(s) => Some(s.clone()),
        Content::U64(v) => Some(v.to_string()),
        Content::I64(v) => Some(v.to_string()),
        Content::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Struct(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
        Content::Map(entries) => {
            let keys: Option<Vec<String>> = entries.iter().map(|(k, _)| key_string(k)).collect();
            match keys {
                Some(keys) => {
                    out.push('{');
                    for (i, ((_, v), k)) in entries.iter().zip(&keys).enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        write_content(out, v);
                    }
                    out.push('}');
                }
                None => {
                    // Structured keys: array of [key, value] pairs.
                    out.push('[');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('[');
                        write_content(out, k);
                        out.push(',');
                        write_content(out, v);
                        out.push(']');
                    }
                    out.push(']');
                }
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_content_pretty(out: &mut String, c: &Content, depth: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, depth + 1);
                write_content_pretty(out, item, depth + 1);
            }
            push_indent(out, depth);
            out.push(']');
        }
        Content::Struct(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_content_pretty(out, v, depth + 1);
            }
            push_indent(out, depth);
            out.push('}');
        }
        other => write_content(out, other),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Struct(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Struct(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated unicode escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid unicode escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<u64>("17").unwrap(), 17);
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for &v in &[
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {json} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nquote\"back\\slash\tunicode\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A\u{1F600}"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<f64>> = vec![Some(0.1), None, Some(-2.75)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn structured_map_keys_use_pair_arrays() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        m.insert((1, 2), 3);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "[[[1,2],3]]");
        assert_eq!(from_str::<BTreeMap<(u32, u32), u64>>(&json).unwrap(), m);
    }

    #[test]
    fn numeric_map_keys_become_object_keys() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<usize, u64> = BTreeMap::new();
        m.insert(7, 8);
        assert_eq!(to_string(&m).unwrap(), "{\"7\":8}");
        assert_eq!(from_str::<BTreeMap<usize, u64>>("{\"7\":8}").unwrap(), m);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
