//! # gridwatch
//!
//! A reproduction of *"Modeling Probabilistic Measurement Correlations for
//! Problem Determination in Large-Scale Distributed Systems"* (Gao, Jiang,
//! Chen, Han — ICDCS 2009): grid-based transition-probability models of
//! pairwise measurement correlations, with system-level problem
//! determination and localization on top.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`timeseries`] — measurement identities, series, alignment, stats.
//! * [`grid`] — adaptive two-dimensional grid discretization.
//! * [`model`] — the transition probability model `M = (G, V)` and fitness
//!   scores (the paper's core contribution).
//! * [`detect`] — pair sets, three-level fitness aggregation, alarms and
//!   localization.
//! * [`sim`] — a distributed-infrastructure telemetry simulator with fault
//!   injection (substitute for the paper's proprietary traces).
//! * [`baselines`] — linear-invariant, Gaussian-mixture and z-score
//!   baseline detectors.
//! * [`eval`] — the experiment harness that regenerates every figure of
//!   the paper's evaluation.
//! * [`serve`] — the sharded concurrent serving tier: backpressure,
//!   checkpointing, and TCP snapshot ingestion.
//!
//! # Quickstart
//!
//! ```
//! use gridwatch::model::{ModelConfig, TransitionModel};
//! use gridwatch::timeseries::PairSeries;
//!
//! // Two correlated measurements sampled every 6 minutes.
//! let history = PairSeries::from_samples(
//!     (0..200u64).map(|k| {
//!         let x = (k as f64 / 20.0).sin() * 10.0 + 50.0;
//!         (k * 360, x, 2.0 * x)
//!     }),
//! )?;
//!
//! // Learn the normal profile from history…
//! let mut model = TransitionModel::fit(&history, ModelConfig::default())?;
//!
//! // …then score new observations online.
//! let normal = model.score_point(gridwatch::timeseries::Point2::new(50.0, 100.0));
//! let broken = model.score_point(gridwatch::timeseries::Point2::new(50.0, 0.0));
//! assert!(normal.fitness() > broken.fitness());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use gridwatch_baselines as baselines;
pub use gridwatch_core as model;
pub use gridwatch_detect as detect;
pub use gridwatch_eval as eval;
pub use gridwatch_grid as grid;
pub use gridwatch_serve as serve;
pub use gridwatch_sim as sim;
pub use gridwatch_timeseries as timeseries;
