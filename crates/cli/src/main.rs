//! `gridwatch` — the operator CLI.
//!
//! ```text
//! gridwatch simulate --group A --machines 4 --days 30 --fault --out trace.csv
//! gridwatch train    --trace trace.csv --train-days 8 --out engine.json
//! gridwatch monitor  --trace trace.csv --engine engine.json --from-day 15 --days 1
//! gridwatch serve    --trace trace.csv --engine engine.json --shards 4
//! gridwatch serve    --listen 127.0.0.1:7700 --engine engine.json
//! gridwatch inspect  --engine engine.json
//! ```
//!
//! `simulate` generates monitoring data (or bring your own CSV in the
//! same format); `train` learns one transition-probability model per
//! screened measurement pair and persists the engine; `monitor` streams
//! a time range through the engine, printing alarms and incident
//! drill-downs; `inspect` summarizes a persisted engine.

mod commands;
mod flags;

use std::process::ExitCode;

const USAGE: &str = "\
usage: gridwatch <command> [flags]

commands:
  simulate   generate monitoring data as CSV
             --out FILE [--group A|B|C] [--machines N] [--days N]
             [--seed N] [--fault | --chaos REGIME]
  train      train a detection engine from a CSV trace
             --trace FILE --out FILE [--train-days N] [--max-pairs N]
             [--min-cv X] [--delta X] [--frozen] [--drift]
  monitor    stream a time range through a persisted engine
             --trace FILE --engine FILE [--from-day N] [--days N]
             [--system-threshold X] [--measurement-threshold X]
             [--consecutive N] [--incidents] [--save FILE]
             [--store DIR [--store-depth D] [--store-retention-secs N]]
  serve      feed the sharded concurrent engine: replay a trace, or
             ingest live snapshot frames over TCP
             (--trace FILE | --listen ADDR) --engine FILE [--shards N]
             [--backpressure P] [--queue-capacity N] [--rate X]
             [--sample-watermark PCT [--sample-stride N]]
             [--protocol auto|json|csv] [--read-timeout SECS]
             [--max-frame-bytes N] [--max-snapshots N] [--checkpoint DIR]
             [--checkpoint-every N] [--resume] [--stats FILE]
             [--metrics ADDR] [--store DIR [--store-depth D]]
  shard-worker
             serve one shard of a multi-node fabric over TCP
             --listen ADDR [--metrics ADDR]
  coordinator
             replay a trace through remote shard workers and merge
             their boards into one report stream
             --trace FILE --engine FILE --workers ADDR[,ADDR...]
             [--from-day N] [--days N] [--rate X] [--checkpoint DIR]
             [--checkpoint-every N] [--resume] [--reattach-secs N]
             [--halt-workers] [--stats FILE] [--metrics ADDR]
             [--store DIR [--store-depth D]]
  eval       run the scored chaos evaluation: hostile regimes vs
             typed ground truth, with per-regime detection latency,
             precision/recall, and drift-rebuild counts
             --chaos [--regime R] [--machines N] [--seed N]
             [--max-pairs N] [--threshold X] [--days N] [--out DIR]
  history    query the history store written by --store: time-range
             scans, per-key filters, top-k lowest-fitness ranking
             --store DIR [--kind scores|stats|events|traces] [--from-day N]
             [--days N] [--system | --measurement M | --pair A~B]
             [--event-kind K] [--top-k N] [--format json|csv] [--limit N]
  trace      query the exemplar traces captured by serving runs with
             --trace-* flags: per-snapshot stage waterfalls with
             shard/worker attribution
             --store DIR [--from-day N] [--days N] [--source S]
             [--alarmed] [--slowest K] [--format text|json] [--limit N]
  inspect    summarize a persisted engine
             --engine FILE [--verbose]
  audit      lint the workspace sources, validate a checkpoint
             directory offline before `serve --resume`, or validate a
             history store
             [--root DIR] [--allowlist FILE] | --checkpoint DIR
             | --store DIR

run `gridwatch <command> --help` for details";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "simulate" => commands::simulate::run(&args),
        "train" => commands::train::run(&args),
        "monitor" => commands::monitor::run(&args),
        "serve" => commands::serve::run(&args),
        "shard-worker" => commands::shard_worker::run(&args),
        "coordinator" => commands::coordinator::run(&args),
        "eval" => commands::eval::run(&args),
        "history" => commands::history::run(&args),
        "trace" => commands::trace::run(&args),
        "inspect" => commands::inspect::run(&args),
        "audit" => commands::audit::run(&args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gridwatch {command}: {msg}");
            ExitCode::FAILURE
        }
    }
}
