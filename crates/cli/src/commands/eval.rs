//! `gridwatch eval` — run the scored chaos evaluation: every hostile
//! regime (or one chosen with `--regime`) against its typed ground
//! truth, reporting detection latency, precision/recall, and the drift
//! layer's rebuild counts. The paper-figure experiments stay on the
//! `repro` binary (`cargo run -p gridwatch-eval --bin repro`); this
//! command covers the hostile-conditions sweep.

use gridwatch_eval::chaos::{run_all, run_regime, ChaosOptions};
use gridwatch_sim::ChaosRegime;

use crate::flags::Flags;

const HELP: &str = "\
gridwatch eval --chaos [flags]

  --chaos              run the hostile-conditions evaluation (required)
  --regime R           one regime only: drift | skew | flapping |
                       overload | cascade      (default: all five)

scenario knobs:
  --machines N         machines per simulated group   (default 3)
  --seed N             master scenario seed           (default 20080529)
  --max-pairs N        cap on watched pairs           (default 30)
  --threshold X        system-score alarm threshold   (default 0.6)
  --days N             replay days after training cut (default 2)

output:
  --out DIR            also write the report tables as CSV into DIR

Exits non-zero when a shape check fails (full sweep only; a single
--regime run prints its report without checks).

examples:
  gridwatch eval --chaos
  gridwatch eval --chaos --regime drift --days 3
  gridwatch eval --chaos --machines 4 --out results/";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["chaos"])?;
    if !flags.has("chaos") {
        return Err(format!("nothing to evaluate; pass --chaos\n{HELP}"));
    }
    let options = ChaosOptions {
        machines: flags.get_or("machines", ChaosOptions::default().machines)?,
        seed: flags.get_or("seed", ChaosOptions::default().seed)?,
        max_pairs: flags.get_or("max-pairs", ChaosOptions::default().max_pairs)?,
        threshold: flags.get_or("threshold", ChaosOptions::default().threshold)?,
        replay_days: flags.get_or("days", ChaosOptions::default().replay_days)?,
    };

    if let Some(name) = flags.get::<String>("regime")? {
        let regime: ChaosRegime = name
            .parse()
            .map_err(|e: String| format!("bad --regime: {e}"))?;
        let report = run_regime(regime, options);
        println!("regime          {}", report.regime);
        println!("samples         {}", report.samples);
        println!(
            "delay_s         {}",
            report
                .detection_delay_secs
                .map_or("-".to_string(), |d| d.to_string())
        );
        println!("precision       {}", fmt_opt(report.precision));
        println!("recall          {}", fmt_opt(report.recall));
        println!("rebuilds        {}", report.rebuilds);
        println!("false_rebuilds  {}", report.false_rebuilds);
        println!("min_Q           {:.3}", report.min_system_score);
        return Ok(());
    }

    let result = run_all(options);
    println!("{}", result.to_ascii());
    if let Some(dir) = flags.get::<String>("out")? {
        result
            .write_csv(std::path::Path::new(&dir))
            .map_err(|e| format!("cannot write CSVs into {dir}: {e}"))?;
        println!("wrote CSV tables into {dir}");
    }
    if !result.all_checks_passed() {
        return Err("one or more chaos shape checks failed".to_string());
    }
    Ok(())
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.3}"))
}
