//! `gridwatch history` — query the embedded history store written by
//! `serve --store`, `coordinator --store`, and `monitor --store`:
//! time-range scans over scores, stats samples, and events; per-key
//! filters; and the paper's problem-determination ranking (top-k
//! lowest-mean fitness keys) — as JSON or CSV.

use std::io::Write;
use std::path::Path;

use gridwatch_store::{
    measurement_key, pair_key, query, HistoryStore, KeySummary, Record, RecordKind, ScoreRow,
    SYSTEM_KEY,
};

use crate::flags::Flags;

const HELP: &str = "\
gridwatch history --store DIR [--kind scores|stats|events|traces] [flags]

  --store DIR          the store directory to query (required)
  --kind K             scores | stats | events | traces (default scores;
                       traces prints raw exemplar records — `gridwatch
                       trace` renders them as waterfalls)

time range (trace time; default: everything):
  --from-day N         window start in days           (86400 s/day)
  --days N             window length in days          (default 1, with --from-day)
  --from-secs N        window start in seconds        (overrides --from-day)
  --to-secs N          window end in seconds, exclusive

score filters (with --kind scores):
  --system             only the system score Q_t
  --measurement M      only Q^a_t for measurement M
                       (display form, e.g. machine-003/CpuUtilization)
  --pair A~B           only Q^{a,b}_t for the pair A~B
  --key K              only the exact canonical key K
  --top-k N            aggregate per key and print the N keys with the
                       lowest mean fitness (the problem-determination
                       ranking) instead of raw rows

event filters (with --kind events):
  --event-kind K       only events of kind K (e.g. alarm, rebuild,
                       promote, demote, checkpoint)

output:
  --format F           json | csv                     (default csv)
  --limit N            print at most N rows           (default: all)

examples:
  gridwatch history --store hist --system --format csv
  gridwatch history --store hist --from-day 15 --days 1 --top-k 5
  gridwatch history --store hist --kind events --format json
  gridwatch history --store hist --kind events --event-kind rebuild";

const SECS_PER_DAY: u64 = 86_400;

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["system"])?;
    let dir: String = flags.require("store")?;
    let kind: RecordKind = flags.get_or("kind", RecordKind::Score)?;
    if flags.get::<String>("event-kind")?.is_some() && kind != RecordKind::Event {
        return Err("--event-kind only applies to --kind events".to_string());
    }
    let format: OutputFormat = flags.get_or("format", OutputFormat::Csv)?;
    let limit: Option<usize> = flags.get("limit")?;
    let (from_at, to_at) = window(&flags)?;

    let (store, report) = HistoryStore::open_existing(Path::new(&dir))
        .map_err(|e| format!("cannot open history store {dir}: {e}"))?;
    if report.truncated_bytes > 0 {
        eprintln!(
            "history store {dir}: truncated {} torn WAL bytes on open",
            report.truncated_bytes
        );
    }
    let records = store
        .scan(kind, from_at, to_at)
        .map_err(|e| format!("scan failed: {e}"))?;

    // Queries are made to be piped into `head`/`grep`; a closed pipe
    // ends the output early, it is not an error.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let printed = match kind {
        RecordKind::Score => {
            let rows = apply_filters(&flags, query::score_rows(records))?;
            if let Some(k) = flags.get::<usize>("top-k")? {
                let top = gridwatch_store::top_k_lowest_mean(&rows, k);
                print_summaries(&mut out, &top, format)
            } else {
                print_scores(&mut out, &rows, format, limit)
            }
        }
        RecordKind::Stats | RecordKind::Event | RecordKind::Trace => {
            if flags.get::<usize>("top-k")?.is_some() {
                return Err("--top-k only applies to --kind scores".to_string());
            }
            let records = match flags.get::<String>("event-kind")? {
                Some(wanted) => records
                    .into_iter()
                    .filter(|(_, r)| matches!(r, Record::Event(e) if e.kind == wanted))
                    .collect(),
                None => records,
            };
            print_records(&mut out, &records, format, limit)
        }
    };
    match printed.and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing output: {e}")),
    }
}

/// The scan window from the time-range flags (shared with `gridwatch
/// trace`, which takes the same range).
pub(crate) fn window(flags: &Flags) -> Result<(u64, u64), String> {
    let mut from_at = 0u64;
    let mut to_at = u64::MAX;
    if let Some(day) = flags.get::<u64>("from-day")? {
        let days: u64 = flags.get_or("days", 1)?;
        from_at = day.saturating_mul(SECS_PER_DAY);
        to_at = day.saturating_add(days).saturating_mul(SECS_PER_DAY);
    }
    if let Some(secs) = flags.get::<u64>("from-secs")? {
        from_at = secs;
    }
    if let Some(secs) = flags.get::<u64>("to-secs")? {
        to_at = secs;
    }
    if from_at >= to_at {
        return Err(format!("empty time range [{from_at}, {to_at})"));
    }
    Ok((from_at, to_at))
}

/// Applies the score-key filters. The filters compose with "last one
/// wins" semantics kept simple: they are mutually exclusive.
fn apply_filters(flags: &Flags, rows: Vec<ScoreRow>) -> Result<Vec<ScoreRow>, String> {
    let mut selected = 0;
    let mut key: Option<String> = None;
    if flags.has("system") {
        selected += 1;
        key = Some(SYSTEM_KEY.to_string());
    }
    if let Some(m) = flags.get::<String>("measurement")? {
        selected += 1;
        key = Some(measurement_key(&m));
    }
    if let Some(pair) = flags.get::<String>("pair")? {
        selected += 1;
        let (first, second) = pair
            .split_once('~')
            .ok_or_else(|| format!("--pair wants A~B, got {pair:?}"))?;
        key = Some(pair_key(first, second));
    }
    if let Some(k) = flags.get::<String>("key")? {
        selected += 1;
        key = Some(k);
    }
    if selected > 1 {
        return Err(
            "--system, --measurement, --pair, and --key are mutually exclusive".to_string(),
        );
    }
    Ok(match key {
        Some(key) => query::filter_key(rows, &key),
        None => rows,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Json,
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format {other:?} (expected json or csv)")),
        }
    }
}

/// Quotes a CSV field, doubling embedded quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Quotes and escapes a JSON string. (The vendored `serde_json` has no
/// `Value` type, so the output objects are assembled by hand.)
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A score as a JSON number; non-finite values (unrepresentable in
/// JSON) become null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Writes a JSON array of pre-rendered objects, one per line.
fn print_json_array(out: &mut impl Write, items: &[String]) -> std::io::Result<()> {
    writeln!(out, "[")?;
    for (i, item) in items.iter().enumerate() {
        let comma = if i + 1 < items.len() { "," } else { "" };
        writeln!(out, "  {item}{comma}")?;
    }
    writeln!(out, "]")
}

fn print_scores(
    out: &mut impl Write,
    rows: &[ScoreRow],
    format: OutputFormat,
    limit: Option<usize>,
) -> std::io::Result<()> {
    let shown = limit.unwrap_or(rows.len()).min(rows.len());
    match format {
        OutputFormat::Csv => {
            writeln!(out, "at,key,score")?;
            for row in &rows[..shown] {
                // Ryu-style shortest round-trip formatting: parsing the
                // printed score recovers the exact stored bits.
                writeln!(out, "{},{},{}", row.at, csv_field(&row.key), row.score)?;
            }
        }
        OutputFormat::Json => {
            let items: Vec<String> = rows[..shown]
                .iter()
                .map(|row| {
                    format!(
                        "{{\"at\":{},\"key\":{},\"score\":{}}}",
                        row.at,
                        json_string(&row.key),
                        json_f64(row.score)
                    )
                })
                .collect();
            print_json_array(out, &items)?;
        }
    }
    if shown < rows.len() {
        eprintln!("({} more rows truncated by --limit)", rows.len() - shown);
    }
    Ok(())
}

fn print_summaries(
    out: &mut impl Write,
    top: &[KeySummary],
    format: OutputFormat,
) -> std::io::Result<()> {
    match format {
        OutputFormat::Csv => {
            writeln!(out, "key,count,mean,min,max")?;
            for s in top {
                writeln!(
                    out,
                    "{},{},{},{},{}",
                    csv_field(&s.key),
                    s.count,
                    s.mean,
                    s.min,
                    s.max
                )?;
            }
            Ok(())
        }
        OutputFormat::Json => {
            let items: Vec<String> = top
                .iter()
                .map(|s| {
                    format!(
                        "{{\"key\":{},\"count\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
                        json_string(&s.key),
                        s.count,
                        json_f64(s.mean),
                        json_f64(s.min),
                        json_f64(s.max)
                    )
                })
                .collect();
            print_json_array(out, &items)
        }
    }
}

fn print_records(
    out: &mut impl Write,
    records: &[(u64, Record)],
    format: OutputFormat,
    limit: Option<usize>,
) -> std::io::Result<()> {
    let shown = limit.unwrap_or(records.len()).min(records.len());
    match format {
        OutputFormat::Csv => {
            writeln!(out, "at,seq,kind,detail")?;
            for (seq, record) in &records[..shown] {
                match record {
                    Record::Stats(s) => {
                        writeln!(out, "{},{seq},stats,{}", s.at, csv_field(&s.payload))?;
                    }
                    Record::Event(e) => {
                        writeln!(
                            out,
                            "{},{seq},{},{}",
                            e.at,
                            csv_field(&e.kind),
                            csv_field(&e.detail)
                        )?;
                    }
                    Record::Score(row) => {
                        writeln!(out, "{},{seq},score,{}", row.at, csv_field(&row.key))?;
                    }
                    Record::Trace(t) => {
                        writeln!(
                            out,
                            "{},{seq},trace,{}",
                            t.at,
                            csv_field(&format!(
                                "seq {} source {} alarmed {} total {}ns",
                                t.seq, t.source, t.alarmed, t.total_ns
                            ))
                        )?;
                    }
                }
            }
        }
        OutputFormat::Json => {
            let items: Vec<String> = records[..shown]
                .iter()
                .map(|(seq, record)| match record {
                    Record::Stats(s) => format!(
                        "{{\"at\":{},\"seq\":{seq},\"kind\":\"stats\",\"payload\":{}}}",
                        s.at,
                        json_string(&s.payload)
                    ),
                    Record::Event(e) => format!(
                        "{{\"at\":{},\"seq\":{seq},\"kind\":{},\"at_ns\":{},\"detail\":{}}}",
                        e.at,
                        json_string(&e.kind),
                        e.at_ns,
                        json_string(&e.detail)
                    ),
                    Record::Score(row) => format!(
                        "{{\"at\":{},\"seq\":{seq},\"kind\":\"score\",\"key\":{},\"score\":{}}}",
                        row.at,
                        json_string(&row.key),
                        json_f64(row.score)
                    ),
                    // The payload is already the exemplar's JSON
                    // document; embed it unescaped.
                    Record::Trace(t) => format!(
                        "{{\"at\":{},\"seq\":{seq},\"kind\":\"trace\",\"exemplar\":{}}}",
                        t.at, t.payload
                    ),
                })
                .collect();
            print_json_array(out, &items)?;
        }
    }
    if shown < records.len() {
        eprintln!(
            "({} more records truncated by --limit)",
            records.len() - shown
        );
    }
    Ok(())
}
