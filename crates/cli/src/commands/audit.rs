//! `gridwatch audit` — static analysis and checkpoint validation.
//!
//! Thin front-end over the `gridwatch-audit` crate: the same lint pass
//! CI runs, plus the offline checkpoint validator for use before
//! `gridwatch serve --resume`.

use std::path::PathBuf;

use gridwatch_audit::{
    allowlist, checkpoint, concurrency, find_workspace_root, render_concurrency_trend,
    render_trend, render_violation, scan_workspace,
};

use crate::flags::Flags;

const HELP: &str = "\
gridwatch audit [--concurrency] [--root DIR] [--allowlist FILE]
gridwatch audit --checkpoint DIR
gridwatch audit --store DIR

  --concurrency     also run the cross-file lock-order pass: build the
                    global lock-order graph, report cycles (potential
                    deadlocks), guards held across blocking calls, and
                    condvar waits without a predicate loop
  --root DIR        workspace root (default: walk up from the cwd)
  --allowlist FILE  allowlist ledger (default: <root>/audit/allowlist.txt)
  --checkpoint DIR  validate a checkpoint directory instead of linting;
                    run this before `gridwatch serve --resume` on a
                    directory you do not trust
  --store DIR       validate a history store offline (read-only): torn
                    or truncated WAL tails, frame and block checksum
                    mismatches, overlapping or misaligned partitions,
                    unknown block versions";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["concurrency"])?;

    if let Some(dir) = flags.get::<String>("store")? {
        let report = gridwatch_store::validate_store(std::path::Path::new(&dir))
            .map_err(|e| format!("cannot validate store {dir}: {e}"))?;
        for problem in &report.problems {
            println!("store problem: {problem}");
        }
        for note in &report.notes {
            println!("store note: {note}");
        }
        println!(
            "store {dir}: {} partition(s), {} block(s), {} sealed row(s), \
             {} WAL record(s), {} problem(s), {} note(s)",
            report.partitions,
            report.blocks,
            report.sealed_rows,
            report.wal_records,
            report.problems.len(),
            report.notes.len()
        );
        return if report.is_healthy() {
            Ok(())
        } else {
            Err(format!(
                "store {dir} failed validation with {} problem(s)",
                report.problems.len()
            ))
        };
    }

    if let Some(dir) = flags.get::<String>("checkpoint")? {
        let report = checkpoint::validate_checkpoint(std::path::Path::new(&dir));
        for problem in &report.problems {
            println!("checkpoint: {problem}");
        }
        println!(
            "checkpoint {dir}: {} shard files, {} models checked, {} problems",
            report.shards_checked,
            report.models_checked,
            report.problems.len()
        );
        return if report.is_valid() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint {dir} failed validation with {} problem(s)",
                report.problems.len()
            ))
        };
    }

    let root = match flags.get::<String>("root")? {
        Some(r) => PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory; pass --root")?
        }
    };
    let allowlist_path = match flags.get::<String>("allowlist")? {
        Some(f) => PathBuf::from(f),
        None => root.join("audit/allowlist.txt"),
    };

    let mut violations =
        scan_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let conc = if flags.has("concurrency") {
        let report = concurrency::scan_concurrency(&root)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?;
        violations.extend(report.violations.iter().cloned());
        violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        Some(report)
    } else {
        None
    };
    let mut entries = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| e.to_string())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", allowlist_path.display())),
    };
    // Without the concurrency pass, its ledger entries have no
    // violations to match — keep them out of the two-sided check so
    // they are not reported stale.
    if conc.is_none() {
        entries.retain(|e| !e.rule.is_concurrency());
    }

    let rec = allowlist::reconcile(&violations, &entries);
    for v in &rec.new_violations {
        println!("{}", render_violation(v));
    }
    for (entry, surplus) in &rec.stale_entries {
        println!(
            "stale allowlist entry (line {}): [{}] {} x{} {:?} — {} site(s) no longer found",
            entry.source_line,
            entry.rule.name(),
            entry.file,
            entry.count,
            entry.fingerprint,
            surplus
        );
    }
    println!("{}", render_trend(&entries));
    if let Some(report) = &conc {
        println!("{}", render_concurrency_trend(report, &entries));
    }
    if rec.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "audit failed: {} new violation(s), {} stale allowlist entr(ies)",
            rec.new_violations.len(),
            rec.stale_entries.len()
        ))
    }
}
