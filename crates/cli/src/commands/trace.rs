//! `gridwatch trace` — query the exemplar traces persisted by a
//! serving run with `--store` and `--trace-*` flags: time-range scans,
//! source and alarm filters, slowest-K ranking, and a text waterfall
//! per trace showing each stage span with its shard/worker
//! attribution.

use std::io::Write;
use std::path::Path;

use gridwatch_obs::TraceExemplar;
use gridwatch_store::{HistoryStore, Record, RecordKind};

use crate::commands::history::window;
use crate::flags::Flags;

const HELP: &str = "\
gridwatch trace --store DIR [flags]

  --store DIR          the store directory to query (required)

time range (trace time; default: everything):
  --from-day N         window start in days           (86400 s/day)
  --days N             window length in days          (default 1, with --from-day)
  --from-secs N        window start in seconds        (overrides --from-day)
  --to-secs N          window end in seconds, exclusive

filters:
  --source S           only traces from source S (e.g. coordinator,
                       local, or a wire source name)
  --alarmed            only traces whose snapshot raised an alarm
  --slowest K          the K largest total latencies, slowest first
                       (default order: trace time)

output:
  --format F           text | json                    (default text:
                       one waterfall per trace)
  --limit N            print at most N traces         (default: all)

examples:
  gridwatch trace --store hist --alarmed
  gridwatch trace --store hist --from-day 15 --days 1 --slowest 5
  gridwatch trace --store hist --source coordinator --format json";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["alarmed"])?;
    let dir: String = flags.require("store")?;
    let format: String = flags.get_or("format", "text".to_string())?;
    if format != "text" && format != "json" {
        return Err(format!("unknown format {format:?} (expected text or json)"));
    }
    let limit: Option<usize> = flags.get("limit")?;
    let slowest: Option<usize> = flags.get("slowest")?;
    let source: Option<String> = flags.get("source")?;
    let (from_at, to_at) = window(&flags)?;

    let (store, report) = HistoryStore::open_existing(Path::new(&dir))
        .map_err(|e| format!("cannot open history store {dir}: {e}"))?;
    if report.truncated_bytes > 0 {
        eprintln!(
            "history store {dir}: truncated {} torn WAL bytes on open",
            report.truncated_bytes
        );
    }
    let records = store
        .scan(RecordKind::Trace, from_at, to_at)
        .map_err(|e| format!("scan failed: {e}"))?;

    let mut traces: Vec<TraceExemplar> = Vec::new();
    for (seq, record) in records {
        let Record::Trace(row) = record else { continue };
        if let Some(wanted) = source.as_deref() {
            if row.source != wanted {
                continue;
            }
        }
        if flags.has("alarmed") && !row.alarmed {
            continue;
        }
        let trace: TraceExemplar = serde_json::from_str(&row.payload)
            .map_err(|e| format!("corrupt exemplar payload at store seq {seq}: {e}"))?;
        traces.push(trace);
    }
    if let Some(k) = slowest {
        traces.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        traces.truncate(k);
    }
    let shown = limit.unwrap_or(traces.len()).min(traces.len());

    // Queries are made to be piped into `head`/`grep`; a closed pipe
    // ends the output early, it is not an error.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let printed = match format.as_str() {
        "json" => print_json(&mut out, &traces[..shown]),
        _ => print_text(&mut out, &traces[..shown]),
    };
    if shown < traces.len() {
        eprintln!(
            "({} more traces truncated by --limit)",
            traces.len() - shown
        );
    }
    match printed.and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing output: {e}")),
    }
}

fn print_text(out: &mut impl Write, traces: &[TraceExemplar]) -> std::io::Result<()> {
    for trace in traces {
        out.write_all(render_text(trace).as_bytes())?;
    }
    if traces.is_empty() {
        writeln!(out, "(no matching traces)")?;
    }
    Ok(())
}

fn print_json(out: &mut impl Write, traces: &[TraceExemplar]) -> std::io::Result<()> {
    writeln!(out, "[")?;
    for (i, trace) in traces.iter().enumerate() {
        let comma = if i + 1 < traces.len() { "," } else { "" };
        let doc = serde_json::to_string(trace)
            .map_err(|e| std::io::Error::other(format!("serialize: {e}")))?;
        writeln!(out, "  {doc}{comma}")?;
    }
    writeln!(out, "]")
}

/// One trace as a text waterfall: a header line, then one row per
/// span with a `#` bar scaled against the trace's slowest span. Start
/// offsets are per-process clocks, so rows show durations, not a
/// cross-process timeline. The exact layout is pinned by a golden
/// test.
pub(crate) fn render_text(trace: &TraceExemplar) -> String {
    let mut out = format!(
        "seq {}  at {}s  source {}",
        trace.seq, trace.at, trace.source
    );
    if trace.alarmed {
        out.push_str("  alarmed");
    }
    if trace.breached {
        out.push_str("  breached");
    }
    if trace.head_sampled {
        out.push_str("  head-sampled");
    }
    out.push_str(&format!("  total {}ns\n", trace.total_ns));
    let max = trace.spans.iter().map(|s| s.dur_ns).max().unwrap_or(0);
    for span in &trace.spans {
        let width = span.dur_ns.saturating_mul(20).checked_div(max).unwrap_or(0) as usize;
        let shard = span
            .shard
            .map_or_else(|| "-".to_string(), |k| k.to_string());
        out.push_str(&format!(
            "  {:<8} {:<12} {:>5} {:>10}ns |{:<20}|\n",
            span.stage,
            span.worker,
            shard,
            span.dur_ns,
            "#".repeat(width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_obs::{SpanSlice, Stage};

    /// The waterfall layout is an operator interface: column widths,
    /// the marker order, and the bar scaling are all pinned.
    #[test]
    fn waterfall_text_layout_is_pinned() {
        let trace = TraceExemplar {
            source: "coordinator".to_string(),
            seq: 12,
            at: 1_296_000,
            alarmed: true,
            breached: false,
            head_sampled: true,
            total_ns: 2_500,
            spans: vec![
                SpanSlice::new(Stage::Ingest, 0, 2_000, "worker-0"),
                SpanSlice::sharded(Stage::Score, 100, 500, 1, "worker-1"),
                SpanSlice::new(Stage::Merge, 900, 0, "merge"),
            ],
        };
        assert_eq!(
            render_text(&trace),
            concat!(
                "seq 12  at 1296000s  source coordinator  alarmed  head-sampled  total 2500ns\n",
                "  ingest   worker-0         -       2000ns |####################|\n",
                "  score    worker-1         1        500ns |#####               |\n",
                "  merge    merge            -          0ns |                    |\n",
            )
        );
    }

    /// A span-less trace renders just its header; the bar scale
    /// divides by the max duration, which must not panic at zero.
    #[test]
    fn empty_and_zero_duration_traces_render() {
        let trace = TraceExemplar {
            source: "local".to_string(),
            ..TraceExemplar::default()
        };
        assert_eq!(
            render_text(&trace),
            "seq 0  at 0s  source local  total 0ns\n"
        );
    }
}
