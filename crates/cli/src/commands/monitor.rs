//! `gridwatch monitor` — stream a time range of a trace through a
//! persisted engine, printing alarms and incident drill-downs.

use gridwatch_detect::{DetectionEngine, EngineSnapshot, IncidentReport, Snapshot};
use gridwatch_timeseries::Timestamp;

use crate::commands::load_trace;
use crate::flags::Flags;

const HELP: &str = "\
gridwatch monitor --trace FILE --engine FILE [flags]

  --trace FILE              CSV monitoring data
  --engine FILE             engine snapshot from `gridwatch train`
  --from-day N              first day to stream (default 15 = June 13)
  --days N                  days to stream      (default 1)
  --system-threshold X      alarm when Q_t < X            (default 0.6)
  --measurement-threshold X alarm when Q^a_t < X          (default 0.5)
  --consecutive N           debounce: N consecutive lows  (default 2)
  --incidents               print a full incident report per alarm
  --save FILE               write the updated engine snapshot back";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["incidents"])?;
    let trace_path: String = flags.require("trace")?;
    let engine_path: String = flags.require("engine")?;
    let from_day: u64 = flags.get_or("from-day", 15)?;
    let days: u64 = flags.get_or("days", 1)?;

    let trace = load_trace(&trace_path)?;
    let json = std::fs::read_to_string(&engine_path)
        .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
    let mut snapshot: EngineSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?;
    snapshot.config.alarm.system_threshold =
        flags.get_or("system-threshold", snapshot.config.alarm.system_threshold)?;
    snapshot.config.alarm.measurement_threshold = flags.get_or(
        "measurement-threshold",
        snapshot.config.alarm.measurement_threshold,
    )?;
    snapshot.config.alarm.min_consecutive =
        flags.get_or("consecutive", snapshot.config.alarm.min_consecutive)?;
    let mut engine = DetectionEngine::from_snapshot(snapshot);
    // The flight recorder gives `--incidents` reports their run-up: the
    // engine logs alarm events into the shared ring as it steps.
    let recorder = gridwatch_obs::FlightRecorder::default();
    engine.attach_recorder(recorder.clone());

    let start = Timestamp::from_days(from_day);
    let end = Timestamp::from_days(from_day + days);
    let mut ticks = 0usize;
    let mut alarms = 0usize;
    let mut q_min: Option<(Timestamp, f64)> = None;
    for t in trace.interval().ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
                snap.insert(id, v);
            }
        }
        if snap.is_empty() {
            continue;
        }
        ticks += 1;
        let report = engine.step(&snap);
        if let Some(q) = report.scores.system_score() {
            if q_min.is_none_or(|(_, min)| q < min) {
                q_min = Some((t, q));
            }
        }
        for alarm in &report.alarms {
            alarms += 1;
            println!("ALARM {alarm}");
        }
        if !report.alarms.is_empty() && flags.has("incidents") {
            let incident = IncidentReport::compile(&engine, &report.scores, 3)
                .with_events(recorder.snapshot());
            println!("{incident}");
        }
    }
    println!(
        "monitored {ticks} snapshots over day {from_day}..{}; {alarms} alarms",
        from_day + days
    );
    if let Some((t, q)) = q_min {
        println!("lowest system fitness: {q:.4} at {t}");
    }
    if let Some(save) = flags.get::<String>("save")? {
        engine
            .snapshot()
            .save(std::path::Path::new(&save))
            .map_err(|e| format!("cannot write {save}: {e}"))?;
        println!("updated engine snapshot written to {save}");
    }
    Ok(())
}
