//! `gridwatch monitor` — stream a time range of a trace through a
//! persisted engine, printing alarms and incident drill-downs.

use gridwatch_detect::{DetectionEngine, EngineSnapshot, IncidentReport, Snapshot};
use gridwatch_obs::FlightEvent;
use gridwatch_store::{Record, RecordKind};
use gridwatch_timeseries::Timestamp;

use crate::commands::{load_trace, open_history_sink, store_checkpoint, STORE_HELP};
use crate::flags::Flags;

const HELP: &str = "\
gridwatch monitor --trace FILE --engine FILE [flags]

  --trace FILE              CSV monitoring data
  --engine FILE             engine snapshot from `gridwatch train`
  --from-day N              first day to stream (default 15 = June 13)
  --days N                  days to stream      (default 1)
  --system-threshold X      alarm when Q_t < X            (default 0.6)
  --measurement-threshold X alarm when Q^a_t < X          (default 0.5)
  --consecutive N           debounce: N consecutive lows  (default 2)
  --incidents               print a full incident report per alarm; with
                            --store, the report's recent-events section
                            is read back from the store (so it also
                            covers events persisted by earlier runs)
  --save FILE               write the updated engine snapshot back";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        println!();
        println!("{STORE_HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["incidents"])?;
    let trace_path: String = flags.require("trace")?;
    let engine_path: String = flags.require("engine")?;
    let from_day: u64 = flags.get_or("from-day", 15)?;
    let days: u64 = flags.get_or("days", 1)?;

    let trace = load_trace(&trace_path)?;
    let json = std::fs::read_to_string(&engine_path)
        .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
    let mut snapshot: EngineSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?;
    snapshot.config.alarm.system_threshold =
        flags.get_or("system-threshold", snapshot.config.alarm.system_threshold)?;
    snapshot.config.alarm.measurement_threshold = flags.get_or(
        "measurement-threshold",
        snapshot.config.alarm.measurement_threshold,
    )?;
    snapshot.config.alarm.min_consecutive =
        flags.get_or("consecutive", snapshot.config.alarm.min_consecutive)?;
    let mut engine = DetectionEngine::from_snapshot(snapshot);
    // The flight recorder gives `--incidents` reports their run-up: the
    // engine logs alarm events into the shared ring as it steps.
    let recorder = gridwatch_obs::FlightRecorder::default();
    engine.attach_recorder(recorder.clone());
    let mut sink = open_history_sink(&flags)?;

    let start = Timestamp::from_days(from_day);
    let end = Timestamp::from_days(from_day + days);
    let mut ticks = 0usize;
    let mut alarms = 0usize;
    let mut last_at = start.as_secs();
    let mut q_min: Option<(Timestamp, f64)> = None;
    for t in trace.interval().ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
                snap.insert(id, v);
            }
        }
        if snap.is_empty() {
            continue;
        }
        ticks += 1;
        last_at = t.as_secs();
        let report = engine.step(&snap);
        if let Some(q) = report.scores.system_score() {
            if q_min.is_none_or(|(_, min)| q < min) {
                q_min = Some((t, q));
            }
        }
        if let Some(sink) = sink.as_mut() {
            sink.append_report(&report)
                .map_err(|e| format!("history store append failed: {e}"))?;
        }
        for alarm in &report.alarms {
            alarms += 1;
            println!("ALARM {alarm}");
        }
        if !report.alarms.is_empty() && flags.has("incidents") {
            let events = match sink.as_mut() {
                // With a store, read the run-up back from it: the ring's
                // new events first land there (deduplicated by global
                // index), then the scan also surfaces events persisted
                // by earlier runs against the same store.
                Some(sink) => {
                    sink.drain_recorder(&recorder, last_at)
                        .map_err(|e| format!("history store event drain failed: {e}"))?;
                    stored_events(sink.store(), last_at)?
                }
                None => recorder.snapshot(),
            };
            let incident = IncidentReport::compile(&engine, &report.scores, 3).with_events(events);
            println!("{incident}");
        }
    }
    store_checkpoint(
        &mut sink,
        &recorder,
        &gridwatch_obs::ExemplarTracer::disabled(),
        last_at,
        || format!("{{\"monitored\":{ticks},\"alarms\":{alarms}}}"),
    )?;
    println!(
        "monitored {ticks} snapshots over day {from_day}..{}; {alarms} alarms",
        from_day + days
    );
    if let Some((t, q)) = q_min {
        println!("lowest system fitness: {q:.4} at {t}");
    }
    if let Some(sink) = sink.as_ref() {
        println!(
            "history store {}: sealed through seq {}",
            sink.store().dir().display(),
            sink.store().next_seq()
        );
    }
    if let Some(save) = flags.get::<String>("save")? {
        engine
            .snapshot()
            .save(std::path::Path::new(&save))
            .map_err(|e| format!("cannot write {save}: {e}"))?;
        println!("updated engine snapshot written to {save}");
    }
    Ok(())
}

/// The most recent stored events up to `at`, oldest first, converted
/// back into flight events for the incident report (capped to the same
/// order of magnitude as the recorder ring).
fn stored_events(
    store: &gridwatch_store::HistoryStore,
    at: u64,
) -> Result<Vec<FlightEvent>, String> {
    const MAX_EVENTS: usize = 256;
    let records = store
        .scan(RecordKind::Event, 0, at)
        .map_err(|e| format!("history store event scan failed: {e}"))?;
    let mut events: Vec<FlightEvent> = records
        .into_iter()
        .filter_map(|(_, record)| match record {
            Record::Event(e) => Some(FlightEvent {
                at_ns: e.at_ns,
                kind: e.kind,
                detail: e.detail,
            }),
            _ => None,
        })
        .collect();
    if events.len() > MAX_EVENTS {
        events.drain(..events.len() - MAX_EVENTS);
    }
    Ok(events)
}
