//! `gridwatch train` — fit a detection engine from a CSV trace and
//! persist it.

use gridwatch_core::ModelConfig;
use gridwatch_detect::{DetectionEngine, EngineConfig, PairScreen};
use gridwatch_timeseries::{AlignmentPolicy, PairSeries, Timestamp};

use crate::commands::{load_trace, trace_window};
use crate::flags::Flags;

const HELP: &str = "\
gridwatch train --trace FILE --out FILE [flags]

  --trace FILE     CSV monitoring data (see `gridwatch simulate`)
  --out FILE       where to write the engine snapshot (JSON)
  --train-days N   days of history to learn from      (default 8)
  --max-pairs N    cap on watched measurement pairs   (default 40)
  --min-cv X       variance screen: keep measurements with
                   coefficient of variation >= X      (default 0.05)
  --delta X        update threshold: transitions with probability
                   below X are flagged, not learned   (default 0.005)
  --frozen         freeze the pair grids after training: the model
                   stops learning online, so off-manifold data keeps
                   scoring low instead of being absorbed (required
                   for drift to stay observable; pair with --drift)
  --drift          enable the drift layer: sustained pair-fitness
                   decay triggers an online rebuild of that pair's
                   model from recent history
  --sketch         enable sketch-gated pair selection: pairs beyond
                   the --max-pairs cap are kept as sketch candidates
                   instead of dropped — a streaming correlation
                   sketch scores them per snapshot and only pairs
                   clearing the admission threshold get a grid model
                   (tune at serve time with the --sketch-* flags)
  --row-format F   probability-row storage: dense | quantized |
                   sparse (default dense; quantized and sparse cut
                   model memory ~4x+ with rank-identical scores)";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["frozen", "drift", "sketch"])?;
    let trace_path: String = flags.require("trace")?;
    let out: String = flags.require("out")?;
    let train_days: u64 = flags.get_or("train-days", 8)?;
    let max_pairs: usize = flags.get_or("max-pairs", 40)?;
    let min_cv: f64 = flags.get_or("min-cv", 0.05)?;
    let delta: f64 = flags.get_or("delta", 0.005)?;

    let trace = load_trace(&trace_path)?;
    let training = trace_window(&trace, Timestamp::EPOCH, Timestamp::from_days(train_days));
    // Under --sketch the cap moves from the screen to the split below:
    // overflow pairs become sketch candidates instead of being dropped.
    let sketched = flags.has("sketch");
    let screen = PairScreen {
        min_cv,
        max_pairs: (!sketched).then_some(max_pairs),
        ..PairScreen::default()
    };
    let mut pairs = screen.select(&training);
    let overflow = if sketched && pairs.len() > max_pairs {
        pairs.split_off(max_pairs)
    } else {
        Vec::new()
    };
    if pairs.is_empty() {
        return Err(format!(
            "the variance screen kept no measurement pairs \
             (of {} measurements); lower --min-cv or extend --train-days",
            training.len()
        ));
    }
    let histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let mut model = ModelConfig::builder()
        .update_threshold(delta)
        .row_format(flags.get_or("row-format", gridwatch_core::RowFormat::Dense)?)
        .build()
        .map_err(|e| e.to_string())?;
    if flags.has("frozen") {
        model = model.frozen();
    }
    let config = EngineConfig {
        model,
        drift: flags
            .has("drift")
            .then(gridwatch_detect::DriftConfig::default),
        sketch: sketched.then(gridwatch_detect::SketchConfig::default),
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(histories, config).map_err(|e| e.to_string())?;
    if !overflow.is_empty() {
        let tracked = overflow.len();
        engine.add_candidates(overflow);
        println!("sketch-tracking {tracked} candidate pairs beyond the --max-pairs cap");
    }

    let outcome = engine.training_outcome();
    println!(
        "trained {} pair models from {train_days} days ({} pairs skipped)",
        outcome.trained,
        outcome.skipped.len()
    );
    for (pair, reason) in &outcome.skipped {
        println!("  skipped {pair}: {reason}");
    }
    engine
        .snapshot()
        .save(std::path::Path::new(&out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("engine snapshot written to {out}");
    Ok(())
}
