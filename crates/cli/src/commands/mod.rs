//! The CLI subcommands.

pub mod audit;
pub mod coordinator;
pub mod inspect;
pub mod monitor;
pub mod serve;
pub mod shard_worker;
pub mod simulate;
pub mod train;

use std::collections::BTreeMap;
use std::path::Path;

use gridwatch_sim::Trace;
use gridwatch_timeseries::{MeasurementId, TimeSeries, Timestamp};

/// Loads a CSV trace from a file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Trace::read_csv(std::io::BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes stats JSON through the checkpoint layer's torn-write-proof
/// path (temp file, fsync, rename), creating parent directories. A
/// reader polling the file mid-write sees either the old stats or the
/// new stats, never a prefix.
pub fn write_stats_atomic(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    gridwatch_serve::write_atomic(Path::new(path), contents)
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Starts the Prometheus endpoint when `--metrics ADDR` was given,
/// printing the bound address (port 0 picks a free port; tests parse
/// this line to find it). The returned guard keeps the endpoint alive;
/// dropping it stops serving.
pub fn start_metrics<F>(
    addr: Option<&str>,
    render: F,
) -> Result<Option<gridwatch_obs::MetricsServer>, String>
where
    F: Fn() -> String + Send + Sync + 'static,
{
    let Some(addr) = addr else {
        return Ok(None);
    };
    let server = gridwatch_obs::MetricsServer::bind(addr, render)
        .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
    println!("metrics on http://{}/metrics", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).map_err(|e| format!("stdout: {e}"))?;
    Ok(Some(server))
}

/// Dumps the flight recorder into the checkpoint directory,
/// best-effort: a failed dump must never take down the serving path it
/// documents.
pub fn dump_flight(recorder: &gridwatch_obs::FlightRecorder, dir: &str, why: &str) {
    let path = Path::new(dir).join("flight.jsonl");
    match recorder.dump(&path) {
        Ok(()) => {
            gridwatch_obs::info!(
                "obs",
                "flight recorder dumped to {} ({why})",
                path.display()
            );
        }
        Err(e) => {
            gridwatch_obs::warn!(
                "obs",
                "cannot dump flight recorder to {}: {e}",
                path.display()
            );
        }
    }
}

/// Installs a panic hook that dumps the flight recorder before the
/// default hook prints the backtrace, so a crash leaves the pipeline's
/// run-up behind in the checkpoint directory.
pub fn install_flight_panic_hook(recorder: gridwatch_obs::FlightRecorder, dir: String) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = recorder.dump(&Path::new(&dir).join("flight.jsonl"));
        prev(info);
    }));
}

/// A trace's series truncated to `[start, end)` per measurement.
pub fn trace_window(
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> BTreeMap<MeasurementId, TimeSeries> {
    trace
        .measurement_ids()
        .map(|id| {
            (
                id,
                trace
                    .series(id)
                    .expect("id from this trace")
                    .slice(start, end),
            )
        })
        .collect()
}
