//! The CLI subcommands.

pub mod audit;
pub mod coordinator;
pub mod eval;
pub mod history;
pub mod inspect;
pub mod monitor;
pub mod serve;
pub mod shard_worker;
pub mod simulate;
pub mod train;

use std::collections::BTreeMap;
use std::path::Path;

use gridwatch_serve::{HistoryDepth, HistorySink};
use gridwatch_sim::Trace;
use gridwatch_store::StoreConfig;
use gridwatch_timeseries::{MeasurementId, TimeSeries, Timestamp};

use crate::flags::Flags;

/// The store flag block shared by `serve`, `coordinator`, and
/// `monitor` help texts.
pub const STORE_HELP: &str = "\
history store:
  --store DIR               append scores, stats samples, and events to
                            the embedded history store at DIR (query it
                            with `gridwatch history`); flight-recorder
                            dumps go here instead of flight.jsonl
  --store-depth D           system | measurements | full   (default
                            measurements; full adds per-pair scores)
  --store-partition-secs N  time-partition width           (default 86400)
  --store-retention-secs N  drop partitions older than N seconds of
                            trace time                     (default: keep all)
  --store-max-partitions N  keep at most N partitions      (default: keep all)";

/// Opens the history sink when `--store DIR` was given, printing what
/// recovery found if it found anything.
pub fn open_history_sink(flags: &Flags) -> Result<Option<HistorySink>, String> {
    let Some(dir) = flags.get::<String>("store")? else {
        return Ok(None);
    };
    let config = StoreConfig {
        partition_secs: flags.get_or(
            "store-partition-secs",
            gridwatch_store::DEFAULT_PARTITION_SECS,
        )?,
        retention_secs: flags.get::<u64>("store-retention-secs")?,
        max_partitions: flags.get::<u64>("store-max-partitions")?,
    };
    let depth: HistoryDepth = flags.get_or("store-depth", HistoryDepth::default())?;
    let (sink, report) = HistorySink::open(Path::new(&dir), config, depth)
        .map_err(|e| format!("cannot open history store {dir}: {e}"))?;
    if report.replayed_records > 0
        || report.already_sealed_records > 0
        || report.truncated_bytes > 0
    {
        println!(
            "history store {dir}: recovered {} unsealed records ({} already sealed, \
             {} torn bytes truncated)",
            report.replayed_records, report.already_sealed_records, report.truncated_bytes
        );
    }
    Ok(Some(sink))
}

/// Loads a CSV trace from a file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Trace::read_csv(std::io::BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes stats JSON through the checkpoint layer's torn-write-proof
/// path (temp file, fsync, rename), creating parent directories. A
/// reader polling the file mid-write sees either the old stats or the
/// new stats, never a prefix.
pub fn write_stats_atomic(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    gridwatch_serve::write_atomic(Path::new(path), contents)
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Starts the Prometheus endpoint when `--metrics ADDR` was given,
/// printing the bound address (port 0 picks a free port; tests parse
/// this line to find it). The returned guard keeps the endpoint alive;
/// dropping it stops serving.
pub fn start_metrics<F>(
    addr: Option<&str>,
    render: F,
) -> Result<Option<gridwatch_obs::MetricsServer>, String>
where
    F: Fn() -> String + Send + Sync + 'static,
{
    let Some(addr) = addr else {
        return Ok(None);
    };
    let server = gridwatch_obs::MetricsServer::bind(addr, render)
        .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
    println!("metrics on http://{}/metrics", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).map_err(|e| format!("stdout: {e}"))?;
    Ok(Some(server))
}

/// Checkpoint-cadence store maintenance: drain the flight recorder,
/// sample the stats document, then seal and apply retention. A no-op
/// without `--store`.
pub fn store_checkpoint<F: FnOnce() -> String>(
    sink: &mut Option<HistorySink>,
    recorder: &gridwatch_obs::FlightRecorder,
    at: u64,
    stats_json: F,
) -> Result<(), String> {
    let Some(sink) = sink.as_mut() else {
        return Ok(());
    };
    sink.drain_recorder(recorder, at)
        .map_err(|e| format!("history store event drain failed: {e}"))?;
    sink.append_stats(at, stats_json())
        .map_err(|e| format!("history store stats sample failed: {e}"))?;
    let dropped = sink
        .checkpoint()
        .map_err(|e| format!("history store checkpoint failed: {e}"))?;
    if !dropped.is_empty() {
        println!(
            "history store: retention dropped {} expired partition(s)",
            dropped.len()
        );
    }
    Ok(())
}

/// Dumps the flight recorder, best-effort: a failed dump must never
/// take down the serving path it documents.
///
/// With a history sink, new events drain into the store (incremental
/// by global index, then fsynced) and the store's retention bounds
/// them — the unbounded `flight.jsonl` rewrite is the fallback for
/// runs without `--store`.
pub fn dump_flight(
    recorder: &gridwatch_obs::FlightRecorder,
    sink: &mut Option<HistorySink>,
    dir: Option<&str>,
    at: u64,
    why: &str,
) {
    if let Some(sink) = sink.as_mut() {
        let drained = sink
            .drain_recorder(recorder, at)
            .and_then(|n| sink.sync().map(|()| n));
        match drained {
            Ok(n) => {
                gridwatch_obs::info!(
                    "obs",
                    "flight recorder drained into {} ({n} new events, {why})",
                    sink.store().dir().display()
                );
            }
            Err(e) => {
                gridwatch_obs::warn!("obs", "cannot drain flight recorder into the store: {e}");
            }
        }
        return;
    }
    let Some(dir) = dir else { return };
    let path = Path::new(dir).join("flight.jsonl");
    match recorder.dump(&path) {
        Ok(()) => {
            gridwatch_obs::info!(
                "obs",
                "flight recorder dumped to {} ({why})",
                path.display()
            );
        }
        Err(e) => {
            gridwatch_obs::warn!(
                "obs",
                "cannot dump flight recorder to {}: {e}",
                path.display()
            );
        }
    }
}

/// Installs a panic hook that dumps the flight recorder before the
/// default hook prints the backtrace, so a crash leaves the pipeline's
/// run-up behind in the checkpoint directory.
pub fn install_flight_panic_hook(recorder: gridwatch_obs::FlightRecorder, dir: String) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = recorder.dump(&Path::new(&dir).join("flight.jsonl"));
        prev(info);
    }));
}

/// A trace's series truncated to `[start, end)` per measurement.
pub fn trace_window(
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> BTreeMap<MeasurementId, TimeSeries> {
    trace
        .measurement_ids()
        .map(|id| {
            (
                id,
                trace
                    .series(id)
                    .expect("id from this trace")
                    .slice(start, end),
            )
        })
        .collect()
}
