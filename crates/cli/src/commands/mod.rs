//! The CLI subcommands.

pub mod audit;
pub mod coordinator;
pub mod inspect;
pub mod monitor;
pub mod serve;
pub mod shard_worker;
pub mod simulate;
pub mod train;

use std::collections::BTreeMap;
use std::path::Path;

use gridwatch_sim::Trace;
use gridwatch_timeseries::{MeasurementId, TimeSeries, Timestamp};

/// Loads a CSV trace from a file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Trace::read_csv(std::io::BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// A trace's series truncated to `[start, end)` per measurement.
pub fn trace_window(
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> BTreeMap<MeasurementId, TimeSeries> {
    trace
        .measurement_ids()
        .map(|id| {
            (
                id,
                trace
                    .series(id)
                    .expect("id from this trace")
                    .slice(start, end),
            )
        })
        .collect()
}
