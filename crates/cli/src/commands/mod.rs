//! The CLI subcommands.

pub mod audit;
pub mod coordinator;
pub mod eval;
pub mod history;
pub mod inspect;
pub mod monitor;
pub mod serve;
pub mod shard_worker;
pub mod simulate;
pub mod trace;
pub mod train;

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gridwatch_serve::{HistoryDepth, HistorySink};
use gridwatch_sim::Trace;
use gridwatch_store::StoreConfig;
use gridwatch_timeseries::{MeasurementId, TimeSeries, Timestamp};

use crate::flags::Flags;

/// The store flag block shared by `serve`, `coordinator`, and
/// `monitor` help texts.
pub const STORE_HELP: &str = "\
history store:
  --store DIR               append scores, stats samples, and events to
                            the embedded history store at DIR (query it
                            with `gridwatch history`); flight-recorder
                            dumps go here instead of flight.jsonl
  --store-depth D           system | measurements | full   (default
                            measurements; full adds per-pair scores)
  --store-partition-secs N  time-partition width           (default 86400)
  --store-retention-secs N  drop partitions older than N seconds of
                            trace time                     (default: keep all)
  --store-max-partitions N  keep at most N partitions      (default: keep all)";

/// The causal-tracing flag block shared by `serve` and `coordinator`
/// help texts.
pub const TRACE_HELP: &str = "\
causal tracing (tail-based exemplars; off — and free — unless a
--trace-* flag is given; alarmed snapshots are always retained while
tracing is on, and with --store the retained exemplars persist as
trace records, queryable with `gridwatch trace`):
  --trace-exemplars N       retain up to N exemplar traces (default 64)
  --trace-budget-ns N       also retain any snapshot whose slowest
                            stage span exceeds N nanoseconds
  --trace-head-every N      also retain every N-th snapshot regardless
                            of outcome (1-in-N head sample)";

/// The exemplar tail-sampling config from the `--trace-*` flags;
/// `None` (tracing stays disabled and zero-cost) when no flag was
/// given.
pub fn exemplar_config(flags: &Flags) -> Result<Option<gridwatch_obs::ExemplarConfig>, String> {
    let ring: Option<usize> = flags.get("trace-exemplars")?;
    let budget: Option<u64> = flags.get("trace-budget-ns")?;
    let head: Option<u64> = flags.get("trace-head-every")?;
    if ring.is_none() && budget.is_none() && head.is_none() {
        return Ok(None);
    }
    let base = gridwatch_obs::ExemplarConfig::default();
    let config = gridwatch_obs::ExemplarConfig {
        ring_capacity: ring.unwrap_or(base.ring_capacity),
        stage_budget_ns: budget.unwrap_or(base.stage_budget_ns),
        head_sample_every: head.unwrap_or(base.head_sample_every),
        ..base
    };
    if config.ring_capacity == 0 {
        return Err("--trace-exemplars must be positive".to_string());
    }
    Ok(Some(config))
}

/// Wall-clock Unix seconds (0 if the clock is before the epoch).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Shared wall-clock health inputs: the serving loop stamps these at
/// checkpoint cadence, the metrics thread folds them into `/healthz`.
#[derive(Debug, Default)]
pub struct HealthState {
    /// Unix seconds of the last completed checkpoint; 0 = never.
    checkpoint_unix: AtomicU64,
    /// History-store WAL records not yet sealed at the last stamp.
    wal_lag: AtomicU64,
    /// Alarm total at the previous `/healthz` poll, for the
    /// alarms-since-last-poll degrade.
    polled_alarms: AtomicU64,
}

impl HealthState {
    /// Stamps a completed checkpoint and the store's residual WAL lag.
    pub fn note_checkpoint(&self, wal_lag: u64) {
        self.checkpoint_unix.store(unix_now(), Ordering::Relaxed);
        self.wal_lag.store(wal_lag, Ordering::Relaxed);
    }
}

/// Builds the `/healthz` closure: structural shard health from the
/// probe, layered with checkpoint age, WAL lag, and an
/// alarms-since-last-poll degrade. The delta form matters: a
/// cumulative alarm count would pin the node degraded forever, while
/// the delta clears — and `/healthz` flips back to ok — once the
/// pipeline goes quiet after a fault window.
pub fn health_closure<P>(
    probe: P,
    state: Arc<HealthState>,
) -> impl Fn() -> (bool, String) + Send + 'static
where
    P: Fn() -> gridwatch_obs::HealthReport + Send + 'static,
{
    move || {
        let mut report = probe();
        let checkpoint_unix = state.checkpoint_unix.load(Ordering::Relaxed);
        if checkpoint_unix > 0 {
            report.checkpoint_age_secs = Some(unix_now().saturating_sub(checkpoint_unix) as i64);
        }
        report.store_wal_lag = state.wal_lag.load(Ordering::Relaxed);
        let before = state.polled_alarms.swap(report.alarms, Ordering::Relaxed);
        if report.alarms > before {
            report.degrade(format!(
                "{} new alarm(s) since last poll",
                report.alarms - before
            ));
        }
        (report.is_ok(), report.to_json())
    }
}

/// Wraps a Prometheus render closure so every scrape also files a
/// burn sample and appends the rolling multi-window burn-rate gauges
/// to the exposition.
pub fn with_burn_gauges<R, S>(render: R, sample: S) -> impl Fn() -> String + Send + 'static
where
    R: Fn() -> String + Send + 'static,
    S: Fn() -> gridwatch_obs::BurnSample + Send + 'static,
{
    let gauges = gridwatch_obs::BurnGauges::new();
    move || {
        let now = unix_now();
        gauges.observe(now, sample());
        let mut text = render();
        let mut expo = gridwatch_obs::Exposition::new();
        gauges.render_into(now, &mut expo);
        text.push_str(&expo.finish());
        text
    }
}

/// Opens the history sink when `--store DIR` was given, printing what
/// recovery found if it found anything.
pub fn open_history_sink(flags: &Flags) -> Result<Option<HistorySink>, String> {
    let Some(dir) = flags.get::<String>("store")? else {
        return Ok(None);
    };
    let config = StoreConfig {
        partition_secs: flags.get_or(
            "store-partition-secs",
            gridwatch_store::DEFAULT_PARTITION_SECS,
        )?,
        retention_secs: flags.get::<u64>("store-retention-secs")?,
        max_partitions: flags.get::<u64>("store-max-partitions")?,
    };
    let depth: HistoryDepth = flags.get_or("store-depth", HistoryDepth::default())?;
    let (sink, report) = HistorySink::open(Path::new(&dir), config, depth)
        .map_err(|e| format!("cannot open history store {dir}: {e}"))?;
    if report.replayed_records > 0
        || report.already_sealed_records > 0
        || report.truncated_bytes > 0
    {
        println!(
            "history store {dir}: recovered {} unsealed records ({} already sealed, \
             {} torn bytes truncated)",
            report.replayed_records, report.already_sealed_records, report.truncated_bytes
        );
    }
    Ok(Some(sink))
}

/// Loads a CSV trace from a file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Trace::read_csv(std::io::BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes stats JSON through the checkpoint layer's torn-write-proof
/// path (temp file, fsync, rename), creating parent directories. A
/// reader polling the file mid-write sees either the old stats or the
/// new stats, never a prefix.
pub fn write_stats_atomic(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory for {path}: {e}"))?;
        }
    }
    gridwatch_serve::write_atomic(Path::new(path), contents)
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Starts the Prometheus endpoint when `--metrics ADDR` was given,
/// printing the bound address (port 0 picks a free port; tests parse
/// this line to find it). The returned guard keeps the endpoint alive;
/// dropping it stops serving.
pub fn start_metrics<F>(
    addr: Option<&str>,
    render: F,
) -> Result<Option<gridwatch_obs::MetricsServer>, String>
where
    F: Fn() -> String + Send + Sync + 'static,
{
    let Some(addr) = addr else {
        return Ok(None);
    };
    let server = gridwatch_obs::MetricsServer::bind(addr, render)
        .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
    println!("metrics on http://{}/metrics", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).map_err(|e| format!("stdout: {e}"))?;
    Ok(Some(server))
}

/// `start_metrics` plus the health plane: the same endpoint also
/// answers `GET /healthz` (always 200) and `GET /readyz` (503 when
/// degraded) with the pinned-schema JSON the closure renders.
pub fn start_metrics_with_health<F, H>(
    addr: Option<&str>,
    render: F,
    health: H,
) -> Result<Option<gridwatch_obs::MetricsServer>, String>
where
    F: Fn() -> String + Send + 'static,
    H: Fn() -> (bool, String) + Send + 'static,
{
    let Some(addr) = addr else {
        return Ok(None);
    };
    let server = gridwatch_obs::MetricsServer::bind_with_health(addr, render, health)
        .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
    println!("metrics on http://{}/metrics", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).map_err(|e| format!("stdout: {e}"))?;
    Ok(Some(server))
}

/// Checkpoint-cadence store maintenance: drain the flight recorder
/// and any retained exemplar traces, sample the stats document, then
/// seal and apply retention. A no-op without `--store`.
pub fn store_checkpoint<F: FnOnce() -> String>(
    sink: &mut Option<HistorySink>,
    recorder: &gridwatch_obs::FlightRecorder,
    exemplars: &gridwatch_obs::ExemplarTracer,
    at: u64,
    stats_json: F,
) -> Result<(), String> {
    let Some(sink) = sink.as_mut() else {
        return Ok(());
    };
    sink.drain_recorder(recorder, at)
        .map_err(|e| format!("history store event drain failed: {e}"))?;
    if exemplars.is_enabled() {
        sink.drain_exemplars(exemplars)
            .map_err(|e| format!("history store exemplar drain failed: {e}"))?;
    }
    sink.append_stats(at, stats_json())
        .map_err(|e| format!("history store stats sample failed: {e}"))?;
    let dropped = sink
        .checkpoint()
        .map_err(|e| format!("history store checkpoint failed: {e}"))?;
    if !dropped.is_empty() {
        println!(
            "history store: retention dropped {} expired partition(s)",
            dropped.len()
        );
    }
    Ok(())
}

/// Dumps the flight recorder, best-effort: a failed dump must never
/// take down the serving path it documents.
///
/// With a history sink, new events drain into the store (incremental
/// by global index, then fsynced) and the store's retention bounds
/// them — the unbounded `flight.jsonl` rewrite is the fallback for
/// runs without `--store`.
pub fn dump_flight(
    recorder: &gridwatch_obs::FlightRecorder,
    exemplars: &gridwatch_obs::ExemplarTracer,
    sink: &mut Option<HistorySink>,
    dir: Option<&str>,
    at: u64,
    why: &str,
) {
    if let Some(sink) = sink.as_mut() {
        // Alarm-time dumps also flush the retained exemplar traces,
        // so the causal record of the alarmed snapshot is durable the
        // moment the operator goes looking for it.
        let drained = sink
            .drain_recorder(recorder, at)
            .and_then(|n| {
                if exemplars.is_enabled() {
                    sink.drain_exemplars(exemplars).map(|_| n)
                } else {
                    Ok(n)
                }
            })
            .and_then(|n| sink.sync().map(|()| n));
        match drained {
            Ok(n) => {
                gridwatch_obs::info!(
                    "obs",
                    "flight recorder drained into {} ({n} new events, {why})",
                    sink.store().dir().display()
                );
            }
            Err(e) => {
                gridwatch_obs::warn!("obs", "cannot drain flight recorder into the store: {e}");
            }
        }
        return;
    }
    let Some(dir) = dir else { return };
    let path = Path::new(dir).join("flight.jsonl");
    match recorder.dump(&path) {
        Ok(()) => {
            gridwatch_obs::info!(
                "obs",
                "flight recorder dumped to {} ({why})",
                path.display()
            );
        }
        Err(e) => {
            gridwatch_obs::warn!(
                "obs",
                "cannot dump flight recorder to {}: {e}",
                path.display()
            );
        }
    }
}

/// Installs a panic hook that dumps the flight recorder before the
/// default hook prints the backtrace, so a crash leaves the pipeline's
/// run-up behind in the checkpoint directory.
pub fn install_flight_panic_hook(recorder: gridwatch_obs::FlightRecorder, dir: String) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = recorder.dump(&Path::new(&dir).join("flight.jsonl"));
        prev(info);
    }));
}

/// A trace's series truncated to `[start, end)` per measurement.
pub fn trace_window(
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> BTreeMap<MeasurementId, TimeSeries> {
    trace
        .measurement_ids()
        .map(|id| {
            (
                id,
                trace
                    .series(id)
                    .expect("id from this trace")
                    .slice(start, end),
            )
        })
        .collect()
}
