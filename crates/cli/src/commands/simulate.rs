//! `gridwatch simulate` — generate monitoring data as CSV.

use gridwatch_sim::chaos::chaos_scenario;
use gridwatch_sim::scenario::{clean_scenario, group_fault_scenario};
use gridwatch_sim::ChaosRegime;
use gridwatch_timeseries::GroupId;

use crate::commands::write_file;
use crate::flags::Flags;

const HELP: &str = "\
gridwatch simulate --out FILE [flags]

  --out FILE       where to write the CSV trace (required)
  --group A|B|C    infrastructure group flavour   (default A)
  --machines N     machines in the group          (default 4)
  --days N         days of data from May 29       (default 30)
  --seed N         RNG seed                       (default 20080529)
  --fault          inject the Figure-12 fault scenario (correlation
                   break on the test day + load-spike control); the
                   ground-truth windows are printed
  --chaos R        inject a hostile-conditions regime instead: drift |
                   skew | flapping | overload | cascade (group A; the
                   ground-truth and expected-rebuild windows are
                   printed; see `gridwatch eval --chaos`)";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["fault"])?;
    let out: String = flags.require("out")?;
    let group: GroupId = flags.get_or("group", GroupId::A)?;
    let machines: usize = flags.get_or("machines", 4)?;
    let days: u64 = flags.get_or("days", 30)?;
    let seed: u64 = flags.get_or("seed", 20080529)?;
    if machines == 0 || days == 0 {
        return Err("--machines and --days must be positive".into());
    }

    let chaos_regime: Option<ChaosRegime> = flags.get("chaos")?;
    if chaos_regime.is_some() && flags.has("fault") {
        return Err("--fault and --chaos are mutually exclusive".into());
    }
    let (full_trace, truth_windows, rebuild_windows) = if let Some(regime) = chaos_regime {
        let scenario = chaos_scenario(regime, machines, seed);
        let truth = scenario.truth_windows();
        let rebuilds = scenario.chaos.rebuild_windows();
        (scenario.trace, truth, rebuilds)
    } else if flags.has("fault") {
        let scenario = group_fault_scenario(group, machines, seed);
        let truth = scenario.faults.truth_windows();
        (scenario.trace, truth, Vec::new())
    } else {
        let scenario = clean_scenario(group, machines, seed);
        let truth = scenario.faults.truth_windows();
        (scenario.trace, truth, Vec::new())
    };
    // Truncate to the requested number of days.
    let window = crate::commands::trace_window(
        &full_trace,
        gridwatch_timeseries::Timestamp::EPOCH,
        gridwatch_timeseries::Timestamp::from_days(days),
    );
    let trace = gridwatch_sim::Trace::from_parts(
        full_trace.catalog().clone(),
        window,
        full_trace.interval(),
    );
    write_file(&out, &trace.to_csv_string())?;

    println!(
        "wrote {} measurements x {} days ({} samples) to {}",
        trace.measurement_count(),
        days,
        trace
            .measurement_ids()
            .next()
            .and_then(|id| trace.series(id).map(|s| s.len()))
            .unwrap_or(0),
        out
    );
    for (start, end) in truth_windows {
        println!("ground-truth fault window: [{start}, {end})");
    }
    for (start, end) in rebuild_windows {
        println!("expected-rebuild window: [{start}, {end})");
    }
    Ok(())
}
