//! `gridwatch simulate` — generate monitoring data as CSV.

use gridwatch_sim::scenario::{clean_scenario, group_fault_scenario};
use gridwatch_timeseries::GroupId;

use crate::commands::write_file;
use crate::flags::Flags;

const HELP: &str = "\
gridwatch simulate --out FILE [flags]

  --out FILE       where to write the CSV trace (required)
  --group A|B|C    infrastructure group flavour   (default A)
  --machines N     machines in the group          (default 4)
  --days N         days of data from May 29       (default 30)
  --seed N         RNG seed                       (default 20080529)
  --fault          inject the Figure-12 fault scenario (correlation
                   break on the test day + load-spike control); the
                   ground-truth windows are printed";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["fault"])?;
    let out: String = flags.require("out")?;
    let group: GroupId = flags.get_or("group", GroupId::A)?;
    let machines: usize = flags.get_or("machines", 4)?;
    let days: u64 = flags.get_or("days", 30)?;
    let seed: u64 = flags.get_or("seed", 20080529)?;
    if machines == 0 || days == 0 {
        return Err("--machines and --days must be positive".into());
    }

    let scenario = if flags.has("fault") {
        group_fault_scenario(group, machines, seed)
    } else {
        clean_scenario(group, machines, seed)
    };
    // Truncate to the requested number of days.
    let window = crate::commands::trace_window(
        &scenario.trace,
        gridwatch_timeseries::Timestamp::EPOCH,
        gridwatch_timeseries::Timestamp::from_days(days),
    );
    let trace = gridwatch_sim::Trace::from_parts(
        scenario.trace.catalog().clone(),
        window,
        scenario.trace.interval(),
    );
    write_file(&out, &trace.to_csv_string())?;

    println!(
        "wrote {} measurements x {} days ({} samples) to {}",
        trace.measurement_count(),
        days,
        trace
            .measurement_ids()
            .next()
            .and_then(|id| trace.series(id).map(|s| s.len()))
            .unwrap_or(0),
        out
    );
    for (start, end) in scenario.faults.truth_windows() {
        println!("ground-truth fault window: [{start}, {end})");
    }
    Ok(())
}
