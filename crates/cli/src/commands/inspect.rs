//! `gridwatch inspect` — summarize a persisted engine snapshot.

use gridwatch_detect::EngineSnapshot;

use crate::flags::Flags;

const HELP: &str = "\
gridwatch inspect --engine FILE [--verbose]

  --engine FILE   engine snapshot from `gridwatch train`
  --verbose       per-pair grid shape and observation counts";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["verbose"])?;
    let engine_path: String = flags.require("engine")?;
    let json = std::fs::read_to_string(&engine_path)
        .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
    let snapshot: EngineSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?;

    println!("engine snapshot: {engine_path}");
    println!("  pair models: {}", snapshot.models.len());
    println!(
        "  model config: kernel {:?}, w {}, delta {}, adaptive {}",
        snapshot.config.model.kernel,
        snapshot.config.model.decay_rate,
        snapshot.config.model.update_threshold,
        snapshot.config.model.adaptive
    );
    println!(
        "  alarm policy: system < {}, measurement < {}, {} consecutive",
        snapshot.config.alarm.system_threshold,
        snapshot.config.alarm.measurement_threshold,
        snapshot.config.alarm.min_consecutive
    );
    let total_cells: usize = snapshot
        .models
        .iter()
        .map(|(_, m)| m.grid().cell_count())
        .sum();
    let total_obs: u64 = snapshot
        .models
        .iter()
        .map(|(_, m)| m.matrix().total_observations())
        .sum();
    println!("  total cells: {total_cells}, learned transitions: {total_obs}");
    if flags.has("verbose") {
        for (pair, model) in &snapshot.models {
            println!(
                "  {pair}: grid {}x{}, {} transitions, {} outliers, {} extensions",
                model.grid().columns(),
                model.grid().rows(),
                model.matrix().total_observations(),
                model.outliers(),
                model.extensions()
            );
        }
    }
    Ok(())
}
