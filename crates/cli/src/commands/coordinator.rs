//! `gridwatch coordinator` — drive a multi-node shard fabric: replay a
//! trace through remote `shard-worker` processes, merge their partial
//! boards into the same in-order report stream `gridwatch serve`
//! produces, checkpoint the fabric, and migrate shards when a worker
//! dies.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gridwatch_detect::{EngineSnapshot, Snapshot};
use gridwatch_obs::PipelineObs;
use gridwatch_serve::{Checkpointer, Coordinator, FabricConfig, FabricError};
use gridwatch_timeseries::Timestamp;

use crate::commands::serve::ReportTally;
use crate::commands::{
    dump_flight, exemplar_config, health_closure, install_flight_panic_hook, load_trace,
    open_history_sink, start_metrics_with_health, store_checkpoint, with_burn_gauges,
    write_stats_atomic, HealthState,
};
use crate::flags::Flags;

const HELP: &str = "\
gridwatch coordinator --trace FILE --engine FILE --workers ADDR[,ADDR...] [flags]

input:
  --trace FILE              CSV monitoring data to replay
  --workers A[,B,...]       shard-worker addresses, one shard per worker
                            (resume default: the checkpoint's recorded
                            workers)

engine:
  --engine FILE             engine snapshot from `gridwatch train`
  --system-threshold X      alarm when Q_t < X            (engine default)
  --measurement-threshold X alarm when Q^a_t < X          (engine default)
  --consecutive N           debounce: N consecutive lows  (engine default)

replay:
  --from-day N              first day to stream (default 15 = June 13)
  --days N                  days to stream      (default 1)
  --rate X                  replay rate in snapshots/sec  (default: unthrottled)

durability:
  --checkpoint DIR          checkpoint into DIR (at the end, and every
                            --checkpoint-every snapshots when given)
  --checkpoint-every N      checkpoint period in snapshots (default: end only)
  --resume                  recover fabric state from --checkpoint DIR
                            instead of --engine; skips the already-served
                            prefix and fences all pre-crash assignments
  --reattach-secs N         when a worker dies, retry its address for up
                            to N seconds before giving up (default 0:
                            fail fast)
  --halt-workers            send workers a shutdown control at exit
                            (default: leave them listening)
  --stats FILE              write fabric stats as JSON at exit

history store:
  --store DIR               append score history, stats samples, and
                            events to the embedded store at DIR (sealed
                            and retention-pruned at checkpoint cadence;
                            query with `gridwatch history`)
  --store-depth D           system | measurements | full  (default measurements)
  --store-partition-secs N  time-partition width          (default 86400)
  --store-retention-secs N  drop partitions older than N trace seconds
  --store-max-partitions N  keep at most N partitions

observability:
  --metrics ADDR            serve Prometheus metrics (plus burn-rate
                            gauges, GET /healthz, and GET /readyz) over
                            HTTP on ADDR (e.g. 127.0.0.1:0; port 0
                            picks a free port) and enable span tracing
                            across the fabric (workers are told to
                            trace in the handshake); flight recorder
                            dumps land in --checkpoint DIR

Causal tracing flags (--trace-exemplars, --trace-budget-ns,
--trace-head-every) also ride the handshake: workers ship their
ingest/decode/score span slices inside each board frame.";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}\n\n{}", crate::commands::TRACE_HELP);
        return Ok(());
    }
    let flags = Flags::parse(args, &["resume", "halt-workers"])?;
    let trace_path: String = flags.require("trace")?;
    let from_day: u64 = flags.get_or("from-day", 15)?;
    let days: u64 = flags.get_or("days", 1)?;
    let rate: f64 = flags.get_or("rate", 0.0)?;
    let checkpoint_dir: Option<String> = flags.get("checkpoint")?;
    let checkpoint_every: u64 = flags.get_or("checkpoint-every", 0)?;
    let stats_path: Option<String> = flags.get("stats")?;
    let reattach_secs: u64 = flags.get_or("reattach-secs", 0)?;
    if flags.has("resume") && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint DIR".to_string());
    }

    let mut addrs: Vec<String> = flags
        .get::<String>("workers")?
        .map(|list| {
            list.split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect()
        })
        .unwrap_or_default();

    // Starting state: a fresh engine snapshot, or a recovered fabric
    // checkpoint (which also pins the resume cut and the epoch base).
    let (mut snapshot, fabric, skip): (EngineSnapshot, FabricConfig, u64) = if flags.has("resume") {
        let dir = checkpoint_dir.as_deref().expect("checked above");
        let (snapshot, manifest) = Checkpointer::new(dir)
            .recover()
            .map_err(|e| format!("cannot resume from {dir}: {e}"))?;
        if addrs.is_empty() {
            addrs = manifest.remote.iter().map(|r| r.source.clone()).collect();
        }
        println!(
            "resumed from checkpoint at {dir} (cut seq {}, fabric epoch {}, {} remote shards)",
            manifest.cut_seq,
            manifest.fabric_epoch,
            manifest.remote.len()
        );
        let fabric = FabricConfig {
            start_seq: manifest.cut_seq,
            epoch_base: manifest.fabric_epoch,
            ..FabricConfig::default()
        };
        (snapshot, fabric, manifest.cut_seq)
    } else {
        let engine_path: String = flags.require("engine")?;
        let json = std::fs::read_to_string(&engine_path)
            .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
        let snapshot =
            serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?;
        (snapshot, FabricConfig::default(), 0)
    };
    if addrs.is_empty() {
        return Err(
            "--workers is required (or resume a checkpoint that recorded them)".to_string(),
        );
    }
    snapshot.config.alarm.system_threshold =
        flags.get_or("system-threshold", snapshot.config.alarm.system_threshold)?;
    snapshot.config.alarm.measurement_threshold = flags.get_or(
        "measurement-threshold",
        snapshot.config.alarm.measurement_threshold,
    )?;
    snapshot.config.alarm.min_consecutive =
        flags.get_or("consecutive", snapshot.config.alarm.min_consecutive)?;

    let trace = load_trace(&trace_path)?;
    let mut sink = open_history_sink(&flags)?;
    let pairs = snapshot.models.len();
    let metrics_addr: Option<String> = flags.get("metrics")?;
    let obs = PipelineObs::default();
    if metrics_addr.is_some() {
        // The Hello handshake propagates the enabled tracer to every
        // worker, so one flag lights up the whole fabric.
        obs.tracer.enable();
    }
    if let Some(config) = exemplar_config(&flags)? {
        // Also handshake-propagated: workers ship span slices inside
        // their board frames when exemplars are on.
        obs.exemplar.enable(config);
    }
    if let Some(dir) = checkpoint_dir.clone() {
        install_flight_panic_hook(obs.recorder.clone(), dir);
    }
    let mut coordinator = Coordinator::connect_with_obs(snapshot, &addrs, fabric, obs.clone())
        .map_err(|e| format!("cannot connect the fabric: {e}"))?;
    println!(
        "coordinating {} remote shards ({} pairs) over {:?}",
        addrs.len(),
        pairs,
        addrs
    );
    let health_state = Arc::new(HealthState::default());
    let probe = coordinator.metrics_probe();
    let sample_probe = coordinator.metrics_probe();
    let health_probe = coordinator.metrics_probe();
    let _metrics = start_metrics_with_health(
        metrics_addr.as_deref(),
        with_burn_gauges(
            move || probe.to_prometheus(),
            move || sample_probe.burn_sample(),
        ),
        health_closure(
            move || health_probe.health_report(),
            Arc::clone(&health_state),
        ),
    )?;

    let start = Timestamp::from_days(from_day);
    let end = Timestamp::from_days(from_day + days);
    let tick_budget = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };

    let began = Instant::now();
    let mut ticks = 0u64;
    let mut last_at = start.as_secs();
    let mut tally = ReportTally::default();

    for t in trace.interval().ticks(start, end) {
        let deadline = tick_budget.map(|budget| Instant::now() + budget);
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
                snap.insert(id, v);
            }
        }
        if snap.is_empty() {
            continue;
        }
        ticks += 1;
        // A resumed coordinator has already served (and checkpointed)
        // the first `skip` snapshots of the window.
        if ticks <= skip {
            continue;
        }
        last_at = t.as_secs();
        coordinator
            .submit(snap)
            .map_err(|e| format!("submit failed: {e}"))?;
        if !coordinator.dead_shards().is_empty() {
            reattach(&mut coordinator, &addrs, reattach_secs)?;
        }
        if checkpoint_every > 0 && (ticks - skip).is_multiple_of(checkpoint_every) {
            if let Some(dir) = checkpoint_dir.as_deref() {
                checkpoint(&mut coordinator, &addrs, reattach_secs, dir)?;
            }
            let probe = coordinator.metrics_probe();
            store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
                serde_json::to_string_pretty(&probe.stats()).unwrap_or_default()
            })?;
            health_state.note_checkpoint(sink.as_ref().map_or(0, |s| s.store().unsealed_records()));
        }
        while let Some(report) = coordinator.try_recv_report() {
            if !report.alarms.is_empty() {
                dump_flight(
                    &obs.recorder,
                    &obs.exemplar,
                    &mut sink,
                    checkpoint_dir.as_deref(),
                    report.scores.at().as_secs(),
                    "alarm",
                );
            }
            if let Some(sink) = sink.as_mut() {
                sink.append_report(&report)
                    .map_err(|e| format!("history store append failed: {e}"))?;
            }
            tally.note(&report);
        }
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now < deadline {
                std::thread::sleep(deadline - now);
            }
        }
    }

    if let Some(dir) = checkpoint_dir.as_deref() {
        if !coordinator.dead_shards().is_empty() {
            reattach(&mut coordinator, &addrs, reattach_secs)?;
        }
        checkpoint(&mut coordinator, &addrs, reattach_secs, dir)?;
    }
    let (rest, stats) = coordinator.shutdown(flags.has("halt-workers"));
    for report in &rest {
        if let Some(sink) = sink.as_mut() {
            sink.append_report(report)
                .map_err(|e| format!("history store append failed: {e}"))?;
        }
        tally.note(report);
    }
    dump_flight(
        &obs.recorder,
        &obs.exemplar,
        &mut sink,
        checkpoint_dir.as_deref(),
        last_at,
        "shutdown",
    );
    store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
        serde_json::to_string_pretty(&stats).unwrap_or_default()
    })?;
    let elapsed = began.elapsed();

    println!(
        "served {} snapshots over day {from_day}..{} across {} remote shards: \
         {} reports, {} alarms, {} disconnects, {} migrations, {} boards fenced",
        ticks.saturating_sub(skip),
        from_day + days,
        stats.shards,
        stats.reports,
        tally.alarms,
        stats.disconnects,
        stats.migrations,
        stats.stale_boards + stats.duplicate_boards + stats.replayed_boards + stats.bad_boards,
    );
    if elapsed.as_secs_f64() > 0.0 {
        println!(
            "throughput: {:.1} snapshots/sec (wall {:.2}s)",
            ticks.saturating_sub(skip) as f64 / elapsed.as_secs_f64(),
            elapsed.as_secs_f64()
        );
    }
    tally.print_floor();
    if let Some(path) = stats_path.as_deref() {
        let json = serde_json::to_string_pretty(&stats)
            .map_err(|e| format!("cannot serialize stats: {e}"))?;
        write_stats_atomic(path, &json)?;
        println!("fabric stats written to {path}");
    }
    Ok(())
}

/// Re-dials dead shards at their original addresses until every shard
/// is live again or the budget runs out.
fn reattach(
    coordinator: &mut Coordinator,
    addrs: &[String],
    reattach_secs: u64,
) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(reattach_secs);
    loop {
        for shard in coordinator.dead_shards() {
            match coordinator.attach_worker(shard, &addrs[shard]) {
                Ok(()) => println!("reattached shard {shard} to {}", addrs[shard]),
                Err(_) if reattach_secs > 0 => {}
                Err(e) => return Err(format!("shard {shard} is dead: {e}")),
            }
        }
        if coordinator.dead_shards().is_empty() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "shards {:?} still dead after {reattach_secs}s of reattach attempts",
                coordinator.dead_shards()
            ));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Checkpoints the fabric, reattaching first if a worker died between
/// the dead-shard check and the cut.
fn checkpoint(
    coordinator: &mut Coordinator,
    addrs: &[String],
    reattach_secs: u64,
    dir: &str,
) -> Result<(), String> {
    match coordinator.checkpoint(dir) {
        Ok(id) => {
            println!("checkpoint {id} written to {dir}");
            Ok(())
        }
        Err(FabricError::Degraded { .. }) if reattach_secs > 0 => {
            reattach(coordinator, addrs, reattach_secs)?;
            let id = coordinator
                .checkpoint(dir)
                .map_err(|e| format!("checkpoint failed after reattach: {e}"))?;
            println!("checkpoint {id} written to {dir}");
            Ok(())
        }
        Err(e) => Err(format!("checkpoint failed: {e}")),
    }
}
