//! `gridwatch shard-worker` — serve one shard of the multi-node
//! fabric: a small TCP process that adopts whatever model slice the
//! coordinator ships in its handshake, scores snapshots with it, and
//! streams partial boards back.

use std::io::Write;

use gridwatch_obs::PipelineObs;
use gridwatch_serve::ShardWorker;

use crate::commands::start_metrics;
use crate::flags::Flags;

const HELP: &str = "\
gridwatch shard-worker --listen ADDR [flags]

  --listen ADDR             accept coordinator sessions on ADDR (e.g.
                            127.0.0.1:7801; port 0 picks a free port)
  --metrics ADDR            serve Prometheus metrics over HTTP on ADDR
                            (port 0 picks a free port) and enable span
                            tracing locally; a coordinator's handshake
                            can also enable tracing remotely

The worker is placement-agnostic: its shard index, fabric epoch, and
pair models all arrive in the coordinator's handshake, so the same
process can serve any shard — including as the migration successor for
a worker that died. It serves one coordinator session at a time, keeps
listening when a session ends (coordinator crash-resume), and exits
when a coordinator sends a shutdown control.

A coordinator running with --trace-* exemplar flags also tells the
worker, in the same handshake, to ship ingest/decode/score span slices
inside each board frame; the coordinator's tail sampler decides which
traces to keep, so the worker needs no tracing flags of its own.";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &[])?;
    let addr: String = flags.require("listen")?;
    let metrics_addr: Option<String> = flags.get("metrics")?;
    let obs = PipelineObs::default();
    if metrics_addr.is_some() {
        obs.tracer.enable();
    }
    let worker = ShardWorker::bind_with_obs(&addr, obs)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    // Tooling (and the integration tests) parse the bound port from
    // this line, so it must hit the pipe before the coordinator dials.
    println!("worker listening on {}", worker.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    let probe = worker.metrics_probe();
    let _metrics = start_metrics(metrics_addr.as_deref(), move || probe.to_prometheus())?;
    let summary = worker.run().map_err(|e| format!("worker failed: {e}"))?;
    println!(
        "worker served {} sessions: {} snapshots scored, {} boards sent, \
         {} checkpoints answered, {} protocol errors",
        summary.sessions,
        summary.snapshots,
        summary.boards,
        summary.checkpoints,
        summary.protocol_errors,
    );
    Ok(())
}
