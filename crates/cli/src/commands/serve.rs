//! `gridwatch serve` — replay a trace through the sharded concurrent
//! detection engine, with backpressure, checkpointing, and stats.

use std::time::{Duration, Instant};

use gridwatch_detect::{EngineSnapshot, Snapshot};
use gridwatch_serve::{BackpressurePolicy, Checkpointer, ServeConfig, ShardedEngine};
use gridwatch_timeseries::Timestamp;

use crate::commands::{load_trace, write_file};
use crate::flags::Flags;

const HELP: &str = "\
gridwatch serve --trace FILE --engine FILE [flags]

  --trace FILE              CSV monitoring data
  --engine FILE             engine snapshot from `gridwatch train`
  --from-day N              first day to stream (default 15 = June 13)
  --days N                  days to stream      (default 1)
  --shards N                shard worker threads          (default 4)
  --queue-capacity N        per-shard queue capacity      (default 64)
  --backpressure P          block | drop-oldest | reject  (default block)
  --rate X                  replay rate in snapshots/sec  (default: unthrottled)
  --system-threshold X      alarm when Q_t < X            (engine default)
  --measurement-threshold X alarm when Q^a_t < X          (engine default)
  --consecutive N           debounce: N consecutive lows  (engine default)
  --checkpoint DIR          checkpoint into DIR (at the end, and every
                            --checkpoint-every snapshots when given)
  --checkpoint-every N      checkpoint period in snapshots (default: end only)
  --resume                  recover engine state from --checkpoint DIR
                            instead of --engine
  --stats FILE              write final serving stats as JSON";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let flags = Flags::parse(args, &["resume"])?;
    let trace_path: String = flags.require("trace")?;
    let from_day: u64 = flags.get_or("from-day", 15)?;
    let days: u64 = flags.get_or("days", 1)?;
    let rate: f64 = flags.get_or("rate", 0.0)?;
    let checkpoint_dir: Option<String> = flags.get("checkpoint")?;
    let checkpoint_every: u64 = flags.get_or("checkpoint-every", 0)?;

    let serve_config = ServeConfig {
        shards: flags.get_or("shards", 4)?,
        queue_capacity: flags.get_or("queue-capacity", 64)?,
        backpressure: flags.get_or("backpressure", BackpressurePolicy::Block)?,
    };
    if serve_config.shards == 0 {
        return Err("--shards must be positive".to_string());
    }
    if serve_config.queue_capacity == 0 {
        return Err("--queue-capacity must be positive".to_string());
    }
    if flags.has("resume") && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint DIR".to_string());
    }

    let trace = load_trace(&trace_path)?;
    let mut snapshot: EngineSnapshot = if flags.has("resume") {
        let dir = checkpoint_dir.as_deref().expect("checked above");
        let (snapshot, manifest) = Checkpointer::new(dir)
            .recover()
            .map_err(|e| format!("cannot resume from {dir}: {e}"))?;
        println!(
            "resumed from checkpoint at {dir} (cut seq {}, {} shard files)",
            manifest.cut_seq, manifest.shards
        );
        snapshot
    } else {
        let engine_path: String = flags.require("engine")?;
        let json = std::fs::read_to_string(&engine_path)
            .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
        serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?
    };
    snapshot.config.alarm.system_threshold =
        flags.get_or("system-threshold", snapshot.config.alarm.system_threshold)?;
    snapshot.config.alarm.measurement_threshold = flags.get_or(
        "measurement-threshold",
        snapshot.config.alarm.measurement_threshold,
    )?;
    snapshot.config.alarm.min_consecutive =
        flags.get_or("consecutive", snapshot.config.alarm.min_consecutive)?;

    let mut engine = ShardedEngine::start(snapshot, serve_config);
    let start = Timestamp::from_days(from_day);
    let end = Timestamp::from_days(from_day + days);
    let tick_budget = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };

    let began = Instant::now();
    let mut ticks = 0u64;
    let mut alarms = 0usize;
    let mut q_min: Option<(Timestamp, f64)> = None;
    let note_report = |report: &gridwatch_detect::StepReport,
                       alarms: &mut usize,
                       q_min: &mut Option<(Timestamp, f64)>| {
        if let Some(q) = report.scores.system_score() {
            if q_min.is_none_or(|(_, min)| q < min) {
                *q_min = Some((report.scores.at(), q));
            }
        }
        for alarm in &report.alarms {
            *alarms += 1;
            println!("ALARM {alarm}");
        }
    };

    for t in trace.interval().ticks(start, end) {
        let deadline = tick_budget.map(|budget| Instant::now() + budget);
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
                snap.insert(id, v);
            }
        }
        if snap.is_empty() {
            continue;
        }
        engine.submit(snap);
        ticks += 1;
        if let (Some(dir), true) = (
            checkpoint_dir.as_deref(),
            checkpoint_every > 0 && ticks.is_multiple_of(checkpoint_every),
        ) {
            let manifest = engine
                .checkpoint(dir)
                .map_err(|e| format!("checkpoint failed: {e}"))?;
            println!("checkpoint written to {dir} (cut seq {})", manifest.cut_seq);
        }
        while let Some(report) = engine.try_recv_report() {
            note_report(&report, &mut alarms, &mut q_min);
        }
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now < deadline {
                std::thread::sleep(deadline - now);
            }
        }
    }

    if let Some(dir) = checkpoint_dir.as_deref() {
        let manifest = engine
            .checkpoint(dir)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        println!(
            "final checkpoint written to {dir} (cut seq {})",
            manifest.cut_seq
        );
    }
    let (rest, stats) = engine.shutdown();
    for report in &rest {
        note_report(report, &mut alarms, &mut q_min);
    }
    let elapsed = began.elapsed();

    println!(
        "served {ticks} snapshots over day {from_day}..{} across {} shards ({}): \
         {} reports, {alarms} alarms, {} evicted, {} rejected",
        from_day + days,
        stats.shards.len(),
        serve_config.backpressure,
        stats.reports,
        stats.total_evicted(),
        stats.rejected,
    );
    if elapsed.as_secs_f64() > 0.0 {
        println!(
            "throughput: {:.1} snapshots/sec (wall {:.2}s)",
            ticks as f64 / elapsed.as_secs_f64(),
            elapsed.as_secs_f64()
        );
    }
    if let Some((t, q)) = q_min {
        println!("lowest system fitness: {q:.4} at {t}");
    }
    if let Some(path) = flags.get::<String>("stats")? {
        write_file(&path, &stats.to_json())?;
        println!("serving stats written to {path}");
    }
    Ok(())
}
