//! `gridwatch serve` — feed the sharded concurrent detection engine,
//! either by replaying a trace file or by listening on a TCP socket for
//! live snapshot frames, with backpressure, checkpointing, and stats.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridwatch_detect::{EngineSnapshot, SketchConfig, Snapshot, StepReport};
use gridwatch_serve::{
    BackpressurePolicy, Checkpointer, NetConfig, NetServer, SamplingConfig, ServeConfig,
    ShardedEngine, WireProtocol,
};
use gridwatch_timeseries::Timestamp;

use gridwatch_obs::PipelineObs;

use crate::commands::{
    dump_flight, exemplar_config, health_closure, install_flight_panic_hook, load_trace,
    open_history_sink, start_metrics_with_health, store_checkpoint, with_burn_gauges,
    write_stats_atomic, HealthState,
};
use crate::flags::Flags;

const HELP: &str = "\
gridwatch serve (--trace FILE | --listen ADDR) --engine FILE [flags]

input (exactly one):
  --trace FILE              CSV monitoring data to replay
  --listen ADDR             accept snapshot frames over TCP (e.g.
                            127.0.0.1:7700; port 0 picks a free port)

engine:
  --engine FILE             engine snapshot from `gridwatch train`
  --shards N                shard worker threads          (default 4)
  --queue-capacity N        per-shard queue capacity      (default 64)
  --backpressure P          block | drop-oldest | reject  (default block)
  --sample-watermark PCT    shed a stratified subsample of incoming
                            snapshots while the deepest shard queue is
                            at or above PCT% full (coverage is reported
                            in the stats); sampling off when omitted
  --sample-stride N         keep 1 in N snapshots while shedding
                            (default 2)
  --system-threshold X      alarm when Q_t < X            (engine default)
  --measurement-threshold X alarm when Q^a_t < X          (engine default)
  --consecutive N           debounce: N consecutive lows  (engine default)

  --checkpoint DIR          checkpoint into DIR (at the end, and every
                            --checkpoint-every snapshots when given)
  --checkpoint-every N      checkpoint period in snapshots (default: end only)
  --resume                  recover engine state from --checkpoint DIR
                            instead of --engine
  --stats FILE              write serving stats as JSON (flushed at every
                            checkpoint, and again at exit)

sketch gate (overrides the snapshot's sketch config; giving any of
these to a snapshot without one enables the gate with defaults):
  --sketch-depth N          sketch lanes per measurement; estimator
                            noise falls as 1/sqrt(N); 0 disables the
                            gate entirely               (default 16)
  --sketch-admit X          promote a candidate to a full grid model
                            after --sketch-admit-rounds consecutive
                            rescores at or above X       (default 0.6)
  --sketch-demote X         demote a materialized model after
                            consecutive rescores below X (default 0.25)
  --sketch-admit-rounds N   rescores needed to promote    (default 3)
  --sketch-demote-rounds N  rescores needed to demote     (default 6)
  --sketch-cooldown N       snapshots a pair is frozen after any
                            promotion or demotion        (default 120)
  --sketch-rescore-every N  rescore cadence in snapshots  (default 8)
  --sketch-max-materialized N  hard cap on sketch-promoted models;
                            0 means unlimited            (default 0)

history store:
  --store DIR               append score history, stats samples, and
                            events to the embedded store at DIR (sealed
                            and retention-pruned at checkpoint cadence;
                            query with `gridwatch history`)
  --store-depth D           system | measurements | full  (default measurements)
  --store-partition-secs N  time-partition width          (default 86400)
  --store-retention-secs N  drop partitions older than N trace seconds
  --store-max-partitions N  keep at most N partitions

observability:
  --metrics ADDR            serve Prometheus metrics (plus burn-rate
                            gauges, GET /healthz, and GET /readyz) over
                            HTTP on ADDR (e.g. 127.0.0.1:0; port 0
                            picks a free port) and enable pipeline span
                            tracing; flight recorder dumps land in
                            --checkpoint DIR

replay mode:
  --from-day N              first day to stream (default 15 = June 13)
  --days N                  days to stream      (default 1)
  --rate X                  replay rate in snapshots/sec  (default: unthrottled)

listen mode:
  --protocol P              auto | json | csv             (default auto)
  --read-timeout SECS       close silent connections after SECS; 0 disables
                            (default 30)
  --max-frame-bytes N       largest accepted frame        (default 1048576)
  --ingest-capacity N       socket-boundary frame queue   (default 256)
  --reorder-capacity N      per-source reorder window     (default 64)
  --max-snapshots N         stop after N applied snapshots; 0 runs until
                            killed (default 0)";

pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}\n\n{}", crate::commands::TRACE_HELP);
        return Ok(());
    }
    let flags = Flags::parse(args, &["resume"])?;
    if flags.has("resume") && flags.get::<String>("checkpoint")?.is_none() {
        return Err("--resume requires --checkpoint DIR".to_string());
    }
    let listen: Option<String> = flags.get("listen")?;
    match listen {
        Some(addr) => {
            if flags.get::<String>("trace")?.is_some() {
                return Err("--listen and --trace are mutually exclusive".to_string());
            }
            run_listen(&flags, &addr)
        }
        None => run_replay(&flags),
    }
}

/// Tracks alarms and the lowest system fitness across a report stream.
#[derive(Default)]
pub(crate) struct ReportTally {
    pub(crate) alarms: usize,
    q_min: Option<(Timestamp, f64)>,
}

impl ReportTally {
    pub(crate) fn note(&mut self, report: &StepReport) {
        if let Some(q) = report.scores.system_score() {
            if self.q_min.is_none_or(|(_, min)| q < min) {
                self.q_min = Some((report.scores.at(), q));
            }
        }
        for alarm in &report.alarms {
            self.alarms += 1;
            println!("ALARM {alarm}");
        }
    }

    pub(crate) fn print_floor(&self) {
        if let Some((t, q)) = self.q_min {
            println!("lowest system fitness: {q:.4} at {t}");
        }
    }
}

/// Engine tuning shared by both modes.
fn serve_config(flags: &Flags) -> Result<ServeConfig, String> {
    let sampling = match flags.get::<u8>("sample-watermark")? {
        Some(watermark_pct) => Some(SamplingConfig {
            watermark_pct,
            stride: flags.get_or("sample-stride", 2)?,
        }),
        None => None,
    };
    let config = ServeConfig {
        shards: flags.get_or("shards", 4)?,
        queue_capacity: flags.get_or("queue-capacity", 64)?,
        backpressure: flags.get_or("backpressure", BackpressurePolicy::Block)?,
        sampling,
    };
    if config.shards == 0 {
        return Err("--shards must be positive".to_string());
    }
    if config.queue_capacity == 0 {
        return Err("--queue-capacity must be positive".to_string());
    }
    Ok(config)
}

/// Loads the starting engine state: a fresh `--engine` snapshot, or a
/// recovered checkpoint under `--resume` (with the per-source frame
/// progress the manifest recorded at the cut).
fn load_snapshot(
    flags: &Flags,
    checkpoint_dir: Option<&str>,
) -> Result<(EngineSnapshot, BTreeMap<String, u64>), String> {
    let mut sources = BTreeMap::new();
    let mut snapshot: EngineSnapshot = if flags.has("resume") {
        let dir = checkpoint_dir.ok_or_else(|| "--resume requires --checkpoint DIR".to_string())?;
        let (snapshot, manifest) = Checkpointer::new(dir)
            .recover()
            .map_err(|e| format!("cannot resume from {dir}: {e}"))?;
        println!(
            "resumed from checkpoint at {dir} (cut seq {}, {} shard files)",
            manifest.cut_seq, manifest.shards
        );
        sources = manifest.sources;
        snapshot
    } else {
        let engine_path: String = flags.require("engine")?;
        let json = std::fs::read_to_string(&engine_path)
            .map_err(|e| format!("cannot read {engine_path}: {e}"))?;
        serde_json::from_str(&json).map_err(|e| format!("cannot parse {engine_path}: {e}"))?
    };
    snapshot.config.alarm.system_threshold =
        flags.get_or("system-threshold", snapshot.config.alarm.system_threshold)?;
    snapshot.config.alarm.measurement_threshold = flags.get_or(
        "measurement-threshold",
        snapshot.config.alarm.measurement_threshold,
    )?;
    snapshot.config.alarm.min_consecutive =
        flags.get_or("consecutive", snapshot.config.alarm.min_consecutive)?;
    apply_sketch_flags(flags, &mut snapshot)?;
    Ok((snapshot, sources))
}

/// Applies `--sketch-*` overrides onto the snapshot's engine config,
/// mirroring the alarm flags above. A snapshot without a sketch config
/// gains one (from defaults) as soon as any override is given;
/// `--sketch-depth 0` removes the gate entirely.
fn apply_sketch_flags(flags: &Flags, snapshot: &mut EngineSnapshot) -> Result<(), String> {
    const SKETCH_FLAGS: &[&str] = &[
        "sketch-depth",
        "sketch-admit",
        "sketch-demote",
        "sketch-admit-rounds",
        "sketch-demote-rounds",
        "sketch-cooldown",
        "sketch-rescore-every",
        "sketch-max-materialized",
    ];
    let overridden = SKETCH_FLAGS
        .iter()
        .any(|name| matches!(flags.get::<String>(name), Ok(Some(_))));
    if snapshot.config.sketch.is_none() && !overridden {
        return Ok(());
    }
    let base = snapshot.config.sketch.unwrap_or_default();
    let sketch = SketchConfig {
        depth: flags.get_or("sketch-depth", base.depth)?,
        admit_score: flags.get_or("sketch-admit", base.admit_score)?,
        demote_score: flags.get_or("sketch-demote", base.demote_score)?,
        admit_rounds: flags.get_or("sketch-admit-rounds", base.admit_rounds)?,
        demote_rounds: flags.get_or("sketch-demote-rounds", base.demote_rounds)?,
        cooldown: flags.get_or("sketch-cooldown", base.cooldown)?,
        rescore_every: flags.get_or("sketch-rescore-every", base.rescore_every)?,
        max_materialized: flags.get_or("sketch-max-materialized", base.max_materialized)?,
        ..base
    };
    if sketch.admit_score < sketch.demote_score {
        return Err(format!(
            "--sketch-admit ({}) must be at or above --sketch-demote ({}): \
             the hysteresis band keeps threshold pairs from oscillating",
            sketch.admit_score, sketch.demote_score
        ));
    }
    snapshot.config.sketch = (sketch.depth > 0).then_some(sketch);
    Ok(())
}

/// Replays a trace file through the engine.
fn run_replay(flags: &Flags) -> Result<(), String> {
    let trace_path: String = flags.require("trace")?;
    let from_day: u64 = flags.get_or("from-day", 15)?;
    let days: u64 = flags.get_or("days", 1)?;
    let rate: f64 = flags.get_or("rate", 0.0)?;
    let checkpoint_dir: Option<String> = flags.get("checkpoint")?;
    let checkpoint_every: u64 = flags.get_or("checkpoint-every", 0)?;
    let stats_path: Option<String> = flags.get("stats")?;
    let serve_config = serve_config(flags)?;

    let trace = load_trace(&trace_path)?;
    let (snapshot, _) = load_snapshot(flags, checkpoint_dir.as_deref())?;
    let mut sink = open_history_sink(flags)?;

    let metrics_addr: Option<String> = flags.get("metrics")?;
    let obs = PipelineObs::default();
    if metrics_addr.is_some() {
        // Tracing costs nothing while disabled; the metrics endpoint
        // is its only consumer, so the flag doubles as the switch.
        obs.tracer.enable();
    }
    if let Some(config) = exemplar_config(flags)? {
        obs.exemplar.enable(config);
    }
    if let Some(dir) = checkpoint_dir.clone() {
        install_flight_panic_hook(obs.recorder.clone(), dir);
    }
    let mut engine = ShardedEngine::start_with_obs(snapshot, serve_config, obs.clone());
    let health_state = Arc::new(HealthState::default());
    let probe = engine.stats_probe();
    let sample_probe = engine.stats_probe();
    let sample_obs = obs.clone();
    let health_probe = engine.stats_probe();
    let _metrics = start_metrics_with_health(
        metrics_addr.as_deref(),
        with_burn_gauges(
            move || probe.to_prometheus(),
            move || gridwatch_serve::burn_sample_from(&sample_probe.stats(), &sample_obs.tracer),
        ),
        health_closure(
            move || health_probe.health_report(),
            Arc::clone(&health_state),
        ),
    )?;
    let start = Timestamp::from_days(from_day);
    let end = Timestamp::from_days(from_day + days);
    let tick_budget = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };

    let began = Instant::now();
    let mut ticks = 0u64;
    let mut last_at = start.as_secs();
    let mut tally = ReportTally::default();

    for t in trace.interval().ticks(start, end) {
        let deadline = tick_budget.map(|budget| Instant::now() + budget);
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
                snap.insert(id, v);
            }
        }
        if snap.is_empty() {
            continue;
        }
        engine.submit(snap);
        ticks += 1;
        last_at = t.as_secs();
        if checkpoint_every > 0 && ticks.is_multiple_of(checkpoint_every) {
            if let Some(dir) = checkpoint_dir.as_deref() {
                let manifest = engine
                    .checkpoint(dir)
                    .map_err(|e| format!("checkpoint failed: {e}"))?;
                println!("checkpoint written to {dir} (cut seq {})", manifest.cut_seq);
                // Flush stats alongside every checkpoint, not only at exit,
                // so an operator watching a long replay (or recovering from
                // a crash) sees eviction counts from the same cut.
                if let Some(path) = stats_path.as_deref() {
                    write_stats_atomic(path, &engine.stats().to_json())?;
                }
            }
            store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
                engine.stats().to_json()
            })?;
            health_state.note_checkpoint(sink.as_ref().map_or(0, |s| s.store().unsealed_records()));
        }
        while let Some(report) = engine.try_recv_report() {
            if !report.alarms.is_empty() {
                dump_flight(
                    &obs.recorder,
                    &obs.exemplar,
                    &mut sink,
                    checkpoint_dir.as_deref(),
                    report.scores.at().as_secs(),
                    "alarm",
                );
            }
            if let Some(sink) = sink.as_mut() {
                sink.append_report(&report)
                    .map_err(|e| format!("history store append failed: {e}"))?;
            }
            tally.note(&report);
        }
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now < deadline {
                std::thread::sleep(deadline - now);
            }
        }
    }

    if let Some(dir) = checkpoint_dir.as_deref() {
        let manifest = engine
            .checkpoint(dir)
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        println!(
            "final checkpoint written to {dir} (cut seq {})",
            manifest.cut_seq
        );
    }
    let (rest, stats) = engine.shutdown();
    for report in &rest {
        if let Some(sink) = sink.as_mut() {
            sink.append_report(report)
                .map_err(|e| format!("history store append failed: {e}"))?;
        }
        tally.note(report);
    }
    dump_flight(
        &obs.recorder,
        &obs.exemplar,
        &mut sink,
        checkpoint_dir.as_deref(),
        last_at,
        "shutdown",
    );
    store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
        stats.to_json()
    })?;
    if let Some(sink) = sink.as_ref() {
        println!(
            "history store {}: sealed through seq {}",
            sink.store().dir().display(),
            sink.store().next_seq()
        );
    }
    let elapsed = began.elapsed();

    println!(
        "served {ticks} snapshots over day {from_day}..{} across {} shards ({}): \
         {} reports, {} alarms, {} evicted, {} rejected",
        from_day + days,
        stats.shards.len(),
        serve_config.backpressure,
        stats.reports,
        tally.alarms,
        stats.total_evicted(),
        stats.rejected,
    );
    if elapsed.as_secs_f64() > 0.0 {
        println!(
            "throughput: {:.1} snapshots/sec (wall {:.2}s)",
            ticks as f64 / elapsed.as_secs_f64(),
            elapsed.as_secs_f64()
        );
    }
    tally.print_floor();
    if let Some(path) = stats_path.as_deref() {
        write_stats_atomic(path, &stats.to_json())?;
        println!("serving stats written to {path}");
    }
    Ok(())
}

/// Listens on a TCP socket and feeds live frames to the engine.
fn run_listen(flags: &Flags, addr: &str) -> Result<(), String> {
    let checkpoint_dir: Option<String> = flags.get("checkpoint")?;
    let stats_path: Option<String> = flags.get("stats")?;
    let max_snapshots: u64 = flags.get_or("max-snapshots", 0)?;
    let serve_config = serve_config(flags)?;
    let net_config = NetConfig {
        protocol: flags.get_or("protocol", WireProtocol::Auto)?,
        read_timeout: Duration::from_secs(flags.get_or("read-timeout", 30)?),
        max_frame_bytes: flags.get_or("max-frame-bytes", 1 << 20)?,
        ingest_capacity: flags.get_or("ingest-capacity", 256)?,
        reorder_capacity: flags.get_or("reorder-capacity", 64)?,
        checkpoint_dir: checkpoint_dir.as_deref().map(PathBuf::from),
        checkpoint_every: flags.get_or("checkpoint-every", 0)?,
        stats_path: stats_path.as_deref().map(PathBuf::from),
    };
    if net_config.max_frame_bytes == 0 {
        return Err("--max-frame-bytes must be positive".to_string());
    }
    if net_config.ingest_capacity == 0 {
        return Err("--ingest-capacity must be positive".to_string());
    }
    if net_config.reorder_capacity == 0 {
        return Err("--reorder-capacity must be positive".to_string());
    }

    let (snapshot, sources) = load_snapshot(flags, checkpoint_dir.as_deref())?;
    let mut sink = open_history_sink(flags)?;
    let checkpoint_every: u64 = flags.get_or("checkpoint-every", 0)?;
    let metrics_addr: Option<String> = flags.get("metrics")?;
    let obs = PipelineObs::default();
    if metrics_addr.is_some() {
        obs.tracer.enable();
    }
    if let Some(config) = exemplar_config(flags)? {
        obs.exemplar.enable(config);
    }
    if let Some(dir) = checkpoint_dir.clone() {
        install_flight_panic_hook(obs.recorder.clone(), dir);
    }
    let server = NetServer::bind_with_obs(
        addr,
        snapshot,
        serve_config,
        net_config,
        sources,
        obs.clone(),
    )
    .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    // Tooling (and the integration tests) parse the bound port from this
    // line, so it must hit the pipe before the first client connects.
    println!(
        "listening on {} ({})",
        server.local_addr(),
        serve_config.backpressure
    );
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    let health_state = Arc::new(HealthState::default());
    let probe = server.metrics_probe();
    let sample_probe = server.metrics_probe();
    let sample_obs = obs.clone();
    let health_probe = server.metrics_probe();
    let _metrics = start_metrics_with_health(
        metrics_addr.as_deref(),
        with_burn_gauges(
            move || probe.to_prometheus(),
            move || gridwatch_serve::burn_sample_from(&sample_probe.stats(), &sample_obs.tracer),
        ),
        health_closure(
            move || health_probe.health_report(),
            Arc::clone(&health_state),
        ),
    )?;

    let began = Instant::now();
    let mut tally = ReportTally::default();
    let mut seen = 0u64;
    let mut last_at = 0u64;
    while max_snapshots == 0 || seen < max_snapshots {
        if let Some(report) = server.recv_report_timeout(Duration::from_millis(500)) {
            seen += 1;
            last_at = report.scores.at().as_secs();
            if !report.alarms.is_empty() {
                dump_flight(
                    &obs.recorder,
                    &obs.exemplar,
                    &mut sink,
                    checkpoint_dir.as_deref(),
                    last_at,
                    "alarm",
                );
            }
            if let Some(sink) = sink.as_mut() {
                sink.append_report(&report)
                    .map_err(|e| format!("history store append failed: {e}"))?;
            }
            if checkpoint_every > 0 && seen.is_multiple_of(checkpoint_every) {
                store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
                    server.metrics_probe().stats().to_json()
                })?;
                health_state
                    .note_checkpoint(sink.as_ref().map_or(0, |s| s.store().unsealed_records()));
            }
            tally.note(&report);
        }
    }
    let (rest, stats) = server.shutdown();
    for report in &rest {
        if let Some(sink) = sink.as_mut() {
            sink.append_report(report)
                .map_err(|e| format!("history store append failed: {e}"))?;
        }
        tally.note(report);
    }
    dump_flight(
        &obs.recorder,
        &obs.exemplar,
        &mut sink,
        checkpoint_dir.as_deref(),
        last_at,
        "shutdown",
    );
    store_checkpoint(&mut sink, &obs.recorder, &obs.exemplar, last_at, || {
        stats.to_json()
    })?;
    let elapsed = began.elapsed();

    println!(
        "ingested {} frames over {} connections ({} decode errors, {} timeouts, \
         {} duplicates, {} out-of-order, {} gap skips)",
        stats.net.frames,
        stats.net.accepted,
        stats.net.decode_errors,
        stats.net.timeouts,
        stats.net.duplicates,
        stats.net.out_of_order,
        stats.net.gap_skips,
    );
    println!(
        "served {} snapshots across {} shards ({}): {} reports, {} alarms, \
         {} evicted, {} rejected (wall {:.2}s)",
        stats.submitted,
        stats.shards.len(),
        serve_config.backpressure,
        stats.reports,
        tally.alarms,
        stats.total_evicted(),
        stats.rejected,
        elapsed.as_secs_f64(),
    );
    tally.print_floor();
    if let Some(path) = stats_path.as_deref() {
        write_stats_atomic(path, &stats.to_json())?;
        println!("serving stats written to {path}");
    }
    Ok(())
}
