//! A minimal `--key value` / `--switch` flag parser (no external
//! dependencies, per the workspace's dependency policy).

use std::collections::BTreeMap;
use std::str::FromStr;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args`, treating names in `switches` as boolean flags and
    /// everything else starting with `--` as `--key value`.
    pub fn parse(args: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if switches.contains(&name) {
                flags.switches.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                flags.values.insert(name.to_string(), value.clone());
            }
        }
        Ok(flags)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required flag value, parsed.
    pub fn require<T: FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .values
            .get(name)
            .ok_or_else(|| format!("--{name} is required"))?;
        raw.parse()
            .map_err(|e| format!("bad value for --{name}: {e}"))
    }

    /// An optional flag value with a default, parsed.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }

    /// An optional flag value, parsed.
    pub fn get<T: FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &args(&["--days", "3", "--fault", "--out", "x.csv"]),
            &["fault"],
        )
        .unwrap();
        assert_eq!(f.require::<u64>("days").unwrap(), 3);
        assert!(f.has("fault"));
        assert_eq!(f.require::<String>("out").unwrap(), "x.csv");
        assert!(!f.has("verbose"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Flags::parse(&args(&["--days"]), &[]).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    #[test]
    fn positional_arguments_rejected() {
        let err = Flags::parse(&args(&["oops"]), &[]).unwrap_err();
        assert!(err.contains("positional"));
    }

    #[test]
    fn defaults_and_optionals() {
        let f = Flags::parse(&args(&["--seed", "9"]), &[]).unwrap();
        assert_eq!(f.get_or("machines", 4usize).unwrap(), 4);
        assert_eq!(f.get::<u64>("seed").unwrap(), Some(9));
        assert_eq!(f.get::<u64>("days").unwrap(), None);
        assert!(f.require::<u64>("days").is_err());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let f = Flags::parse(&args(&["--days", "three"]), &[]).unwrap();
        let err = f.require::<u64>("days").unwrap_err();
        assert!(err.contains("--days"));
    }
}
