//! End-to-end tests of `gridwatch serve --listen`: flag validation,
//! both wire protocols, the read deadline and frame limit, and
//! crash-recovery through a checkpointed kill + `--resume`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gridwatch_detect::{AlarmPolicy, DetectionEngine, EngineConfig, Snapshot};
use gridwatch_serve::{encode_csv, encode_json, ServeStats, WireFrame};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

const STEP_SECS: u64 = 360;
const MEASUREMENTS: usize = 4;
const SOURCE: &str = "agent-1";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_listen_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ids() -> Vec<MeasurementId> {
    (0..MEASUREMENTS as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, k: u64) -> f64 {
    let load = (k % 48) as f64;
    (m as f64 + 1.0) * load + 5.0 * m as f64
}

/// Writes a small trained engine to `dir/engine.json` and returns the
/// path, so the tests do not shell out to `simulate` + `train`.
fn engine_file(dir: &std::path::Path) -> String {
    let ids = ids();
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..MEASUREMENTS {
        for j in (i + 1)..MEASUREMENTS {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples(
                (0..200u64).map(|k| (k * STEP_SECS, value(i, k), value(j, k))),
            )
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let snapshot = DetectionEngine::train(pairs, config).unwrap().snapshot();
    let path = dir.join("engine.json");
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    path.to_string_lossy().to_string()
}

/// Healthy wire frames for steps `offset..offset + steps`.
fn frames(offset: u64, steps: u64) -> Vec<WireFrame> {
    let ids = ids();
    (offset..offset + steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((200 + k) * STEP_SECS));
            for (m, &mid) in ids.iter().enumerate() {
                snap.insert(mid, value(m, k));
            }
            WireFrame {
                source: SOURCE.to_string(),
                seq: k,
                snapshot: snap,
            }
        })
        .collect()
}

/// A `serve --listen` child whose stdout is read line by line.
struct Server {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

impl Server {
    /// Spawns the binary with `--listen 127.0.0.1:0` plus `extra` flags
    /// and parses the OS-assigned port from the `listening on` line.
    fn spawn(engine: &str, extra: &[&str]) -> Server {
        let mut child = bin()
            .args(["serve", "--listen", "127.0.0.1:0", "--engine", engine])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read child stdout");
            assert!(n > 0, "child exited before announcing its address");
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                let addr = rest.split_whitespace().next().expect("address token");
                break addr.parse().expect("parsable listen address");
            }
        };
        Server {
            child,
            stdout,
            addr,
        }
    }

    /// Waits for exit and returns the remaining stdout.
    fn wait(mut self) -> String {
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("drain child stdout");
        let status = self.child.wait().expect("child waits");
        assert!(status.success(), "server failed; stdout:\n{rest}");
        rest
    }
}

/// A minimal raw client: write bytes, optionally wait for the server to
/// close this connection (the deterministic sync point).
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to listener");
        stream.set_nodelay(true).expect("nodelay");
        Client { stream }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write to listener");
        self.stream.flush().expect("flush");
    }

    fn send_json(&mut self, frame: &WireFrame) {
        self.send(&encode_json(frame).expect("encodable frame"));
    }

    fn send_csv(&mut self, frame: &WireFrame) {
        self.send(encode_csv(frame).expect("encodable frame").as_bytes());
    }

    /// Blocks until the server closes this connection.
    fn wait_closed(mut self) {
        self.stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut sink = [0u8; 256];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => continue,
            }
        }
    }
}

fn run_failing(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(!out.status.success(), "expected failure for {args:?}");
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn listen_and_trace_are_mutually_exclusive() {
    let err = run_failing(&[
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--trace",
        "whatever.csv",
        "--engine",
        "whatever.json",
    ]);
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn invalid_listen_address_is_rejected() {
    let dir = tmp_dir("badaddr");
    let engine = engine_file(&dir);
    let err = run_failing(&["serve", "--listen", "not-an-address", "--engine", &engine]);
    assert!(err.contains("cannot listen on not-an-address"), "{err}");
}

#[test]
fn busy_port_is_reported() {
    let dir = tmp_dir("busy");
    let engine = engine_file(&dir);
    let holder = TcpListener::bind("127.0.0.1:0").expect("bind a port to occupy");
    let addr = holder.local_addr().unwrap().to_string();
    let err = run_failing(&["serve", "--listen", &addr, "--engine", &engine]);
    assert!(err.contains(&format!("cannot listen on {addr}")), "{err}");
}

#[test]
fn bad_protocol_value_is_rejected() {
    let dir = tmp_dir("badproto");
    let engine = engine_file(&dir);
    let err = run_failing(&[
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--engine",
        &engine,
        "--protocol",
        "yaml",
    ]);
    assert!(err.contains("--protocol"), "{err}");
}

#[test]
fn json_stream_is_served_to_completion() {
    let dir = tmp_dir("json");
    let engine = engine_file(&dir);
    let stats_path = dir.join("stats.json");
    let server = Server::spawn(
        &engine,
        &[
            "--protocol",
            "json",
            "--max-snapshots",
            "6",
            "--stats",
            stats_path.to_str().unwrap(),
        ],
    );
    let mut client = Client::connect(server.addr);
    for frame in &frames(0, 6) {
        client.send_json(frame);
    }
    let out = server.wait();
    assert!(
        out.contains("ingested 6 frames over 1 connections"),
        "{out}"
    );
    assert!(out.contains("served 6 snapshots"), "{out}");
    let stats: ServeStats =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.net.frames, 6);
}

#[test]
fn csv_stream_is_served_to_completion() {
    let dir = tmp_dir("csv");
    let engine = engine_file(&dir);
    let server = Server::spawn(&engine, &["--protocol", "csv", "--max-snapshots", "5"]);
    let mut client = Client::connect(server.addr);
    for frame in &frames(0, 5) {
        client.send_csv(frame);
    }
    let out = server.wait();
    assert!(
        out.contains("ingested 5 frames over 1 connections"),
        "{out}"
    );
    assert!(out.contains("served 5 snapshots"), "{out}");
}

#[test]
fn read_deadline_and_frame_limit_are_enforced() {
    let dir = tmp_dir("limits");
    let engine = engine_file(&dir);
    let server = Server::spawn(
        &engine,
        &[
            "--read-timeout",
            "1",
            "--max-frame-bytes",
            "128",
            "--max-snapshots",
            "1",
        ],
    );

    // An oversized length claim is refused and the connection closed.
    let mut oversized = Client::connect(server.addr);
    oversized.send(&(1u32 << 20).to_be_bytes());
    oversized.wait_closed();

    // A silent client trips the one-second read deadline.
    let idle = Client::connect(server.addr);
    idle.wait_closed();

    // A well-behaved client still gets through; its frame ends the run.
    let mut good = Client::connect(server.addr);
    good.send_csv(&frames(0, 1)[0]);
    let out = server.wait();
    assert!(
        out.contains("ingested 1 frames over 3 connections (1 decode errors, 1 timeouts"),
        "{out}"
    );
}

/// Kill the listener mid-stream after a checkpoint, resume with
/// `--resume`, and replay everything: nothing is applied twice, and the
/// stats file exists from the checkpoint-time flush (not process exit).
#[test]
fn kill_and_resume_absorbs_the_replay() {
    let dir = tmp_dir("resume");
    let engine = engine_file(&dir);
    let ckpt = dir.join("ckpt");
    let stats_path = dir.join("stats.json");
    let head = 20u64;
    let tail = 8u64;

    // No --max-snapshots: this server runs until killed.
    let mut server = Server::spawn(
        &engine,
        &[
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "5",
            "--stats",
            stats_path.to_str().unwrap(),
        ],
    );
    let mut client = Client::connect(server.addr);
    for frame in &frames(0, head) {
        client.send_json(frame);
    }

    // The stats file is flushed at every checkpoint; once it reports all
    // twenty snapshots, the manifest next to it carries the same cut.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let caught_up = std::fs::read_to_string(&stats_path)
            .ok()
            .and_then(|json| serde_json::from_str::<ServeStats>(&json).ok())
            .is_some_and(|stats| stats.submitted >= head);
        if caught_up {
            break;
        }
        assert!(Instant::now() < deadline, "checkpoint never caught up");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.child.kill().expect("kill the listener");
    server.child.wait().expect("reap the listener");

    // Resume and replay the whole stream plus a fresh tail. Only the
    // tail may apply; the head must be absorbed as duplicates.
    let resumed = Server::spawn(
        &engine,
        &[
            "--resume",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--max-snapshots",
            &tail.to_string(),
        ],
    );
    let mut replayer = Client::connect(resumed.addr);
    for frame in &frames(0, head + tail) {
        replayer.send_json(frame);
    }
    let out = resumed.wait();
    assert!(
        out.contains(&format!("ingested {} frames", head + tail)),
        "{out}"
    );
    assert!(out.contains(&format!("{head} duplicates")), "{out}");
    assert!(out.contains(&format!("served {tail} snapshots")), "{out}");
}
