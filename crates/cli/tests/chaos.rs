//! End-to-end chaos coverage through the real binary: per-regime
//! scored evaluation with pinned golden reports, the full sweep's
//! shape checks, and the drift pipeline surfacing rebuild events into
//! the history store where `--event-kind` can find them.
//!
//! Everything here is seeded and replayed deterministically, so the
//! golden strings are exact: a diff means scoring, simulation, or
//! report formatting changed, and the pin should only move with a
//! deliberate review of the new numbers.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// The fast deterministic settings every test here evaluates under.
const FAST: [&str; 6] = ["--machines", "2", "--max-pairs", "10", "--days", "1"];

fn eval_regime(regime: &str) -> String {
    let out = run_ok(
        bin()
            .args(["eval", "--chaos", "--regime", regime])
            .args(FAST),
    );
    stdout_of(&out)
}

#[test]
fn per_regime_reports_are_pinned() {
    // One golden block per regime. drift is the only regime allowed
    // (and required) to rebuild; cascade is the fault-detection
    // regime; skew/flapping/overload must stay silent on both fronts.
    assert_eq!(
        eval_regime("drift"),
        "regime          drift\n\
         samples         240\n\
         delay_s         46080\n\
         precision       1.000\n\
         recall          0.009\n\
         rebuilds        2\n\
         false_rebuilds  0\n\
         min_Q           0.343\n"
    );
    assert_eq!(
        eval_regime("skew"),
        "regime          skew\n\
         samples         240\n\
         delay_s         -\n\
         precision       0.000\n\
         recall          -\n\
         rebuilds        0\n\
         false_rebuilds  0\n\
         min_Q           0.434\n"
    );
    assert_eq!(
        eval_regime("flapping"),
        "regime          flapping\n\
         samples         150\n\
         delay_s         -\n\
         precision       -\n\
         recall          -\n\
         rebuilds        0\n\
         false_rebuilds  0\n\
         min_Q           0.722\n"
    );
    assert_eq!(
        eval_regime("overload"),
        "regime          overload\n\
         samples         240\n\
         delay_s         -\n\
         precision       0.000\n\
         recall          -\n\
         rebuilds        0\n\
         false_rebuilds  0\n\
         min_Q           0.375\n"
    );
    assert_eq!(
        eval_regime("cascade"),
        "regime          cascade\n\
         samples         240\n\
         delay_s         3960\n\
         precision       0.875\n\
         recall          0.175\n\
         rebuilds        0\n\
         false_rebuilds  0\n\
         min_Q           0.390\n"
    );
}

#[test]
fn full_sweep_passes_every_shape_check_and_the_table_is_pinned() {
    let dir = tmp_dir("sweep");
    let out = run_ok(
        bin()
            .args(["eval", "--chaos"])
            .args(FAST)
            .args(["--out", dir.to_str().unwrap()]),
    );
    let stdout = stdout_of(&out);
    assert!(!stdout.contains("[FAIL]"), "shape check failed:\n{stdout}");
    assert_eq!(stdout.matches("[PASS]").count(), 4, "{stdout}");
    // The scored table, one row per regime, pinned verbatim.
    let table = "\
  regime  samples  delay_s  precision  recall  rebuilds  false_rebuilds  min_Q
------------------------------------------------------------------------------
   drift      240    46080      1.000   0.009         2               0  0.343
    skew      240        -      0.000       -         0               0  0.434
flapping      150        -          -       -         0               0  0.722
overload      240        -      0.000       -         0               0  0.375
 cascade      240     3960      0.875   0.175         0               0  0.390";
    assert!(
        stdout.contains(table),
        "pinned table missing from:\n{stdout}"
    );
    // --out exported the table as CSV alongside the ASCII report.
    let csv = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.path().extension().is_some_and(|x| x == "csv"))
        .expect("a CSV table was written");
    let body = std::fs::read_to_string(csv.path()).unwrap();
    assert!(body.starts_with("regime,samples,delay_s"), "{body}");
    assert!(body.contains("drift,240,46080"), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_flag_validation() {
    // --chaos is required.
    let out = bin().args(["eval"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chaos"));
    // Unknown regimes are named in the error.
    let out = bin()
        .args(["eval", "--chaos", "--regime", "mayhem"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mayhem"));
    // --help mentions every regime.
    let help = stdout_of(&run_ok(bin().args(["eval", "--help"])));
    for regime in ["drift", "skew", "flapping", "overload", "cascade"] {
        assert!(help.contains(regime), "help missing {regime}");
    }
}

/// The whole drift story through the binary: a chaos trace from
/// `simulate`, a frozen+drift engine from `train`, rebuild events from
/// `monitor --store`, and `history --event-kind` pulling exactly them
/// back out — with the events landing inside the scenario's published
/// expected-rebuild window.
#[test]
fn drift_pipeline_persists_rebuild_events_matching_ground_truth() {
    let dir = tmp_dir("pipeline");
    let trace = dir.join("t.csv");
    let engine = dir.join("e.json");
    let store = dir.join("hist");

    let sim_out = stdout_of(&run_ok(bin().args([
        "simulate",
        "--chaos",
        "drift",
        "--machines",
        "2",
        "--days",
        "17",
        "--out",
        trace.to_str().unwrap(),
    ])));
    // The scenario publishes its ground truth: an alarm window and an
    // expected-rebuild window, both opening two hours into day 15.
    assert!(
        sim_out.contains("ground-truth fault window: [d15+02:00:00,"),
        "{sim_out}"
    );
    assert!(
        sim_out.contains("expected-rebuild window: [d15+02:00:00,"),
        "{sim_out}"
    );

    run_ok(bin().args([
        "train",
        "--trace",
        trace.to_str().unwrap(),
        "--train-days",
        "15",
        "--max-pairs",
        "10",
        "--frozen",
        "--drift",
        "--out",
        engine.to_str().unwrap(),
    ]));

    let monitor_out = stdout_of(&run_ok(bin().args([
        "monitor",
        "--trace",
        trace.to_str().unwrap(),
        "--engine",
        engine.to_str().unwrap(),
        "--from-day",
        "15",
        "--days",
        "2",
        "--store",
        store.to_str().unwrap(),
    ])));
    assert!(monitor_out.contains("ALARM"), "{monitor_out}");

    // --event-kind rebuild returns only rebuild events, and at least
    // one fired — on the drifted machine-000 out-traffic pair, at a
    // logical instant inside the expected-rebuild window (>= d15+2h).
    let rebuilds = stdout_of(&run_ok(bin().args([
        "history",
        "--store",
        store.to_str().unwrap(),
        "--kind",
        "events",
        "--event-kind",
        "rebuild",
    ])));
    let rows: Vec<&str> = rebuilds.lines().skip(1).collect();
    assert!(!rows.is_empty(), "no rebuild events:\n{rebuilds}");
    for row in &rows {
        assert!(row.contains(",rebuild,"), "non-rebuild row: {row}");
        assert!(
            row.contains("machine-000/IfOutOctetsRate_IF"),
            "rebuild off the drifted measurement: {row}"
        );
        assert!(row.contains("ok=true"), "rebuild did not refit: {row}");
        let day15 = row.contains("at=d15+") || row.contains("at=d16+");
        assert!(day15, "rebuild outside the replayed window: {row}");
        assert!(
            !row.contains("at=d15+00:") && !row.contains("at=d15+01:"),
            "rebuild before the drift onset at d15+02:00: {row}"
        );
    }

    // The unfiltered event scan also holds alarms; the alarm filter
    // must exclude every rebuild.
    let alarms = stdout_of(&run_ok(bin().args([
        "history",
        "--store",
        store.to_str().unwrap(),
        "--kind",
        "events",
        "--event-kind",
        "alarm",
    ])));
    assert!(alarms.lines().count() > 1, "no alarms:\n{alarms}");
    assert!(!alarms.contains("rebuild"), "{alarms}");

    // The filter is events-only.
    let out = bin()
        .args([
            "history",
            "--store",
            store.to_str().unwrap(),
            "--event-kind",
            "rebuild",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--kind events"));
    std::fs::remove_dir_all(&dir).ok();
}
