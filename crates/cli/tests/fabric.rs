//! End-to-end tests of the multi-node shard fabric CLI: `gridwatch
//! shard-worker` + `gridwatch coordinator` against a `gridwatch serve`
//! reference, worker kill + same-port restart with `--reattach-secs`,
//! and coordinator kill + `--resume` validated by `gridwatch audit
//! --checkpoint`.
//!
//! Every test spawns real OS processes over localhost TCP, so the suite
//! runs single-threaded in CI (see `ci.sh`).

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_fabric_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a subcommand to completion, asserting success, and returns its
/// stdout.
fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "gridwatch {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// Simulates a faulty trace and trains an engine on its healthy prefix,
/// returning `(trace_path, engine_path)`. Shared CLI plumbing exercised
/// the same way an operator would.
fn fixture(dir: &Path) -> (String, String) {
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    run_ok(&[
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "2",
        "--days",
        "17",
        "--fault",
    ]);
    run_ok(&[
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
        "--max-pairs",
        "6",
    ]);
    (trace, engine)
}

/// A spawned child whose stdout is read line by line.
struct Proc {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Proc {
    /// Spawns the binary and blocks until a stdout line starts with
    /// `announce`, returning the rest of that line. `None` if the child
    /// exits first (e.g. the port is still held by a dying process).
    //
    // The escaping child is not a zombie: it leaves inside a `Proc`,
    // and every test path ends in `Proc::wait` or `Proc::kill`.
    #[allow(clippy::zombie_processes)]
    fn spawn(args: &[&str], announce: &str) -> Option<(Proc, String)> {
        let mut child = bin()
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read child stdout");
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
            if let Some(rest) = line.trim().strip_prefix(announce) {
                let rest = rest.to_string();
                return Some((Proc { child, stdout }, rest));
            }
        }
    }

    /// Blocks until the next stdout line starting with `announce`,
    /// returning the rest of that line.
    fn next_announce(&mut self, announce: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.stdout.read_line(&mut line).expect("read child stdout");
            assert!(n > 0, "child exited before announcing {announce:?}");
            if let Some(rest) = line.trim().strip_prefix(announce) {
                return rest.to_string();
            }
        }
    }

    /// Waits for a clean exit and returns the remaining stdout.
    fn wait(mut self) -> String {
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("drain child stdout");
        let status = self.child.wait().expect("child waits");
        assert!(status.success(), "child failed; stdout:\n{rest}");
        rest
    }

    fn kill(mut self) {
        self.child.kill().expect("kill child");
        self.child.wait().expect("reap child");
    }
}

/// Spawns a `shard-worker` and parses its bound address.
fn spawn_worker(listen: &str) -> (Proc, String) {
    Proc::spawn(
        &["shard-worker", "--listen", listen],
        "worker listening on ",
    )
    .expect("worker spawns")
}

/// Restarts a worker on the address a killed one just vacated. The OS
/// may briefly refuse the rebind, so retry until a deadline.
fn respawn_worker(listen: &str) -> (Proc, String) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(got) = Proc::spawn(
            &["shard-worker", "--listen", listen],
            "worker listening on ",
        ) {
            return got;
        }
        assert!(
            Instant::now() < deadline,
            "could not rebind a worker on {listen}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The signal the fabric must reproduce bit-for-bit: every ALARM line
/// in order, plus the lowest-system-fitness floor.
fn essence(out: &str) -> (Vec<String>, String) {
    let alarms = out
        .lines()
        .filter(|l| l.starts_with("ALARM "))
        .map(str::to_string)
        .collect();
    let floor = out
        .lines()
        .find(|l| l.starts_with("lowest system fitness"))
        .unwrap_or("")
        .to_string();
    (alarms, floor)
}

/// The single-process reference output for the default replay window.
fn serve_reference(trace: &str, engine: &str) -> String {
    run_ok(&[
        "serve", "--trace", trace, "--engine", engine, "--shards", "2",
    ])
}

#[test]
fn coordinator_matches_the_serve_reference() {
    let dir = tmp_dir("equiv");
    let (trace, engine) = fixture(&dir);
    let reference = serve_reference(&trace, &engine);
    let (ref_alarms, ref_floor) = essence(&reference);
    assert!(!ref_floor.is_empty(), "reference run produced no reports");

    let (w0, a0) = spawn_worker("127.0.0.1:0");
    let (w1, a1) = spawn_worker("127.0.0.1:0");
    let workers = format!("{a0},{a1}");
    let stats = dir.join("stats.json");
    let out = run_ok(&[
        "coordinator",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--workers",
        &workers,
        "--halt-workers",
        "--stats",
        stats.to_str().unwrap(),
    ]);
    assert!(out.contains("coordinating 2 remote shards"), "{out}");
    assert_eq!(essence(&out), (ref_alarms, ref_floor), "{out}");
    assert!(stats.exists(), "stats file written");

    // --halt-workers shut both workers down cleanly.
    for w in [w0, w1] {
        let summary = w.wait();
        assert!(summary.contains("worker served 1 sessions"), "{summary}");
        assert!(summary.contains("0 protocol errors"), "{summary}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_reattached_on_its_old_port() {
    let dir = tmp_dir("reattach");
    let (trace, engine) = fixture(&dir);
    let reference = serve_reference(&trace, &engine);

    let (w0, a0) = spawn_worker("127.0.0.1:0");
    let (w1, a1) = spawn_worker("127.0.0.1:0");
    let workers = format!("{a0},{a1}");
    // ~240 snapshots at 60/s leaves ~4s of replay to interfere with.
    let (coord, _) = Proc::spawn(
        &[
            "coordinator",
            "--trace",
            &trace,
            "--engine",
            &engine,
            "--workers",
            &workers,
            "--rate",
            "60",
            "--reattach-secs",
            "15",
            "--halt-workers",
        ],
        "coordinating ",
    )
    .expect("coordinator spawns");

    // Kill shard 1's worker mid-stream, then restart one on the same
    // port; the coordinator must migrate the shard onto it and finish.
    std::thread::sleep(Duration::from_millis(500));
    w1.kill();
    let (w1b, _) = respawn_worker(&a1);

    let out = coord.wait();
    assert!(out.contains("reattached shard 1"), "{out}");
    assert!(out.contains("1 migrations"), "{out}");
    // The migrated fabric still reproduces the reference stream.
    assert_eq!(essence(&out), essence(&reference), "{out}");

    for w in [w0, w1b] {
        w.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_coordinator_resumes_from_an_audited_checkpoint() {
    let dir = tmp_dir("resume");
    let (trace, engine) = fixture(&dir);
    let ckpt = dir.join("ckpt").to_string_lossy().to_string();

    let (w0, a0) = spawn_worker("127.0.0.1:0");
    let (w1, a1) = spawn_worker("127.0.0.1:0");
    let workers = format!("{a0},{a1}");
    let (coord, _) = Proc::spawn(
        &[
            "coordinator",
            "--trace",
            &trace,
            "--engine",
            &engine,
            "--workers",
            &workers,
            "--rate",
            "60",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "60",
        ],
        "coordinating ",
    )
    .expect("coordinator spawns");

    // Wait for a periodic checkpoint to land, then kill the coordinator
    // without ceremony. The workers keep listening.
    let manifest = Path::new(&ckpt).join("manifest.json");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let cut = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|text| {
                text.split("\"cut_seq\":").nth(1).and_then(|rest| {
                    rest.trim()
                        .split(|c: char| !c.is_ascii_digit())
                        .next()?
                        .parse::<u64>()
                        .ok()
                })
            })
            .unwrap_or(0);
        if cut >= 60 {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint landed");
        std::thread::sleep(Duration::from_millis(50));
    }
    coord.kill();

    // The checkpoint the crash left behind passes offline validation,
    // including the remote ownership table.
    let audit = run_ok(&["audit", "--checkpoint", &ckpt]);
    assert!(audit.contains("2 shard files"), "{audit}");
    assert!(audit.contains("0 problems"), "{audit}");

    // Resume without --engine or --workers: both come from the
    // manifest. The final checkpoint at exit must validate too.
    let out = run_ok(&[
        "coordinator",
        "--trace",
        &trace,
        "--resume",
        "--checkpoint",
        &ckpt,
        "--halt-workers",
    ]);
    assert!(out.contains("resumed from checkpoint"), "{out}");
    assert!(out.contains("coordinating 2 remote shards"), "{out}");
    let audit = run_ok(&["audit", "--checkpoint", &ckpt]);
    assert!(audit.contains("0 problems"), "{audit}");

    for w in [w0, w1] {
        let summary = w.wait();
        assert!(summary.contains("worker served 2 sessions"), "{summary}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses the `SocketAddr` out of a `metrics on http://HOST:PORT/metrics`
/// announcement tail.
fn metrics_addr(announce: &str) -> std::net::SocketAddr {
    announce
        .trim_start_matches("http://")
        .trim_end_matches("/metrics")
        .parse()
        .unwrap_or_else(|e| panic!("bad metrics address {announce:?}: {e}"))
}

#[test]
fn observed_fabric_matches_reference_and_serves_live_metrics() {
    let dir = tmp_dir("metrics");
    let (trace, engine) = fixture(&dir);
    let reference = serve_reference(&trace, &engine);

    // Workers expose their own endpoints; the coordinator's handshake
    // (sent because it runs with --metrics) lights their tracers up.
    let (mut w0, a0) = spawn_worker_with_metrics("127.0.0.1:0");
    let (mut w1, a1) = spawn_worker_with_metrics("127.0.0.1:0");
    let m0 = metrics_addr(&w0.next_announce("metrics on "));
    let m1 = metrics_addr(&w1.next_announce("metrics on "));
    let workers = format!("{a0},{a1}");
    let out = run_ok(&[
        "coordinator",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--workers",
        &workers,
        "--metrics",
        "127.0.0.1:0",
    ]);
    assert!(out.contains("metrics on http://"), "{out}");
    assert_eq!(essence(&out), essence(&reference), "{out}");
    let served: u64 = out
        .lines()
        .find_map(|l| l.strip_prefix("served ")?.split(' ').next()?.parse().ok())
        .expect("served summary line");
    assert!(served > 0, "{out}");

    // The workers outlive the run (no --halt-workers), so their
    // endpoints are scrapable with the final counts: every snapshot
    // fanned out to both shards, and the handshake-propagated tracer
    // recorded spans on each.
    for addr in [m0, m1] {
        let (status, body) = gridwatch_obs::scrape(addr, "/metrics").expect("scrape worker");
        assert!(status.contains("200"), "bad status {status}");
        let samples = gridwatch_obs::parse_exposition(&body).expect("parseable exposition");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}:\n{body}"))
                .value
        };
        assert_eq!(get("gridwatch_worker_snapshots_total"), served as f64);
        assert_eq!(get("gridwatch_worker_boards_total"), served as f64);
        assert_eq!(get("gridwatch_worker_sessions_total"), 1.0);
        assert_eq!(get("gridwatch_worker_protocol_errors_total"), 0.0);
        let score_count = samples
            .iter()
            .find(|s| {
                s.name == "gridwatch_stage_ns_count"
                    && s.labels.iter().any(|(k, v)| k == "stage" && v == "score")
            })
            .unwrap_or_else(|| panic!("no score spans:\n{body}"));
        assert_eq!(score_count.value, served as f64);
    }

    w0.kill();
    w1.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns a `shard-worker` with a metrics endpoint and parses its bound
/// listen address (the metrics address is announced on the next line).
fn spawn_worker_with_metrics(listen: &str) -> (Proc, String) {
    Proc::spawn(
        &[
            "shard-worker",
            "--listen",
            listen,
            "--metrics",
            "127.0.0.1:0",
        ],
        "worker listening on ",
    )
    .expect("worker spawns")
}
