//! End-to-end CLI tests: simulate → train → monitor → inspect through
//! the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn full_workflow_detects_the_injected_fault() {
    let dir = tmp_dir("workflow");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    let updated = dir.join("engine2.json").to_string_lossy().to_string();

    // Simulate 16 days with the Figure-12 fault on day 15.
    let out = run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "3",
        "--days",
        "16",
        "--seed",
        "7",
        "--fault",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ground-truth fault window"), "{text}");

    // Train on the first 8 days.
    let out = run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("trained"), "{text}");

    // Monitor the fault day; the injected break must alarm.
    let out = run_ok(bin().args([
        "monitor",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--system-threshold",
        "0.0",
        "--measurement-threshold",
        "0.55",
        "--incidents",
        "--save",
        &updated,
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ALARM"), "no alarm raised:\n{text}");
    assert!(text.contains("incident report"), "{text}");
    assert!(text.contains("updated engine snapshot"), "{text}");

    // Inspect both snapshots.
    let out = run_ok(bin().args(["inspect", "--engine", &engine]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("pair models"), "{text}");
    let out = run_ok(bin().args(["inspect", "--engine", &updated, "--verbose"]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("grid "), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_errors() {
    // Top-level help.
    let out = run_ok(bin().arg("--help"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: gridwatch"));
    // Per-command help.
    let out = run_ok(bin().args(["simulate", "--help"]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--out FILE"));
    // Unknown command fails.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing required flag fails.
    let out = bin().arg("train").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace is required"));
    // Unreadable trace fails cleanly.
    let out = bin()
        .args([
            "train",
            "--trace",
            "/no/such/file.csv",
            "--out",
            "/tmp/x.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn clean_monitoring_is_quiet() {
    let dir = tmp_dir("quiet");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "B",
        "--machines",
        "2",
        "--days",
        "16",
        "--seed",
        "11",
    ]));
    run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));
    let out = run_ok(bin().args([
        "monitor",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--system-threshold",
        "0.6",
        "--measurement-threshold",
        "0.3",
        "--consecutive",
        "2",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("0 alarms"),
        "clean day must stay quiet:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_replays_the_fault_day_through_shards() {
    let dir = tmp_dir("serve");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    let stats = dir.join("stats.json").to_string_lossy().to_string();
    let ckpt = dir.join("ckpt").to_string_lossy().to_string();

    run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "3",
        "--days",
        "16",
        "--seed",
        "7",
        "--fault",
    ]));
    run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));

    // Serve the fault day on 4 shards; the injected break must alarm
    // exactly as under `monitor`.
    let out = run_ok(bin().args([
        "serve",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--shards",
        "4",
        "--backpressure",
        "block",
        "--system-threshold",
        "0.0",
        "--measurement-threshold",
        "0.55",
        "--stats",
        &stats,
        "--checkpoint",
        &ckpt,
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ALARM"), "no alarm raised:\n{text}");
    assert!(text.contains("across 4 shards (block)"), "{text}");
    assert!(text.contains("final checkpoint written"), "{text}");
    assert!(text.contains("serving stats written"), "{text}");

    // The stats dump is valid JSON with one entry per shard.
    let json = std::fs::read_to_string(&stats).unwrap();
    let parsed: gridwatch_serve::ServeStats = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.shards.len(), 4);
    assert!(parsed.submitted > 0);
    assert_eq!(parsed.checkpoints, 1);

    // Resume from the checkpoint (no --engine needed) and serve the
    // next day on a different shard count.
    let out = run_ok(bin().args([
        "serve",
        "--trace",
        &trace,
        "--from-day",
        "15",
        "--days",
        "1",
        "--shards",
        "2",
        "--checkpoint",
        &ckpt,
        "--resume",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("resumed from checkpoint"), "{text}");
    assert!(text.contains("across 2 shards"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_validation() {
    let out = run_ok(bin().args(["serve", "--help"]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--backpressure"), "{text}");
    assert!(text.contains("--shards"), "{text}");

    // Bad backpressure policy names the offender.
    let out = bin()
        .args([
            "serve",
            "--trace",
            "x.csv",
            "--engine",
            "x.json",
            "--backpressure",
            "flood",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("flood"));

    // Zero shards rejected before any work happens.
    let out = bin()
        .args([
            "serve", "--trace", "x.csv", "--engine", "x.json", "--shards", "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards must be positive"));

    // --resume without --checkpoint is an error.
    let out = bin()
        .args(["serve", "--trace", "x.csv", "--resume"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint"));
}
