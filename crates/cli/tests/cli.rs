//! End-to-end CLI tests: simulate → train → monitor → inspect through
//! the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn full_workflow_detects_the_injected_fault() {
    let dir = tmp_dir("workflow");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    let updated = dir.join("engine2.json").to_string_lossy().to_string();

    // Simulate 16 days with the Figure-12 fault on day 15.
    let out = run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "3",
        "--days",
        "16",
        "--seed",
        "7",
        "--fault",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ground-truth fault window"), "{text}");

    // Train on the first 8 days.
    let out = run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("trained"), "{text}");

    // Monitor the fault day; the injected break must alarm.
    let out = run_ok(bin().args([
        "monitor",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--system-threshold",
        "0.0",
        "--measurement-threshold",
        "0.55",
        "--incidents",
        "--save",
        &updated,
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ALARM"), "no alarm raised:\n{text}");
    assert!(text.contains("incident report"), "{text}");
    assert!(text.contains("updated engine snapshot"), "{text}");

    // Inspect both snapshots.
    let out = run_ok(bin().args(["inspect", "--engine", &engine]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("pair models"), "{text}");
    let out = run_ok(bin().args(["inspect", "--engine", &updated, "--verbose"]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("grid "), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_errors() {
    // Top-level help.
    let out = run_ok(bin().arg("--help"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: gridwatch"));
    // Per-command help.
    let out = run_ok(bin().args(["simulate", "--help"]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--out FILE"));
    // Unknown command fails.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing required flag fails.
    let out = bin().arg("train").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace is required"));
    // Unreadable trace fails cleanly.
    let out = bin()
        .args([
            "train",
            "--trace",
            "/no/such/file.csv",
            "--out",
            "/tmp/x.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn clean_monitoring_is_quiet() {
    let dir = tmp_dir("quiet");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "B",
        "--machines",
        "2",
        "--days",
        "16",
        "--seed",
        "11",
    ]));
    run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));
    let out = run_ok(bin().args([
        "monitor",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--system-threshold",
        "0.6",
        "--measurement-threshold",
        "0.3",
        "--consecutive",
        "2",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("0 alarms"),
        "clean day must stay quiet:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_replays_the_fault_day_through_shards() {
    let dir = tmp_dir("serve");
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    let stats = dir.join("stats.json").to_string_lossy().to_string();
    let ckpt = dir.join("ckpt").to_string_lossy().to_string();

    run_ok(bin().args([
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "3",
        "--days",
        "16",
        "--seed",
        "7",
        "--fault",
    ]));
    run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));

    // Serve the fault day on 4 shards; the injected break must alarm
    // exactly as under `monitor`.
    let out = run_ok(bin().args([
        "serve",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--shards",
        "4",
        "--backpressure",
        "block",
        "--system-threshold",
        "0.0",
        "--measurement-threshold",
        "0.55",
        "--stats",
        &stats,
        "--checkpoint",
        &ckpt,
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("ALARM"), "no alarm raised:\n{text}");
    assert!(text.contains("across 4 shards (block)"), "{text}");
    assert!(text.contains("final checkpoint written"), "{text}");
    assert!(text.contains("serving stats written"), "{text}");

    // The stats dump is valid JSON with one entry per shard.
    let json = std::fs::read_to_string(&stats).unwrap();
    let parsed: gridwatch_serve::ServeStats = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.shards.len(), 4);
    assert!(parsed.submitted > 0);
    assert_eq!(parsed.checkpoints, 1);

    // Resume from the checkpoint (no --engine needed) and serve the
    // next day on a different shard count.
    let out = run_ok(bin().args([
        "serve",
        "--trace",
        &trace,
        "--from-day",
        "15",
        "--days",
        "1",
        "--shards",
        "2",
        "--checkpoint",
        &ckpt,
        "--resume",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("resumed from checkpoint"), "{text}");
    assert!(text.contains("across 2 shards"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Prepares a simulated trace plus a trained engine and returns their
/// paths. `fault` injects the Figure-12 break on day 15.
fn sim_and_train(dir: &std::path::Path, seed: &str, fault: bool) -> (String, String) {
    let trace = dir.join("trace.csv").to_string_lossy().to_string();
    let engine = dir.join("engine.json").to_string_lossy().to_string();
    let mut args = vec![
        "simulate",
        "--out",
        &trace,
        "--group",
        "A",
        "--machines",
        "3",
        "--days",
        "16",
        "--seed",
        seed,
    ];
    if fault {
        args.push("--fault");
    }
    run_ok(bin().args(&args));
    run_ok(bin().args([
        "train",
        "--trace",
        &trace,
        "--out",
        &engine,
        "--train-days",
        "8",
    ]));
    (trace, engine)
}

#[test]
fn monitor_output_is_pinned_and_incidents_carry_flight_events() {
    let dir = tmp_dir("monitor_golden");
    let (trace, engine) = sim_and_train(&dir, "7", true);

    let out = run_ok(bin().args([
        "monitor",
        "--trace",
        &trace,
        "--engine",
        &engine,
        "--from-day",
        "15",
        "--days",
        "1",
        "--system-threshold",
        "0.0",
        "--measurement-threshold",
        "0.55",
        "--incidents",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    // The summary lines tooling parses.
    assert!(
        text.contains("monitored 240 snapshots over day 15..16;"),
        "{text}"
    );
    assert!(text.contains("lowest system fitness: "), "{text}");
    // The incident drill-down carries the engine's flight-recorder
    // ring: the alarm that triggered it is already in the run-up.
    assert!(text.contains("incident report @"), "{text}");
    assert!(text.contains("recent pipeline events:"), "{text}");
    assert!(text.contains("alarm event(s) at t="), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitor_flag_validation() {
    let out = run_ok(bin().args(["monitor", "--help"]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--incidents"), "{text}");

    // Missing required flags, named in order of declaration.
    let out = bin().arg("monitor").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace is required"));
    let out = bin()
        .args(["monitor", "--trace", "x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--engine is required"));

    // A malformed numeric flag names the offending flag.
    let out = bin()
        .args([
            "monitor", "--trace", "x.csv", "--engine", "x.json", "--days", "banana",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad value for --days"));

    // Positional arguments are rejected, not silently ignored.
    let out = bin()
        .args(["monitor", "trace.csv", "--engine", "x.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected positional argument"));
}

#[test]
fn inspect_output_is_pinned() {
    let dir = tmp_dir("inspect_golden");
    let (_, engine) = sim_and_train(&dir, "11", false);

    let out = run_ok(bin().args(["inspect", "--engine", &engine]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains(&format!("engine snapshot: {engine}")),
        "{text}"
    );
    assert!(text.contains("  pair models: "), "{text}");
    assert!(text.contains("  model config: kernel "), "{text}");
    assert!(text.contains("  alarm policy: system < "), "{text}");
    assert!(text.contains("  total cells: "), "{text}");
    assert!(
        !text.contains("grid "),
        "terse mode must skip per-pair lines"
    );

    // Verbose adds one grid line per pair model.
    let out = run_ok(bin().args(["inspect", "--engine", &engine, "--verbose"]));
    let verbose = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(verbose.contains("grid "), "{verbose}");
    assert!(verbose.contains(" transitions, "), "{verbose}");
    assert!(
        verbose.lines().count() > text.lines().count(),
        "--verbose must add lines"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_flag_validation() {
    let out = run_ok(bin().args(["inspect", "--help"]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--verbose"));

    let out = bin().arg("inspect").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--engine is required"));

    // A missing snapshot file fails cleanly.
    let out = bin()
        .args(["inspect", "--engine", "/no/such/engine.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // A file that is not an engine snapshot names the parse failure.
    let dir = tmp_dir("inspect_bad");
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"not\": \"an engine\"}").unwrap();
    let out = bin()
        .args(["inspect", "--engine", &bogus.to_string_lossy()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_dumps_are_atomic_and_observed_replay_matches() {
    let dir = tmp_dir("stats_atomic");
    let (trace, engine) = sim_and_train(&dir, "7", true);
    let stats = dir.join("out").join("stats.json");
    let stats_arg = stats.to_string_lossy().to_string();

    let serve = |extra: &[&str]| {
        let mut args = vec![
            "serve",
            "--trace",
            &trace,
            "--engine",
            &engine,
            "--from-day",
            "15",
            "--days",
            "1",
            "--shards",
            "2",
            "--system-threshold",
            "0.0",
            "--measurement-threshold",
            "0.55",
        ];
        args.extend_from_slice(extra);
        let out = run_ok(bin().args(&args));
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let ckpt = dir.join("ckpt").to_string_lossy().to_string();
    let ckpt2 = dir.join("ckpt2").to_string_lossy().to_string();
    let plain = serve(&[
        "--stats",
        &stats_arg,
        "--checkpoint",
        &ckpt,
        "--checkpoint-every",
        "50",
    ]);
    assert!(plain.contains("serving stats written"), "{plain}");

    // The periodic flushes and the final write all went through the
    // atomic temp-file path: the dump parses and no temp file remains.
    let parsed: gridwatch_serve::ServeStats =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    assert!(parsed.submitted > 0);
    let leftovers: Vec<_> = std::fs::read_dir(stats.parent().unwrap())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "torn temp files left: {leftovers:?}");

    // The alarm stream with the metrics endpoint live is identical to
    // the unobserved run, and the flight recorder dumped on alarm.
    let observed = serve(&["--metrics", "127.0.0.1:0", "--checkpoint", &ckpt2]);
    assert!(observed.contains("metrics on http://"), "{observed}");
    let alarms = |text: &str| {
        text.lines()
            .filter(|l| l.starts_with("ALARM "))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        alarms(&plain),
        alarms(&observed),
        "observability changed the alarm stream"
    );
    let flight = dir.join("ckpt2").join("flight.jsonl");
    let ring = std::fs::read_to_string(&flight).unwrap();
    assert!(
        ring.lines()
            .any(|l| l.contains("\"kind\":\"alarm\"") || l.contains("alarm")),
        "flight dump missing alarm events: {ring}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_validation() {
    let out = run_ok(bin().args(["serve", "--help"]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--backpressure"), "{text}");
    assert!(text.contains("--shards"), "{text}");

    // Bad backpressure policy names the offender.
    let out = bin()
        .args([
            "serve",
            "--trace",
            "x.csv",
            "--engine",
            "x.json",
            "--backpressure",
            "flood",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("flood"));

    // Zero shards rejected before any work happens.
    let out = bin()
        .args([
            "serve", "--trace", "x.csv", "--engine", "x.json", "--shards", "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards must be positive"));

    // --resume without --checkpoint is an error.
    let out = bin()
        .args(["serve", "--trace", "x.csv", "--resume"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint"));
}
