//! End-to-end tests of the causal-trace plane: a faulty stream served
//! through `serve --listen` with `--trace-*` flags leaves queryable
//! exemplar traces behind in the history store (`gridwatch trace`),
//! and the `/healthz` endpoint flips to degraded during the fault
//! window and recovers to ok afterwards.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gridwatch_detect::{AlarmPolicy, DetectionEngine, EngineConfig, Snapshot};
use gridwatch_obs::{scrape, Stage, TraceExemplar};
use gridwatch_serve::{encode_json, WireFrame};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

const STEP_SECS: u64 = 360;
const MEASUREMENTS: usize = 4;
const SOURCE: &str = "agent-1";
/// Steps whose frames carry the injected fault.
const FAULT: std::ops::Range<u64> = 8..16;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridwatch"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch_trace_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ids() -> Vec<MeasurementId> {
    (0..MEASUREMENTS as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, k: u64) -> f64 {
    let load = (k % 48) as f64;
    (m as f64 + 1.0) * load + 5.0 * m as f64
}

/// Writes a small trained engine to `dir/engine.json`.
fn engine_file(dir: &std::path::Path) -> String {
    let ids = ids();
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..MEASUREMENTS {
        for j in (i + 1)..MEASUREMENTS {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples(
                (0..200u64).map(|k| (k * STEP_SECS, value(i, k), value(j, k))),
            )
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let snapshot = DetectionEngine::train(pairs, config).unwrap().snapshot();
    let path = dir.join("engine.json");
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    path.to_string_lossy().to_string()
}

/// Wire frames for steps `0..steps`; steps inside [`FAULT`] break one
/// measurement's learned correlations hard enough to trip alarms.
fn frames(steps: u64) -> Vec<WireFrame> {
    let ids = ids();
    (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((200 + k) * STEP_SECS));
            for (m, &mid) in ids.iter().enumerate() {
                let mut v = value(m, k);
                if m == MEASUREMENTS - 1 && FAULT.contains(&k) {
                    v -= 200.0;
                }
                snap.insert(mid, v);
            }
            WireFrame {
                source: SOURCE.to_string(),
                seq: k,
                snapshot: snap,
            }
        })
        .collect()
}

struct Server {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
    metrics: Option<SocketAddr>,
}

impl Server {
    /// Spawns `serve --listen 127.0.0.1:0` plus `extra` flags, parsing
    /// the listen address (and, when `--metrics` is among the flags,
    /// the metrics address) from the announcement lines.
    fn spawn(engine: &str, extra: &[&str]) -> Server {
        let wants_metrics = extra.contains(&"--metrics");
        let mut child = bin()
            .args(["serve", "--listen", "127.0.0.1:0", "--engine", engine])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        let mut addr: Option<SocketAddr> = None;
        let mut metrics: Option<SocketAddr> = None;
        loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read child stdout");
            assert!(n > 0, "child exited before announcing its addresses");
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                let token = rest.split_whitespace().next().expect("address token");
                addr = Some(token.parse().expect("parsable listen address"));
            }
            if let Some(rest) = line.trim().strip_prefix("metrics on http://") {
                let token = rest.trim_end_matches("/metrics");
                metrics = Some(token.parse().expect("parsable metrics address"));
            }
            if addr.is_some() && (!wants_metrics || metrics.is_some()) {
                break;
            }
        }
        Server {
            child,
            stdout,
            addr: addr.expect("listen address"),
            metrics,
        }
    }

    fn wait(mut self) -> String {
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("drain child stdout");
        let status = self.child.wait().expect("child waits");
        assert!(status.success(), "server failed; stdout:\n{rest}");
        rest
    }
}

fn send_frames(addr: SocketAddr, frames: &[WireFrame]) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect to listener");
    stream.set_nodelay(true).expect("nodelay");
    for frame in frames {
        stream
            .write_all(&encode_json(frame).expect("encodable frame"))
            .expect("write frame");
    }
    stream.flush().expect("flush");
    stream
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "expected success for {args:?}; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// Serve a faulty stream with exemplar tracing into a history store,
/// then prove the acceptance property offline: every alarmed snapshot
/// has a queryable exemplar whose spans cover all seven stages.
#[test]
fn alarmed_snapshots_leave_queryable_seven_stage_exemplars() {
    let dir = tmp_dir("exemplars");
    let engine = engine_file(&dir);
    let store = dir.join("hist");
    let steps = 24u64;
    let server = Server::spawn(
        &engine,
        &[
            "--protocol",
            "json",
            "--max-snapshots",
            &steps.to_string(),
            "--store",
            store.to_str().unwrap(),
            "--trace-exemplars",
            "256",
        ],
    );
    let _stream = send_frames(server.addr, &frames(steps));
    let out = server.wait();
    assert!(
        out.contains("ALARM"),
        "fault never tripped an alarm:\n{out}"
    );

    // The alarmed exemplars, as JSON documents.
    let json = run_ok(&[
        "trace",
        "--store",
        store.to_str().unwrap(),
        "--alarmed",
        "--format",
        "json",
    ]);
    let traces: Vec<TraceExemplar> = serde_json::from_str(&json).expect("trace --format json");
    assert!(!traces.is_empty(), "no alarmed exemplars were persisted");
    for trace in &traces {
        assert!(trace.alarmed);
        assert_eq!(trace.source, SOURCE);
        for stage in Stage::ALL {
            assert!(
                trace.spans.iter().any(|s| s.stage == stage.name()),
                "alarmed seq {} missing stage {} in {:?}",
                trace.seq,
                stage.name(),
                trace.spans
            );
        }
    }

    // The text waterfall marks the alarm and attributes the spans.
    let text = run_ok(&["trace", "--store", store.to_str().unwrap(), "--alarmed"]);
    assert!(text.contains("alarmed"), "{text}");
    assert!(text.contains("score"), "{text}");
    assert!(text.contains("ingest"), "{text}");

    // --slowest K caps and ranks.
    let slowest = run_ok(&[
        "trace",
        "--store",
        store.to_str().unwrap(),
        "--slowest",
        "2",
        "--format",
        "json",
    ]);
    let ranked: Vec<TraceExemplar> = serde_json::from_str(&slowest).expect("ranked json");
    assert!(ranked.len() <= 2);
    if ranked.len() == 2 {
        assert!(ranked[0].total_ns >= ranked[1].total_ns);
    }

    // A source filter that matches nothing is empty, not an error.
    let none = run_ok(&[
        "trace",
        "--store",
        store.to_str().unwrap(),
        "--source",
        "nobody",
    ]);
    assert!(none.contains("(no matching traces)"), "{none}");

    // The raw records are also visible to the generic history query.
    let history = run_ok(&[
        "history",
        "--store",
        store.to_str().unwrap(),
        "--kind",
        "traces",
    ]);
    assert!(history.contains("trace"), "{history}");
}

/// `/healthz` flips to degraded while the fault window is raising
/// alarms and recovers to ok once the stream is healthy again;
/// `/readyz` mirrors it with a 503. The burn-rate gauges ride the
/// same endpoint.
#[test]
fn healthz_degrades_during_faults_and_recovers() {
    let dir = tmp_dir("healthz");
    let engine = engine_file(&dir);
    let steps = 24u64;
    // One more than we send up front: the server stays alive (and
    // scrapable) until the closing frame arrives.
    let server = Server::spawn(
        &engine,
        &[
            "--protocol",
            "json",
            "--max-snapshots",
            &(steps + 1).to_string(),
            "--metrics",
            "127.0.0.1:0",
        ],
    );
    let metrics = server.metrics.expect("metrics address");

    // Healthy before any traffic.
    let (status, body) = scrape(metrics, "/healthz").unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, _) = scrape(metrics, "/readyz").unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");

    // The full stream, fault window included.
    let _stream = send_frames(server.addr, &frames(steps));

    // Degraded while alarms fire: a poll sees new alarms since the
    // previous poll and /readyz answers 503.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = scrape(metrics, "/healthz").unwrap();
        if body.contains("\"status\":\"degraded\"") {
            assert!(body.contains("alarm"), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never degraded; last body: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Recovered once the pipeline is quiet: the alarm delta clears
    // and both endpoints are green again.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (healthz_status, body) = scrape(metrics, "/healthz").unwrap();
        assert_eq!(healthz_status, "HTTP/1.1 200 OK");
        if body.contains("\"status\":\"ok\"") {
            let (ready_status, _) = scrape(metrics, "/readyz").unwrap();
            assert_eq!(ready_status, "HTTP/1.1 200 OK");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healthz never recovered; last body: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The exposition carries the burn-rate gauges and the flight
    // recorder drop counter alongside the base counters.
    let (_, expo) = scrape(metrics, "/metrics").unwrap();
    assert!(expo.contains("gridwatch_burn_decode_error_ppm"), "{expo}");
    assert!(expo.contains("gridwatch_burn_stage_p99_ns"), "{expo}");
    assert!(expo.contains("gridwatch_flight_dropped_total"), "{expo}");

    // The closing frame lets the server reach --max-snapshots and
    // exit cleanly.
    let closing = WireFrame {
        source: "closer".to_string(),
        seq: 0,
        snapshot: frames(steps + 1).pop().unwrap().snapshot,
    };
    let _tail = send_frames(server.addr, &[closing]);
    let out = server.wait();
    assert!(
        out.contains(&format!("served {} snapshots", steps + 1)),
        "{out}"
    );
}
