//! Offline store validation: a read-only walk of a store directory
//! that reports every corruption it can find — torn or truncated WAL
//! tails, checksum mismatches, unknown block versions, misfiled or
//! overlapping blocks — without modifying a single byte.
//!
//! Findings split into **problems** (real corruption or invariant
//! violations; `gridwatch audit --store` fails on these) and **notes**
//! (states the store recovers from by itself: a torn tail after a
//! crash, WAL/block overlap after an interrupted seal, leftover
//! `.trash` husks).

use std::collections::HashMap;
use std::path::Path;

use crate::block::{decode_block, decode_meta};
use crate::partition::{
    list_blocks, list_partitions, parse_partition_dir_name, MANIFEST_FILE, TRASH_SUFFIX, WAL_FILE,
};
use crate::record::RecordKind;
use crate::store::StoreManifest;
use crate::store::MANIFEST_VERSION;
use crate::wal;
use crate::{io_err, StoreError};

/// The outcome of a read-only store walk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreValidation {
    /// Partitions seen.
    pub partitions: usize,
    /// Block files seen.
    pub blocks: usize,
    /// Rows across all decodable blocks.
    pub sealed_rows: u64,
    /// Complete records in the WAL.
    pub wal_records: usize,
    /// Corruption / invariant violations. A healthy store has none.
    pub problems: Vec<String>,
    /// Recoverable states worth knowing about.
    pub notes: Vec<String>,
}

impl StoreValidation {
    /// Whether the walk found no problems (notes are fine).
    pub fn is_healthy(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Walks the store at `dir` read-only and reports everything found.
///
/// # Errors
///
/// Only if `dir` itself cannot be read; damage *inside* the store is
/// reported in the returned [`StoreValidation`], never as an error.
pub fn validate_store(dir: &Path) -> Result<StoreValidation, StoreError> {
    let mut v = StoreValidation::default();

    // Manifest.
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut partition_secs = 0u64;
    match std::fs::read_to_string(&manifest_path) {
        Err(e) => v
            .problems
            .push(format!("manifest {MANIFEST_FILE}: unreadable: {e}")),
        Ok(text) => match serde_json::from_str::<StoreManifest>(&text) {
            Err(e) => v
                .problems
                .push(format!("manifest {MANIFEST_FILE}: does not parse: {e}")),
            Ok(manifest) => {
                if manifest.version != MANIFEST_VERSION {
                    v.problems.push(format!(
                        "manifest {MANIFEST_FILE}: version {} (this build reads {MANIFEST_VERSION})",
                        manifest.version
                    ));
                }
                if manifest.partition_secs == 0 {
                    v.problems
                        .push(format!("manifest {MANIFEST_FILE}: partition_secs is zero"));
                } else {
                    partition_secs = manifest.partition_secs;
                }
            }
        },
    }

    // Top-level entries: known files, partitions, recoverable husks.
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            v.problems
                .push("non-UTF-8 entry name in store directory".to_string());
            continue;
        };
        if name == MANIFEST_FILE || name == WAL_FILE {
            continue;
        }
        if name.ends_with(TRASH_SUFFIX) || name.ends_with(".tmp") {
            v.notes.push(format!(
                "leftover {name} from an interrupted drop or seal (cleaned on next open)"
            ));
            continue;
        }
        if parse_partition_dir_name(name).is_none() {
            v.notes
                .push(format!("unexpected entry {name} in store directory"));
        }
    }

    // Partitions and blocks.
    let mut seen: HashMap<RecordKind, HashMap<u64, String>> = HashMap::new();
    let partitions = list_partitions(dir)?;
    v.partitions = partitions.len();
    for partition in &partitions {
        if partition_secs > 0 && partition.start_secs % partition_secs != 0 {
            v.problems.push(format!(
                "partition p-{:012} is not aligned to the {partition_secs}s width",
                partition.start_secs
            ));
        }
        let window_end = partition.start_secs.saturating_add(partition_secs.max(1));
        for block in list_blocks(&partition.path)? {
            v.blocks += 1;
            let label = format!(
                "p-{:012}/{}",
                partition.start_secs,
                block
                    .path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("?")
            );
            let bytes = match std::fs::read(&block.path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    v.problems.push(format!("{label}: unreadable: {e}"));
                    continue;
                }
            };
            let meta = match decode_meta(&bytes) {
                Ok(meta) => meta,
                Err(e) => {
                    v.problems.push(format!("{label}: {e}"));
                    continue;
                }
            };
            if meta.kind != block.kind {
                v.problems.push(format!(
                    "{label}: file name says {}, header says {}",
                    block.kind.name(),
                    meta.kind.name()
                ));
            }
            if meta.first_seq != block.first_seq {
                v.problems.push(format!(
                    "{label}: file name says first seq {}, header says {}",
                    block.first_seq, meta.first_seq
                ));
            }
            let contents = match decode_block(&bytes) {
                Ok(contents) => contents,
                Err(e) => {
                    v.problems.push(format!("{label}: {e}"));
                    continue;
                }
            };
            v.sealed_rows += contents.rows.len() as u64;
            let mut prev_seq: Option<u64> = None;
            for (seq, record) in &contents.rows {
                if prev_seq.is_some_and(|p| *seq <= p) {
                    v.problems.push(format!(
                        "{label}: sequence numbers not strictly increasing at {seq}"
                    ));
                    break;
                }
                prev_seq = Some(*seq);
                if record.at() < meta.min_at || record.at() > meta.max_at {
                    v.problems.push(format!(
                        "{label}: record at t={} outside the header range [{}, {}]",
                        record.at(),
                        meta.min_at,
                        meta.max_at
                    ));
                    break;
                }
                if partition_secs > 0
                    && (record.at() < partition.start_secs || record.at() >= window_end)
                {
                    v.problems.push(format!(
                        "{label}: record at t={} misfiled outside the partition window [{}, {})",
                        record.at(),
                        partition.start_secs,
                        window_end
                    ));
                    break;
                }
            }
            let by_seq = seen.entry(meta.kind).or_default();
            for (seq, _) in &contents.rows {
                if let Some(other) = by_seq.get(seq) {
                    v.problems.push(format!(
                        "{label}: sequence {seq} also sealed in {other} (overlapping blocks)"
                    ));
                    break;
                }
            }
            for (seq, _) in &contents.rows {
                by_seq.entry(*seq).or_insert_with(|| label.clone());
            }
        }
    }
    let sealed_next = seen
        .values()
        .flat_map(|m| m.keys().copied())
        .max()
        .map(|s| s + 1)
        .unwrap_or(0);

    // The WAL.
    let wal_path = dir.join(WAL_FILE);
    if !wal_path.exists() {
        if v.blocks > 0 {
            v.notes
                .push(format!("{WAL_FILE} missing (recreated empty on next open)"));
        }
    } else {
        match wal::inspect(&wal_path) {
            Err(e) => v.problems.push(format!("{WAL_FILE}: {e}")),
            Ok((base_seq, recovery)) => {
                v.wal_records = recovery.payloads.len();
                if let Some(reason) = &recovery.truncation_reason {
                    v.notes.push(format!(
                        "{WAL_FILE}: torn tail of {} bytes ({reason}); truncated to the last \
                         synced record on next open",
                        recovery.truncated_bytes
                    ));
                }
                if base_seq > sealed_next {
                    // Indistinguishable from normal retention (dropped
                    // partitions take their sequence numbers with them),
                    // so observed rather than condemned.
                    v.notes.push(format!(
                        "{WAL_FILE}: starts at seq {base_seq}, blocks seal through {sealed_next} \
                         (earlier sequences dropped by retention or lost)"
                    ));
                }
                let mut overlap = 0usize;
                for (idx, payload) in recovery.payloads.iter().enumerate() {
                    let seq = base_seq + idx as u64;
                    if seen.values().any(|m| m.contains_key(&seq)) {
                        overlap += 1;
                    }
                    if let Err(e) = crate::record::Record::decode(payload) {
                        v.problems.push(format!(
                            "{WAL_FILE}: record at seq {seq} does not decode: {e}"
                        ));
                    }
                }
                if overlap > 0 {
                    v.notes.push(format!(
                        "{WAL_FILE}: {overlap} records already sealed into blocks (an \
                         interrupted seal; deduplicated on next open)"
                    ));
                }
            }
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, ScoreRow};
    use crate::store::{HistoryStore, StoreConfig};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gw-validate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated(tag: &str) -> PathBuf {
        let dir = scratch(tag);
        let (mut store, _) = HistoryStore::open(&dir, StoreConfig::default()).unwrap();
        for k in 0..20u64 {
            store
                .append(Record::Score(ScoreRow {
                    at: k * 360,
                    key: "system".to_string(),
                    score: 0.9,
                }))
                .unwrap();
        }
        store.seal().unwrap();
        for k in 0..5u64 {
            store
                .append(Record::Score(ScoreRow {
                    at: 7200 + k,
                    key: "system".to_string(),
                    score: 0.8,
                }))
                .unwrap();
        }
        store.sync().unwrap();
        dir
    }

    #[test]
    fn healthy_store_validates_clean() {
        let v = validate_store(&populated("healthy")).unwrap();
        assert!(v.is_healthy(), "{:?}", v.problems);
        assert_eq!(v.partitions, 1);
        assert_eq!(v.blocks, 1);
        assert_eq!(v.sealed_rows, 20);
        assert_eq!(v.wal_records, 5);
        assert!(v.notes.is_empty(), "{:?}", v.notes);
    }

    #[test]
    fn torn_wal_tail_is_a_note_not_a_problem() {
        let dir = populated("torn");
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let v = validate_store(&dir).unwrap();
        assert!(v.is_healthy(), "{:?}", v.problems);
        assert!(
            v.notes.iter().any(|n| n.contains("torn tail")),
            "{:?}",
            v.notes
        );
        assert_eq!(v.wal_records, 4);
    }

    #[test]
    fn block_bitflip_is_a_problem() {
        let dir = populated("bitflip");
        let partition = list_partitions(&dir).unwrap().remove(0);
        let block = list_blocks(&partition.path).unwrap().remove(0);
        let mut bytes = std::fs::read(&block.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&block.path, &bytes).unwrap();
        let v = validate_store(&dir).unwrap();
        assert!(!v.is_healthy());
        assert!(
            v.problems.iter().any(|p| p.contains("checksum")),
            "{:?}",
            v.problems
        );
    }

    #[test]
    fn missing_manifest_is_a_problem() {
        let dir = populated("no-manifest");
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let v = validate_store(&dir).unwrap();
        assert!(
            v.problems.iter().any(|p| p.contains("manifest")),
            "{:?}",
            v.problems
        );
    }
}
