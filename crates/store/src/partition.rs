//! On-disk layout of a store directory: time partitions and the block
//! files inside them.
//!
//! ```text
//! <store>/STORE.json                      manifest
//! <store>/wal.log                         active WAL
//! <store>/p-000000086400/                 partition starting at t=86400s
//!         b-00000000000000000042-scores.gwb
//!         b-00000000000000000050-events.gwb
//! ```
//!
//! Partition directories are named by the trace second their window
//! starts at; block files by the first sequence number they hold and
//! the record family. Both are zero-padded so lexicographic order is
//! chronological order.

use std::path::{Path, PathBuf};

use crate::record::RecordKind;
use crate::{io_err, StoreError};

/// File name of the store manifest.
pub const MANIFEST_FILE: &str = "STORE.json";

/// File name of the active WAL.
pub const WAL_FILE: &str = "wal.log";

/// Extension of sealed columnar block files.
pub const BLOCK_EXT: &str = "gwb";

/// Suffix partition directories are renamed to just before deletion, so
/// a crash mid-drop leaves an ignorable husk instead of a half-deleted
/// partition.
pub const TRASH_SUFFIX: &str = ".trash";

/// The directory name for the partition whose window starts at
/// `start_secs`.
pub fn partition_dir_name(start_secs: u64) -> String {
    format!("p-{start_secs:012}")
}

/// Inverse of [`partition_dir_name`]; `None` for unrelated entries.
pub fn parse_partition_dir_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("p-")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The file name for a block holding `kind` records starting at
/// sequence number `first_seq`.
pub fn block_file_name(first_seq: u64, kind: RecordKind) -> String {
    format!("b-{first_seq:020}-{}.{BLOCK_EXT}", kind.name())
}

/// Inverse of [`block_file_name`]; `None` for unrelated entries.
pub fn parse_block_file_name(name: &str) -> Option<(u64, RecordKind)> {
    let stem = name.strip_suffix(&format!(".{BLOCK_EXT}"))?;
    let rest = stem.strip_prefix("b-")?;
    let (digits, kind_name) = rest.split_at(rest.find('-')?);
    let kind_name = kind_name.strip_prefix('-')?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((digits.parse().ok()?, kind_name.parse().ok()?))
}

/// The window start of the partition that owns a record filed at `at`.
pub fn partition_start(at: u64, partition_secs: u64) -> u64 {
    if partition_secs == 0 {
        return 0;
    }
    (at / partition_secs) * partition_secs
}

/// One partition directory found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEntry {
    /// Window start, in trace seconds.
    pub start_secs: u64,
    /// Absolute path of the directory.
    pub path: PathBuf,
}

/// Lists the partitions of a store directory, oldest first. Entries
/// that do not parse as partitions (the WAL, the manifest, `.trash`
/// husks) are skipped.
pub fn list_partitions(dir: &Path) -> Result<Vec<PartitionEntry>, StoreError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(start_secs) = parse_partition_dir_name(name) else {
            continue;
        };
        if entry.path().is_dir() {
            out.push(PartitionEntry {
                start_secs,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|p| p.start_secs);
    Ok(out)
}

/// One block file found inside a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// First sequence number in the block (from the file name).
    pub first_seq: u64,
    /// Record family (from the file name).
    pub kind: RecordKind,
    /// Absolute path of the file.
    pub path: PathBuf,
}

/// Lists the block files of a partition, in sequence order. Non-block
/// entries (temp files) are skipped.
pub fn list_blocks(partition: &Path) -> Result<Vec<BlockEntry>, StoreError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(partition).map_err(|e| io_err(partition, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(partition, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((first_seq, kind)) = parse_block_file_name(name) else {
            continue;
        };
        out.push(BlockEntry {
            first_seq,
            kind,
            path: entry.path(),
        });
    }
    out.sort_by_key(|b| b.first_seq);
    Ok(out)
}

/// Removes leftover `.trash` partition husks and `.tmp` files from an
/// interrupted drop or seal. Returns how many entries were cleaned.
pub fn clean_leftovers(dir: &Path) -> Result<usize, StoreError> {
    let mut cleaned = 0usize;
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let path = entry.path();
        if name.ends_with(TRASH_SUFFIX) && path.is_dir() {
            std::fs::remove_dir_all(&path).map_err(|e| io_err(&path, e))?;
            cleaned += 1;
        } else if name.ends_with(".tmp") {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            cleaned += 1;
        } else if path.is_dir() {
            // Seal temp files live inside partition directories.
            let subentries = std::fs::read_dir(&path).map_err(|e| io_err(&path, e))?;
            for sub in subentries {
                let sub = sub.map_err(|e| io_err(&path, e))?;
                let sub_name = sub.file_name();
                let Some(sub_name) = sub_name.to_str() else {
                    continue;
                };
                if sub_name.ends_with(".tmp") {
                    let sub_path = sub.path();
                    std::fs::remove_file(&sub_path).map_err(|e| io_err(&sub_path, e))?;
                    cleaned += 1;
                }
            }
        }
    }
    Ok(cleaned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_chronologically() {
        assert_eq!(partition_dir_name(86_400), "p-000000086400");
        assert_eq!(parse_partition_dir_name("p-000000086400"), Some(86_400));
        assert_eq!(parse_partition_dir_name("p-xyz"), None);
        assert_eq!(parse_partition_dir_name("wal.log"), None);
        assert_eq!(parse_partition_dir_name("p-000000086400.trash"), None);

        let name = block_file_name(42, RecordKind::Score);
        assert_eq!(name, "b-00000000000000000042-scores.gwb");
        assert_eq!(parse_block_file_name(&name), Some((42, RecordKind::Score)));
        assert_eq!(parse_block_file_name("b-1-scores.gwb"), None);
        assert_eq!(parse_block_file_name("STORE.json"), None);

        let a = partition_dir_name(86_400);
        let b = partition_dir_name(10 * 86_400);
        assert!(a < b, "zero padding must keep lexicographic = chrono");
    }

    #[test]
    fn partition_start_tiles_the_timeline() {
        assert_eq!(partition_start(0, 86_400), 0);
        assert_eq!(partition_start(86_399, 86_400), 0);
        assert_eq!(partition_start(86_400, 86_400), 86_400);
        assert_eq!(partition_start(200_000, 86_400), 172_800);
        assert_eq!(partition_start(5, 0), 0);
    }

    #[test]
    fn listing_skips_foreign_entries_and_cleans_leftovers() {
        let dir = std::env::temp_dir().join(format!("gw-part-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("p-000000000000")).unwrap();
        std::fs::create_dir_all(dir.join("p-000000086400")).unwrap();
        std::fs::create_dir_all(dir.join("p-000000172800.trash")).unwrap();
        std::fs::write(dir.join("STORE.json"), "{}").unwrap();
        std::fs::write(dir.join("wal.log.tmp"), "x").unwrap();
        std::fs::write(
            dir.join("p-000000000000")
                .join("b-00000000000000000000-scores.gwb.tmp"),
            "x",
        )
        .unwrap();
        std::fs::write(
            dir.join("p-000000000000")
                .join("b-00000000000000000000-scores.gwb"),
            "x",
        )
        .unwrap();

        let parts = list_partitions(&dir).unwrap();
        assert_eq!(
            parts.iter().map(|p| p.start_secs).collect::<Vec<_>>(),
            vec![0, 86_400]
        );
        let blocks = list_blocks(&parts[0].path).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].kind, RecordKind::Score);

        assert_eq!(clean_leftovers(&dir).unwrap(), 3);
        assert!(!dir.join("p-000000172800.trash").exists());
        assert!(!dir.join("wal.log.tmp").exists());
        assert_eq!(clean_leftovers(&dir).unwrap(), 0);
    }
}
