//! [`HistoryStore`]: the embedded store itself — an active WAL fronting
//! sealed columnar partitions, with crash recovery, seal idempotence,
//! time-range scans, and retention.
//!
//! # Durability model
//!
//! Appends buffer in the WAL and become durable at [`HistoryStore::sync`]
//! (one write + fdatasync per batch). [`HistoryStore::seal`] rewrites
//! everything the WAL holds into per-partition columnar blocks (each
//! written atomically: temp file + fsync + rename + dir fsync) and then
//! swaps in a fresh WAL. Every record carries a permanent sequence
//! number; blocks remember the range they hold, so a crash *between*
//! block writes and the WAL swap only means some records exist in both
//! places — recovery decodes the overlapping blocks and replays only
//! the WAL records no block holds. Nothing is lost, nothing duplicated.
//!
//! # Retention
//!
//! [`HistoryStore::apply_retention`] drops whole expired partitions
//! atomically (rename to `.trash`, delete, fsync the store directory).
//! The cutoff is computed from the newest record instant the store has
//! ever seen — trace time, not wall-clock time — so replaying an old
//! trace is deterministic and never mass-expires its own history.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::block::{decode_block, decode_meta, encode_block, BlockMeta};
use crate::partition::{
    block_file_name, clean_leftovers, list_blocks, list_partitions, partition_dir_name,
    partition_start, MANIFEST_FILE, TRASH_SUFFIX, WAL_FILE,
};
use crate::record::{Record, RecordKind};
use crate::wal::Wal;
use crate::{io_err, sync_parent_dir, write_atomic, StoreError};

/// The manifest format version this crate writes and reads.
pub const MANIFEST_VERSION: u32 = 1;

/// Default partition width: one trace day.
pub const DEFAULT_PARTITION_SECS: u64 = 86_400;

/// Tuning knobs for a store. Persisted in the manifest so later opens
/// (CLI queries, validators) see the same layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Width of one time partition, in trace seconds.
    pub partition_secs: u64,
    /// Drop partitions whose window ended more than this many seconds
    /// before the newest record. `None` keeps everything.
    pub retention_secs: Option<u64>,
    /// Keep at most this many partitions, dropping the oldest. `None`
    /// keeps everything.
    pub max_partitions: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            partition_secs: DEFAULT_PARTITION_SECS,
            retention_secs: None,
            max_partitions: None,
        }
    }
}

/// The persisted store manifest (`STORE.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Manifest format version; this crate writes [`MANIFEST_VERSION`].
    #[serde(default)]
    pub version: u32,
    /// Width of one time partition, in trace seconds.
    #[serde(default)]
    pub partition_secs: u64,
    /// Retention window, if bounded.
    #[serde(default)]
    pub retention_secs: Option<u64>,
    /// Partition-count cap, if bounded.
    #[serde(default)]
    pub max_partitions: Option<u64>,
}

impl StoreManifest {
    fn from_config(config: &StoreConfig) -> StoreManifest {
        StoreManifest {
            version: MANIFEST_VERSION,
            partition_secs: config.partition_secs,
            retention_secs: config.retention_secs,
            max_partitions: config.max_partitions,
        }
    }

    fn to_config(&self) -> StoreConfig {
        StoreConfig {
            partition_secs: self.partition_secs,
            retention_secs: self.retention_secs,
            max_partitions: self.max_partitions,
        }
    }
}

/// What [`HistoryStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// WAL records replayed into the unsealed set.
    pub replayed_records: u64,
    /// WAL records skipped because a sealed block already holds them
    /// (a crash interrupted a seal; nothing was lost).
    pub already_sealed_records: u64,
    /// Bytes of torn/corrupt WAL tail discarded.
    pub truncated_bytes: u64,
    /// Why the WAL tail was discarded, when it was.
    pub truncation_reason: Option<String>,
    /// Leftover `.trash`/`.tmp` entries cleaned up.
    pub cleaned_leftovers: usize,
}

/// An open history store positioned for appending and querying.
#[derive(Debug)]
pub struct HistoryStore {
    dir: PathBuf,
    config: StoreConfig,
    wal: Wal,
    /// Unsealed records (everything the WAL holds that no block does),
    /// in sequence order.
    mem: Vec<(u64, Record)>,
    /// Newest record instant ever observed (sealed or not); drives the
    /// retention cutoff.
    max_at: u64,
}

fn read_manifest(path: &Path) -> Result<StoreManifest, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let manifest: StoreManifest = serde_json::from_str(&text).map_err(|e| {
        StoreError::Corrupt(format!("manifest {} does not parse: {e}", path.display()))
    })?;
    if manifest.version != MANIFEST_VERSION {
        return Err(StoreError::Corrupt(format!(
            "manifest {} is version {}, this build reads version {MANIFEST_VERSION}",
            path.display(),
            manifest.version
        )));
    }
    Ok(manifest)
}

fn write_manifest(path: &Path, manifest: &StoreManifest) -> Result<(), StoreError> {
    let text = serde_json::to_string_pretty(manifest)
        .map_err(|e| StoreError::Corrupt(format!("manifest does not serialize: {e}")))?;
    write_atomic(path, text.as_bytes())
}

impl HistoryStore {
    /// Opens (creating if needed) the store at `dir` with the given
    /// config. An existing manifest must agree on `partition_secs`
    /// (blocks are already filed under that width); retention knobs may
    /// differ and are rewritten from `config`.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(HistoryStore, OpenReport), StoreError> {
        if config.partition_secs == 0 {
            return Err(StoreError::Corrupt(
                "partition_secs must be positive".to_string(),
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut report = OpenReport {
            cleaned_leftovers: clean_leftovers(dir)?,
            ..OpenReport::default()
        };

        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = StoreManifest::from_config(&config);
        if manifest_path.exists() {
            let existing = read_manifest(&manifest_path)?;
            if existing.partition_secs != config.partition_secs {
                return Err(StoreError::Corrupt(format!(
                    "store {} is partitioned every {}s, refusing to reopen at {}s",
                    dir.display(),
                    existing.partition_secs,
                    config.partition_secs
                )));
            }
            if existing != manifest {
                write_manifest(&manifest_path, &manifest)?;
            }
        } else {
            write_manifest(&manifest_path, &manifest)?;
        }

        // Survey the sealed blocks: the next sequence a fresh WAL would
        // start at, the newest instant seen, and which block ranges
        // might overlap the WAL (crash-interrupted seal).
        let mut sealed_next = 0u64;
        let mut max_at = 0u64;
        let mut metas: Vec<(PathBuf, BlockMeta)> = Vec::new();
        for partition in list_partitions(dir)? {
            for block in list_blocks(&partition.path)? {
                let bytes = std::fs::read(&block.path).map_err(|e| io_err(&block.path, e))?;
                let meta = decode_meta(&bytes).map_err(|e| {
                    StoreError::Corrupt(format!("block {}: {e}", block.path.display()))
                })?;
                sealed_next = sealed_next.max(meta.last_seq + 1);
                max_at = max_at.max(meta.max_at);
                metas.push((block.path, meta));
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let (wal, recovery) = if wal_path.exists() {
            Wal::open(&wal_path)?
        } else {
            (Wal::create(&wal_path, sealed_next)?, Default::default())
        };
        report.truncated_bytes = recovery.truncated_bytes;
        report.truncation_reason = recovery.truncation_reason;

        // Exact-membership dedup against blocks that overlap the WAL's
        // sequence range. After a clean seal none do and this decodes
        // nothing.
        let wal_end = wal.base_seq() + recovery.payloads.len() as u64;
        let mut sealed_in_range: HashSet<u64> = HashSet::new();
        if wal_end > wal.base_seq() {
            for (path, meta) in &metas {
                if meta.last_seq >= wal.base_seq() && meta.first_seq < wal_end {
                    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
                    let contents = decode_block(&bytes).map_err(|e| {
                        StoreError::Corrupt(format!("block {}: {e}", path.display()))
                    })?;
                    sealed_in_range.extend(contents.rows.iter().map(|(seq, _)| *seq));
                }
            }
        }

        let mut mem = Vec::with_capacity(recovery.payloads.len());
        for (idx, payload) in recovery.payloads.iter().enumerate() {
            let seq = wal.base_seq() + idx as u64;
            if sealed_in_range.contains(&seq) {
                report.already_sealed_records += 1;
                continue;
            }
            let record = Record::decode(payload).map_err(|e| {
                StoreError::Corrupt(format!("WAL record at seq {seq} does not decode: {e}"))
            })?;
            max_at = max_at.max(record.at());
            mem.push((seq, record));
            report.replayed_records += 1;
        }

        Ok((
            HistoryStore {
                dir: dir.to_path_buf(),
                config,
                wal,
                mem,
                max_at,
            },
            report,
        ))
    }

    /// Opens an existing store, taking every knob from its manifest.
    /// Used by readers (queries, validators) that must not guess.
    pub fn open_existing(dir: &Path) -> Result<(HistoryStore, OpenReport), StoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Err(StoreError::Corrupt(format!(
                "{} is not a history store (no {MANIFEST_FILE})",
                dir.display()
            )));
        }
        let manifest = read_manifest(&manifest_path)?;
        HistoryStore::open(dir, manifest.to_config())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active config (as persisted in the manifest).
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Records appended or replayed but not yet sealed into blocks.
    pub fn unsealed_records(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Records guaranteed durable by a completed [`HistoryStore::sync`].
    pub fn synced_records(&self) -> u64 {
        self.wal.synced_records()
    }

    /// Newest record instant ever observed.
    pub fn max_at(&self) -> u64 {
        self.max_at
    }

    /// Appends one record to the WAL buffer; returns its permanent
    /// sequence number. Durable after the next [`HistoryStore::sync`].
    pub fn append(&mut self, record: Record) -> Result<u64, StoreError> {
        let payload = record.encode();
        let seq = self.wal.append(&payload)?;
        self.max_at = self.max_at.max(record.at());
        self.mem.push((seq, record));
        Ok(seq)
    }

    /// Makes every append so far durable (one write + fdatasync).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Seals every unsealed record into per-partition columnar blocks
    /// and swaps in a fresh WAL. Returns the number of blocks written.
    pub fn seal(&mut self) -> Result<usize, StoreError> {
        self.wal.sync()?;
        if self.mem.is_empty() {
            return Ok(0);
        }
        // Group by (partition window, family); iteration order of `mem`
        // is sequence order, so each group stays sequence-sorted. `mem`
        // itself is only cleared once every block has landed, so a
        // failed seal leaves the store fully readable.
        let mut groups: BTreeMap<(u64, u8), Vec<(u64, Record)>> = BTreeMap::new();
        for (seq, record) in &self.mem {
            let window = partition_start(record.at(), self.config.partition_secs);
            groups
                .entry((window, record.kind().tag()))
                .or_default()
                .push((*seq, record.clone()));
        }
        let mut blocks_written = 0usize;
        let mut made_partition = false;
        for ((window, tag), rows) in &groups {
            let kind = RecordKind::from_tag(*tag)
                .ok_or_else(|| StoreError::Corrupt(format!("unreachable kind tag {tag}")))?;
            let partition = self.dir.join(partition_dir_name(*window));
            if !partition.exists() {
                std::fs::create_dir_all(&partition).map_err(|e| io_err(&partition, e))?;
                made_partition = true;
            }
            let first_seq = rows.first().map(|(seq, _)| *seq).unwrap_or(0);
            let bytes = encode_block(kind, rows)?;
            write_atomic(&partition.join(block_file_name(first_seq, kind)), &bytes)?;
            blocks_written += 1;
        }
        if made_partition {
            sync_parent_dir(&self.dir.join(MANIFEST_FILE))?;
        }
        // The WAL swap is what retires the old log; if we crash before
        // it, reopening dedups against the blocks just written.
        self.wal = Wal::create(&self.dir.join(WAL_FILE), self.wal.next_seq())?;
        self.mem.clear();
        Ok(blocks_written)
    }

    /// Drops expired partitions (atomically: rename to `.trash`, delete,
    /// fsync the store directory). Returns the window starts dropped.
    pub fn apply_retention(&mut self) -> Result<Vec<u64>, StoreError> {
        let partitions = list_partitions(&self.dir)?;
        let mut drop_set: Vec<usize> = Vec::new();
        if let Some(retention) = self.config.retention_secs {
            let cutoff = self.max_at.saturating_sub(retention);
            for (idx, partition) in partitions.iter().enumerate() {
                if partition.start_secs + self.config.partition_secs <= cutoff {
                    drop_set.push(idx);
                }
            }
        }
        if let Some(cap) = self.config.max_partitions {
            let keep = cap as usize;
            let surviving = partitions.len() - drop_set.len();
            if surviving > keep {
                let mut extra = surviving - keep;
                for idx in 0..partitions.len() {
                    if extra == 0 {
                        break;
                    }
                    if !drop_set.contains(&idx) {
                        drop_set.push(idx);
                        extra -= 1;
                    }
                }
                drop_set.sort_unstable();
            }
        }
        let mut dropped = Vec::with_capacity(drop_set.len());
        for idx in drop_set {
            let partition = &partitions[idx];
            let trash = self.dir.join(format!(
                "{}{TRASH_SUFFIX}",
                partition_dir_name(partition.start_secs)
            ));
            std::fs::rename(&partition.path, &trash).map_err(|e| io_err(&partition.path, e))?;
            std::fs::remove_dir_all(&trash).map_err(|e| io_err(&trash, e))?;
            dropped.push(partition.start_secs);
        }
        if !dropped.is_empty() {
            sync_parent_dir(&self.dir.join(MANIFEST_FILE))?;
        }
        Ok(dropped)
    }

    /// Every `kind` record filed at an instant in `[from_at, to_at]`,
    /// sealed or not, as `(sequence, record)` pairs sorted by instant
    /// (ties broken by sequence).
    pub fn scan(
        &self,
        kind: RecordKind,
        from_at: u64,
        to_at: u64,
    ) -> Result<Vec<(u64, Record)>, StoreError> {
        let mut out = Vec::new();
        for partition in list_partitions(&self.dir)? {
            let window_end = partition
                .start_secs
                .saturating_add(self.config.partition_secs);
            if partition.start_secs > to_at || window_end <= from_at {
                continue;
            }
            for block in list_blocks(&partition.path)? {
                if block.kind != kind {
                    continue;
                }
                let bytes = std::fs::read(&block.path).map_err(|e| io_err(&block.path, e))?;
                let meta = decode_meta(&bytes).map_err(|e| {
                    StoreError::Corrupt(format!("block {}: {e}", block.path.display()))
                })?;
                if meta.min_at > to_at || meta.max_at < from_at {
                    continue;
                }
                let contents = decode_block(&bytes).map_err(|e| {
                    StoreError::Corrupt(format!("block {}: {e}", block.path.display()))
                })?;
                out.extend(
                    contents
                        .rows
                        .into_iter()
                        .filter(|(_, r)| r.at() >= from_at && r.at() <= to_at),
                );
            }
        }
        out.extend(
            self.mem
                .iter()
                .filter(|(_, r)| r.kind() == kind && r.at() >= from_at && r.at() <= to_at)
                .cloned(),
        );
        out.sort_by_key(|(seq, r)| (r.at(), *seq));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventRecord, ScoreRow, StatsSample};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gw-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn score(at: u64, key: &str, score: f64) -> Record {
        Record::Score(ScoreRow {
            at,
            key: key.to_string(),
            score,
        })
    }

    fn day_config() -> StoreConfig {
        StoreConfig {
            partition_secs: 86_400,
            retention_secs: None,
            max_partitions: None,
        }
    }

    #[test]
    fn append_seal_scan_roundtrips_across_partitions() {
        let dir = scratch("roundtrip");
        let (mut store, report) = HistoryStore::open(&dir, day_config()).unwrap();
        assert_eq!(report, OpenReport::default());
        for day in 0..3u64 {
            for step in 0..10u64 {
                let at = day * 86_400 + step * 360;
                store
                    .append(score(at, "system", 0.9 - day as f64 * 0.1))
                    .unwrap();
                store
                    .append(Record::Event(EventRecord {
                        at,
                        at_ns: step,
                        kind: "checkpoint".to_string(),
                        detail: format!("day {day} step {step}"),
                    }))
                    .unwrap();
            }
        }
        store.sync().unwrap();
        // 3 partitions x 2 families.
        assert_eq!(store.seal().unwrap(), 6);
        assert_eq!(store.unsealed_records(), 0);

        // Scans hit sealed blocks.
        let all = store.scan(RecordKind::Score, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), 30);
        let day1 = store
            .scan(RecordKind::Score, 86_400, 2 * 86_400 - 1)
            .unwrap();
        assert_eq!(day1.len(), 10);
        for (_, r) in &day1 {
            let Record::Score(row) = r else {
                panic!("family")
            };
            assert_eq!(row.score.to_bits(), 0.8f64.to_bits());
        }
        // Unsealed records are visible too, interleaved correctly.
        store.append(score(86_400 + 5, "system", 0.5)).unwrap();
        let day1 = store
            .scan(RecordKind::Score, 86_400, 2 * 86_400 - 1)
            .unwrap();
        assert_eq!(day1.len(), 11);
        assert_eq!(day1[1].1.at(), 86_405);
    }

    #[test]
    fn reopen_after_sync_without_seal_recovers_records() {
        let dir = scratch("reopen");
        let (mut store, _) = HistoryStore::open(&dir, day_config()).unwrap();
        store.append(score(100, "system", 0.7)).unwrap();
        store
            .append(Record::Stats(StatsSample {
                at: 100,
                payload: "{\"submitted\":1}".to_string(),
            }))
            .unwrap();
        store.sync().unwrap();
        drop(store);

        let (store, report) = HistoryStore::open(&dir, day_config()).unwrap();
        assert_eq!(report.replayed_records, 2);
        assert_eq!(report.already_sealed_records, 0);
        assert_eq!(store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(), 1);
        assert_eq!(store.scan(RecordKind::Stats, 0, u64::MAX).unwrap().len(), 1);
        assert_eq!(store.next_seq(), 2);
    }

    #[test]
    fn interrupted_seal_is_deduplicated_not_duplicated() {
        let dir = scratch("interrupted-seal");
        let (mut store, _) = HistoryStore::open(&dir, day_config()).unwrap();
        for k in 0..6u64 {
            store.append(score(k, "system", k as f64)).unwrap();
            store
                .append(Record::Event(EventRecord {
                    at: k,
                    at_ns: k,
                    kind: "alarm".to_string(),
                    detail: String::new(),
                }))
                .unwrap();
        }
        store.sync().unwrap();
        let wal_before = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.seal().unwrap();
        drop(store);
        // Simulate a crash after the blocks landed but before the WAL
        // swap: put the old (fully-sealed) WAL back.
        std::fs::write(dir.join(WAL_FILE), &wal_before).unwrap();

        let (store, report) = HistoryStore::open(&dir, day_config()).unwrap();
        assert_eq!(report.already_sealed_records, 12);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(store.unsealed_records(), 0);
        assert_eq!(store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(), 6);
        assert_eq!(store.scan(RecordKind::Event, 0, u64::MAX).unwrap().len(), 6);
        // Sequence numbering continues past the sealed records.
        assert_eq!(store.next_seq(), 12);
    }

    #[test]
    fn retention_drops_expired_partitions_and_caps_count() {
        let dir = scratch("retention");
        let config = StoreConfig {
            partition_secs: 100,
            retention_secs: Some(250),
            max_partitions: None,
        };
        let (mut store, _) = HistoryStore::open(&dir, config).unwrap();
        for window in 0..6u64 {
            store
                .append(score(window * 100 + 1, "system", 1.0))
                .unwrap();
        }
        store.seal().unwrap();
        assert_eq!(list_partitions(&dir).unwrap().len(), 6);
        // max_at = 501; cutoff = 251; windows ending at <= 251 drop.
        let dropped = store.apply_retention().unwrap();
        assert_eq!(dropped, vec![0, 100]);
        assert_eq!(store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(), 4);

        // A count cap layers on top.
        drop(store);
        let config = StoreConfig {
            partition_secs: 100,
            retention_secs: Some(250),
            max_partitions: Some(2),
        };
        let (mut store, _) = HistoryStore::open(&dir, config).unwrap();
        let dropped = store.apply_retention().unwrap();
        assert_eq!(dropped, vec![200, 300]);
        let left: Vec<u64> = list_partitions(&dir)
            .unwrap()
            .iter()
            .map(|p| p.start_secs)
            .collect();
        assert_eq!(left, vec![400, 500]);
    }

    #[test]
    fn partition_width_mismatch_is_refused_and_manifest_survives() {
        let dir = scratch("manifest");
        let (store, _) = HistoryStore::open(&dir, day_config()).unwrap();
        drop(store);
        let bad = StoreConfig {
            partition_secs: 3600,
            ..day_config()
        };
        assert!(matches!(
            HistoryStore::open(&dir, bad),
            Err(StoreError::Corrupt(_))
        ));
        // open_existing takes everything from the manifest.
        let (store, _) = HistoryStore::open_existing(&dir).unwrap();
        assert_eq!(store.config().partition_secs, 86_400);
        // A non-store directory is refused.
        let empty = scratch("not-a-store");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(HistoryStore::open_existing(&empty).is_err());
    }

    #[test]
    fn unsynced_appends_are_lost_synced_ones_survive() {
        let dir = scratch("sync-boundary");
        let (mut store, _) = HistoryStore::open(&dir, day_config()).unwrap();
        store.append(score(1, "system", 1.0)).unwrap();
        store.sync().unwrap();
        store.append(score(2, "system", 2.0)).unwrap();
        // No sync: the second record never hit the disk.
        drop(store);
        let (store, report) = HistoryStore::open(&dir, day_config()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(), 1);
    }
}
