//! The three record families the history store holds, plus their wire
//! encoding (used verbatim as the WAL payload format).
//!
//! Scores carry their `f64` as raw IEEE-754 bits end to end, so a score
//! read back from the store is bit-identical to the score the engine
//! produced — including NaN payloads, infinities, and `-0.0`.

use crate::codec::{put_string, put_varint, CodecError, Reader};

/// One fitness-score sample: the paper's `Q_t`, `Q^a_t`, or `Q^{a,b}_t`
/// at one sampling instant, keyed by the canonical measurement key
/// (`system`, `m:<measurement>`, or `p:<pair>`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRow {
    /// Sampling instant, in trace seconds.
    pub at: u64,
    /// Canonical measurement key.
    pub key: String,
    /// The fitness score, preserved bit-exactly.
    pub score: f64,
}

/// One serving-stats sample: a `ServeStats` (or fabric stats) JSON
/// document captured at checkpoint cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSample {
    /// Capture instant, in trace seconds.
    pub at: u64,
    /// The stats document, verbatim JSON.
    pub payload: String,
}

/// One alarm/incident/pipeline event, mirroring the flight recorder's
/// `FlightEvent` plus the trace instant it was filed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Filing instant, in trace seconds.
    pub at: u64,
    /// Monotonic nanoseconds from the originating recorder (orders
    /// events within one instant).
    pub at_ns: u64,
    /// Event class (`alarm`, `checkpoint`, `rebuild`, `promote`,
    /// `demote`, `conn-open`, ...).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

/// One retained trace exemplar: the tail-sampled causal record of a
/// snapshot's trip through the pipeline. The frequently-filtered
/// columns (`source`, `seq`, `alarmed`, `total_ns`) are first-class so
/// `gridwatch trace` can select without parsing; the full span tree
/// rides in `payload` as the exemplar's pinned JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Filing instant, in trace seconds.
    pub at: u64,
    /// The snapshot's sequence number.
    pub seq: u64,
    /// Whether the snapshot raised an alarm.
    pub alarmed: bool,
    /// Sum of all span durations, in nanoseconds.
    pub total_ns: u64,
    /// The snapshot's origin (`local`, `coordinator`, a wire source).
    pub source: String,
    /// The `TraceExemplar` document, verbatim JSON.
    pub payload: String,
}

/// Any record the store can hold.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A fitness-score sample.
    Score(ScoreRow),
    /// A serving-stats sample.
    Stats(StatsSample),
    /// An alarm/incident/pipeline event.
    Event(EventRecord),
    /// A tail-sampled trace exemplar.
    Trace(TraceRecord),
}

/// The record family, used to segregate columnar blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// [`ScoreRow`] records.
    Score,
    /// [`StatsSample`] records.
    Stats,
    /// [`EventRecord`] records.
    Event,
    /// [`TraceRecord`] records.
    Trace,
}

impl RecordKind {
    /// The on-disk tag byte (pinned as part of the v1 format).
    pub fn tag(self) -> u8 {
        match self {
            RecordKind::Score => 1,
            RecordKind::Stats => 2,
            RecordKind::Event => 3,
            RecordKind::Trace => 4,
        }
    }

    /// Inverse of [`RecordKind::tag`].
    pub fn from_tag(tag: u8) -> Option<RecordKind> {
        match tag {
            1 => Some(RecordKind::Score),
            2 => Some(RecordKind::Stats),
            3 => Some(RecordKind::Event),
            4 => Some(RecordKind::Trace),
            _ => None,
        }
    }

    /// The flag-friendly name (`scores`, `stats`, `events`, `traces`).
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Score => "scores",
            RecordKind::Stats => "stats",
            RecordKind::Event => "events",
            RecordKind::Trace => "traces",
        }
    }
}

impl std::str::FromStr for RecordKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scores" | "score" => Ok(RecordKind::Score),
            "stats" => Ok(RecordKind::Stats),
            "events" | "event" => Ok(RecordKind::Event),
            "traces" | "trace" => Ok(RecordKind::Trace),
            other => Err(format!(
                "unknown record kind {other:?} (expected scores, stats, events, or traces)"
            )),
        }
    }
}

impl Record {
    /// The record's family.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::Score(_) => RecordKind::Score,
            Record::Stats(_) => RecordKind::Stats,
            Record::Event(_) => RecordKind::Event,
            Record::Trace(_) => RecordKind::Trace,
        }
    }

    /// The record's sampling instant, in trace seconds.
    pub fn at(&self) -> u64 {
        match self {
            Record::Score(r) => r.at,
            Record::Stats(r) => r.at,
            Record::Event(r) => r.at,
            Record::Trace(r) => r.at,
        }
    }

    /// Encodes the record into the WAL payload format: a tag byte
    /// followed by the family's fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(self.kind().tag());
        match self {
            Record::Score(r) => {
                put_varint(&mut out, r.at);
                put_string(&mut out, &r.key);
                put_varint(&mut out, r.score.to_bits());
            }
            Record::Stats(r) => {
                put_varint(&mut out, r.at);
                put_string(&mut out, &r.payload);
            }
            Record::Event(r) => {
                put_varint(&mut out, r.at);
                put_varint(&mut out, r.at_ns);
                put_string(&mut out, &r.kind);
                put_string(&mut out, &r.detail);
            }
            Record::Trace(r) => {
                put_varint(&mut out, r.at);
                put_varint(&mut out, r.seq);
                put_varint(&mut out, u64::from(r.alarmed));
                put_varint(&mut out, r.total_ns);
                put_string(&mut out, &r.source);
                put_string(&mut out, &r.payload);
            }
        }
        out
    }

    /// Decodes one WAL payload. The payload must be consumed exactly —
    /// trailing bytes mean a framing bug or corruption.
    pub fn decode(payload: &[u8]) -> Result<Record, CodecError> {
        let mut r = Reader::new(payload);
        let tag = *r
            .take(1)?
            .first()
            .ok_or_else(|| CodecError::new("empty record payload"))?;
        let kind = RecordKind::from_tag(tag)
            .ok_or_else(|| CodecError::new(format!("unknown record tag {tag}")))?;
        let record = match kind {
            RecordKind::Score => Record::Score(ScoreRow {
                at: r.varint()?,
                key: r.string()?,
                score: f64::from_bits(r.varint()?),
            }),
            RecordKind::Stats => Record::Stats(StatsSample {
                at: r.varint()?,
                payload: r.string()?,
            }),
            RecordKind::Event => Record::Event(EventRecord {
                at: r.varint()?,
                at_ns: r.varint()?,
                kind: r.string()?,
                detail: r.string()?,
            }),
            RecordKind::Trace => Record::Trace(TraceRecord {
                at: r.varint()?,
                seq: r.varint()?,
                alarmed: r.varint()? != 0,
                total_ns: r.varint()?,
                source: r.string()?,
                payload: r.string()?,
            }),
        };
        if !r.is_empty() {
            return Err(CodecError::new(format!(
                "{} trailing bytes after a {} record",
                r.remaining(),
                kind.name()
            )));
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_roundtrip() {
        let records = [
            Record::Score(ScoreRow {
                at: 5_184_000,
                key: "m:machine-003/CpuUtilization".to_string(),
                score: 0.8173,
            }),
            Record::Stats(StatsSample {
                at: 5_184_360,
                payload: "{\"submitted\":9}".to_string(),
            }),
            Record::Event(EventRecord {
                at: 5_184_720,
                at_ns: 123_456_789,
                kind: "alarm".to_string(),
                detail: "system alarm at t=12".to_string(),
            }),
            Record::Trace(TraceRecord {
                at: 5_185_080,
                seq: 14,
                alarmed: true,
                total_ns: 42_000,
                source: "coordinator".to_string(),
                payload: "{\"seq\":14,\"spans\":[]}".to_string(),
            }),
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn scores_roundtrip_bit_exactly() {
        for bits in [
            f64::NAN.to_bits() | 0xDEAD, // NaN with a payload
            (-0.0f64).to_bits(),
            f64::NEG_INFINITY.to_bits(),
            0.1f64.to_bits(),
        ] {
            let record = Record::Score(ScoreRow {
                at: 1,
                key: "system".to_string(),
                score: f64::from_bits(bits),
            });
            let back = Record::decode(&record.encode()).unwrap();
            let Record::Score(row) = back else {
                panic!("wrong family");
            };
            assert_eq!(row.score.to_bits(), bits);
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_errors() {
        assert!(Record::decode(&[9, 0]).is_err());
        assert!(Record::decode(&[]).is_err());
        let mut bytes = Record::Stats(StatsSample {
            at: 0,
            payload: "{}".to_string(),
        })
        .encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err());
    }

    #[test]
    fn kind_names_parse_back() {
        for kind in [
            RecordKind::Score,
            RecordKind::Stats,
            RecordKind::Event,
            RecordKind::Trace,
        ] {
            assert_eq!(kind.name().parse::<RecordKind>().unwrap(), kind);
            assert_eq!(RecordKind::from_tag(kind.tag()), Some(kind));
        }
        assert!("bogus".parse::<RecordKind>().is_err());
    }
}
