//! Sealed columnar blocks: the immutable, compressed at-rest format a
//! partition's records live in once the WAL is sealed.
//!
//! ```text
//! offset 0   b"GWBLKv1\n"     8-byte magic + version
//! offset 8   kind u8          record family tag (1/2/3)
//! offset 9   first_seq u64 LE
//! offset 17  last_seq  u64 LE
//! offset 25  varint rows, varint min_at, varint max_at
//!            columns (family-specific, see below)
//! footer     crc32 u32 LE     over bytes [0, body_len)
//!            body_len u32 LE
//!            b"GWE1"          4-byte end magic
//! ```
//!
//! Column layouts (all integer columns are delta+RLE, score bits are
//! XOR+RLE — see [`crate::codec`]):
//!
//! * **scores**: key dictionary (varint count + strings, first-seen
//!   order), seq column, at column, key-index column, score-bits column.
//! * **stats**: seq column, at column, payload strings.
//! * **events**: kind dictionary, seq column, at column, at_ns column,
//!   kind-index column, detail strings.
//! * **traces**: source dictionary, seq column, at column,
//!   snapshot-seq column, alarmed column, total_ns column,
//!   source-index column, payload strings.
//!
//! The footer makes truncation self-evident (length mismatch) and the
//! CRC catches bit rot anywhere in the body; both are checked before a
//! single column byte is parsed.

use crate::codec::{
    crc32, get_delta_rle, get_xor_rle, put_delta_rle, put_string, put_varint, put_xor_rle,
    CodecError, Reader,
};
use crate::record::{EventRecord, Record, RecordKind, ScoreRow, StatsSample, TraceRecord};
use crate::StoreError;

/// The block file's magic + version prefix (pinned as part of the v1
/// format).
pub const BLOCK_MAGIC: &[u8; 8] = b"GWBLKv1\n";

/// The block file's trailing magic.
pub const BLOCK_END_MAGIC: &[u8; 4] = b"GWE1";

/// Byte length of the fixed footer (crc + body length + end magic).
pub const BLOCK_FOOTER_LEN: usize = 12;

/// A decoded block: the records it holds plus their sequence numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockContents {
    /// The family every record belongs to.
    pub kind: RecordKind,
    /// `(sequence number, record)` pairs, in sequence order.
    pub rows: Vec<(u64, Record)>,
}

/// Header fields cheap enough to read without decoding the columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// The record family.
    pub kind: RecordKind,
    /// Lowest sequence number in the block.
    pub first_seq: u64,
    /// Highest sequence number in the block.
    pub last_seq: u64,
    /// Row count.
    pub rows: u64,
    /// Earliest record instant.
    pub min_at: u64,
    /// Latest record instant.
    pub max_at: u64,
}

/// Encodes `rows` (same-family records with their sequence numbers, in
/// sequence order) into a self-checking block file image.
///
/// # Errors
///
/// Fails if `rows` is empty or mixes families.
pub fn encode_block(kind: RecordKind, rows: &[(u64, Record)]) -> Result<Vec<u8>, StoreError> {
    if rows.is_empty() {
        return Err(StoreError::Corrupt(
            "refusing to encode an empty block".to_string(),
        ));
    }
    if let Some((_, stray)) = rows.iter().find(|(_, r)| r.kind() != kind) {
        return Err(StoreError::Corrupt(format!(
            "a {} record slipped into a {} block",
            stray.kind().name(),
            kind.name()
        )));
    }
    let seqs: Vec<u64> = rows.iter().map(|(seq, _)| *seq).collect();
    let ats: Vec<u64> = rows.iter().map(|(_, r)| r.at()).collect();
    let min_at = ats.iter().copied().min().unwrap_or(0);
    let max_at = ats.iter().copied().max().unwrap_or(0);

    let mut out = Vec::with_capacity(64 + rows.len() * 8);
    out.extend_from_slice(BLOCK_MAGIC);
    out.push(kind.tag());
    out.extend_from_slice(&seqs.first().copied().unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&seqs.last().copied().unwrap_or(0).to_le_bytes());
    put_varint(&mut out, rows.len() as u64);
    put_varint(&mut out, min_at);
    put_varint(&mut out, max_at);

    match kind {
        RecordKind::Score => {
            let mut dict: Vec<&str> = Vec::new();
            let mut key_idx = Vec::with_capacity(rows.len());
            let mut bits = Vec::with_capacity(rows.len());
            for (_, record) in rows {
                if let Record::Score(row) = record {
                    let idx = match dict.iter().position(|k| *k == row.key) {
                        Some(i) => i,
                        None => {
                            dict.push(&row.key);
                            dict.len() - 1
                        }
                    };
                    key_idx.push(idx as u64);
                    bits.push(row.score.to_bits());
                }
            }
            put_varint(&mut out, dict.len() as u64);
            for key in &dict {
                put_string(&mut out, key);
            }
            put_delta_rle(&mut out, &seqs);
            put_delta_rle(&mut out, &ats);
            put_delta_rle(&mut out, &key_idx);
            put_xor_rle(&mut out, &bits);
        }
        RecordKind::Stats => {
            put_delta_rle(&mut out, &seqs);
            put_delta_rle(&mut out, &ats);
            for (_, record) in rows {
                if let Record::Stats(sample) = record {
                    put_string(&mut out, &sample.payload);
                }
            }
        }
        RecordKind::Event => {
            let mut dict: Vec<&str> = Vec::new();
            let mut kind_idx = Vec::with_capacity(rows.len());
            let mut at_ns = Vec::with_capacity(rows.len());
            for (_, record) in rows {
                if let Record::Event(event) = record {
                    let idx = match dict.iter().position(|k| *k == event.kind) {
                        Some(i) => i,
                        None => {
                            dict.push(&event.kind);
                            dict.len() - 1
                        }
                    };
                    kind_idx.push(idx as u64);
                    at_ns.push(event.at_ns);
                }
            }
            put_varint(&mut out, dict.len() as u64);
            for key in &dict {
                put_string(&mut out, key);
            }
            put_delta_rle(&mut out, &seqs);
            put_delta_rle(&mut out, &ats);
            put_delta_rle(&mut out, &at_ns);
            put_delta_rle(&mut out, &kind_idx);
            for (_, record) in rows {
                if let Record::Event(event) = record {
                    put_string(&mut out, &event.detail);
                }
            }
        }
        RecordKind::Trace => {
            let mut dict: Vec<&str> = Vec::new();
            let mut source_idx = Vec::with_capacity(rows.len());
            let mut snap_seq = Vec::with_capacity(rows.len());
            let mut alarmed = Vec::with_capacity(rows.len());
            let mut total_ns = Vec::with_capacity(rows.len());
            for (_, record) in rows {
                if let Record::Trace(trace) = record {
                    let idx = match dict.iter().position(|k| *k == trace.source) {
                        Some(i) => i,
                        None => {
                            dict.push(&trace.source);
                            dict.len() - 1
                        }
                    };
                    source_idx.push(idx as u64);
                    snap_seq.push(trace.seq);
                    alarmed.push(u64::from(trace.alarmed));
                    total_ns.push(trace.total_ns);
                }
            }
            put_varint(&mut out, dict.len() as u64);
            for key in &dict {
                put_string(&mut out, key);
            }
            put_delta_rle(&mut out, &seqs);
            put_delta_rle(&mut out, &ats);
            put_delta_rle(&mut out, &snap_seq);
            put_delta_rle(&mut out, &alarmed);
            put_delta_rle(&mut out, &total_ns);
            put_delta_rle(&mut out, &source_idx);
            for (_, record) in rows {
                if let Record::Trace(trace) = record {
                    put_string(&mut out, &trace.payload);
                }
            }
        }
    }

    let body_len = out.len() as u32;
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(BLOCK_END_MAGIC);
    Ok(out)
}

/// Verifies the framing (magic, footer length, CRC) and returns the
/// body slice — shared by the meta reader, the full decoder, and the
/// offline validator.
fn checked_body(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < BLOCK_MAGIC.len() + BLOCK_FOOTER_LEN {
        return Err(StoreError::Corrupt(format!(
            "block is {} bytes, too short for header + footer",
            bytes.len()
        )));
    }
    if &bytes[..BLOCK_MAGIC.len()] != BLOCK_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "block magic {:?} is not {BLOCK_MAGIC:?} (unknown format version?)",
            &bytes[..BLOCK_MAGIC.len()]
        )));
    }
    let footer = &bytes[bytes.len() - BLOCK_FOOTER_LEN..];
    if &footer[8..] != BLOCK_END_MAGIC {
        return Err(StoreError::Corrupt(
            "block end magic missing (truncated file?)".to_string(),
        ));
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&footer[..4]);
    let stored_crc = u32::from_le_bytes(word);
    word.copy_from_slice(&footer[4..8]);
    let body_len = u32::from_le_bytes(word) as usize;
    if body_len != bytes.len() - BLOCK_FOOTER_LEN {
        return Err(StoreError::Corrupt(format!(
            "block footer claims a {body_len}-byte body, file holds {}",
            bytes.len() - BLOCK_FOOTER_LEN
        )));
    }
    let body = &bytes[..body_len];
    let actual = crc32(body);
    if actual != stored_crc {
        return Err(StoreError::Corrupt(format!(
            "block checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(body)
}

fn corrupt(e: CodecError) -> StoreError {
    StoreError::Corrupt(format!("block column decode: {e}"))
}

fn read_meta(body: &[u8]) -> Result<(BlockMeta, Reader<'_>), StoreError> {
    let mut r = Reader::new(&body[BLOCK_MAGIC.len()..]);
    let tag = *r
        .take(1)
        .map_err(corrupt)?
        .first()
        .ok_or_else(|| StoreError::Corrupt("block kind byte missing".to_string()))?;
    let kind = RecordKind::from_tag(tag)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown block kind tag {tag}")))?;
    let mut word = [0u8; 8];
    word.copy_from_slice(r.take(8).map_err(corrupt)?);
    let first_seq = u64::from_le_bytes(word);
    word.copy_from_slice(r.take(8).map_err(corrupt)?);
    let last_seq = u64::from_le_bytes(word);
    let rows = r.varint().map_err(corrupt)?;
    let min_at = r.varint().map_err(corrupt)?;
    let max_at = r.varint().map_err(corrupt)?;
    if rows == 0 {
        return Err(StoreError::Corrupt("block claims zero rows".to_string()));
    }
    if last_seq < first_seq || last_seq - first_seq + 1 < rows {
        return Err(StoreError::Corrupt(format!(
            "block header is inconsistent: {rows} rows in seq range {first_seq}..={last_seq}"
        )));
    }
    if min_at > max_at {
        return Err(StoreError::Corrupt(format!(
            "block header is inconsistent: min_at {min_at} > max_at {max_at}"
        )));
    }
    Ok((
        BlockMeta {
            kind,
            first_seq,
            last_seq,
            rows,
            min_at,
            max_at,
        },
        r,
    ))
}

/// Reads just the header (after verifying the framing).
pub fn decode_meta(bytes: &[u8]) -> Result<BlockMeta, StoreError> {
    let body = checked_body(bytes)?;
    Ok(read_meta(body)?.0)
}

fn read_dict(r: &mut Reader<'_>) -> Result<Vec<String>, StoreError> {
    let n = r.varint().map_err(corrupt)?;
    if n > 1 << 20 {
        return Err(StoreError::Corrupt(format!(
            "block dictionary claims {n} entries"
        )));
    }
    let mut dict = Vec::with_capacity(n as usize);
    for _ in 0..n {
        dict.push(r.string().map_err(corrupt)?);
    }
    Ok(dict)
}

fn dict_lookup(dict: &[String], idx: u64) -> Result<String, StoreError> {
    dict.get(idx as usize).cloned().ok_or_else(|| {
        StoreError::Corrupt(format!(
            "dictionary index {idx} out of range ({} entries)",
            dict.len()
        ))
    })
}

/// Fully decodes a block file image.
pub fn decode_block(bytes: &[u8]) -> Result<BlockContents, StoreError> {
    let body = checked_body(bytes)?;
    let (meta, mut r) = read_meta(body)?;
    let rows = meta.rows as usize;
    let records = match meta.kind {
        RecordKind::Score => {
            let dict = read_dict(&mut r)?;
            let seqs = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let ats = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let key_idx = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let bits = get_xor_rle(&mut r, rows).map_err(corrupt)?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push((
                    seqs[i],
                    Record::Score(ScoreRow {
                        at: ats[i],
                        key: dict_lookup(&dict, key_idx[i])?,
                        score: f64::from_bits(bits[i]),
                    }),
                ));
            }
            out
        }
        RecordKind::Stats => {
            let seqs = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let ats = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push((
                    seqs[i],
                    Record::Stats(StatsSample {
                        at: ats[i],
                        payload: r.string().map_err(corrupt)?,
                    }),
                ));
            }
            out
        }
        RecordKind::Event => {
            let dict = read_dict(&mut r)?;
            let seqs = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let ats = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let at_ns = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let kind_idx = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push((
                    seqs[i],
                    Record::Event(EventRecord {
                        at: ats[i],
                        at_ns: at_ns[i],
                        kind: dict_lookup(&dict, kind_idx[i])?,
                        detail: r.string().map_err(corrupt)?,
                    }),
                ));
            }
            out
        }
        RecordKind::Trace => {
            let dict = read_dict(&mut r)?;
            let seqs = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let ats = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let snap_seq = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let alarmed = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let total_ns = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let source_idx = get_delta_rle(&mut r, rows).map_err(corrupt)?;
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push((
                    seqs[i],
                    Record::Trace(TraceRecord {
                        at: ats[i],
                        seq: snap_seq[i],
                        alarmed: alarmed[i] != 0,
                        total_ns: total_ns[i],
                        source: dict_lookup(&dict, source_idx[i])?,
                        payload: r.string().map_err(corrupt)?,
                    }),
                ));
            }
            out
        }
    };
    if !r.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} undecoded bytes after the last column",
            r.remaining()
        )));
    }
    Ok(BlockContents {
        kind: meta.kind,
        rows: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_rows() -> Vec<(u64, Record)> {
        (0..50u64)
            .map(|k| {
                (
                    100 + k,
                    Record::Score(ScoreRow {
                        at: 5_184_000 + 360 * (k / 5),
                        key: format!("m:machine-{:03}/CpuUtilization", k % 5),
                        score: 0.5 + (k as f64) / 1000.0,
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn score_blocks_roundtrip() {
        let rows = score_rows();
        let bytes = encode_block(RecordKind::Score, &rows).unwrap();
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.kind, RecordKind::Score);
        assert_eq!(meta.first_seq, 100);
        assert_eq!(meta.last_seq, 149);
        assert_eq!(meta.rows, 50);
        assert_eq!(meta.min_at, 5_184_000);
        assert_eq!(meta.max_at, 5_184_000 + 360 * 9);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back.rows, rows);
    }

    #[test]
    fn stats_and_event_blocks_roundtrip() {
        let stats: Vec<(u64, Record)> = (0..4u64)
            .map(|k| {
                (
                    k,
                    Record::Stats(StatsSample {
                        at: 100 * k,
                        payload: format!("{{\"submitted\":{k}}}"),
                    }),
                )
            })
            .collect();
        let bytes = encode_block(RecordKind::Stats, &stats).unwrap();
        assert_eq!(decode_block(&bytes).unwrap().rows, stats);

        let events: Vec<(u64, Record)> = (0..6u64)
            .map(|k| {
                (
                    10 + k,
                    Record::Event(EventRecord {
                        at: 7 + k,
                        at_ns: 1000 * k,
                        kind: if k % 2 == 0 { "alarm" } else { "checkpoint" }.to_string(),
                        detail: format!("event {k}"),
                    }),
                )
            })
            .collect();
        let bytes = encode_block(RecordKind::Event, &events).unwrap();
        assert_eq!(decode_block(&bytes).unwrap().rows, events);
    }

    #[test]
    fn trace_blocks_roundtrip() {
        let traces: Vec<(u64, Record)> = (0..8u64)
            .map(|k| {
                (
                    20 + k,
                    Record::Trace(TraceRecord {
                        at: 360 * k,
                        seq: 100 + k,
                        alarmed: k % 3 == 0,
                        total_ns: 10_000 + 777 * k,
                        source: if k % 2 == 0 { "local" } else { "coordinator" }.to_string(),
                        payload: format!("{{\"seq\":{},\"spans\":[]}}", 100 + k),
                    }),
                )
            })
            .collect();
        let bytes = encode_block(RecordKind::Trace, &traces).unwrap();
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.kind, RecordKind::Trace);
        assert_eq!(meta.rows, 8);
        assert_eq!(decode_block(&bytes).unwrap().rows, traces);
    }

    #[test]
    fn compression_beats_json_on_regular_scores() {
        let rows = score_rows();
        let bytes = encode_block(RecordKind::Score, &rows).unwrap();
        let json: usize = rows
            .iter()
            .map(|(_, r)| {
                let Record::Score(row) = r else { return 0 };
                format!(
                    "{{\"at\":{},\"key\":{:?},\"score\":{}}}",
                    row.at, row.key, row.score
                )
                .len()
            })
            .sum();
        assert!(
            bytes.len() * 3 < json,
            "columnar {}B should be well under a third of JSON {}B",
            bytes.len(),
            json
        );
    }

    #[test]
    fn truncation_and_bitflips_are_detected() {
        let bytes = encode_block(RecordKind::Score, &score_rows()).unwrap();
        // Any truncation kills the footer contract.
        for cut in [1usize, BLOCK_FOOTER_LEN, bytes.len() / 2] {
            let cut_bytes = &bytes[..bytes.len() - cut];
            assert!(decode_block(cut_bytes).is_err(), "cut {cut} not detected");
        }
        // A flip anywhere in the body trips the CRC.
        for hit in [8usize, 20, bytes.len() - BLOCK_FOOTER_LEN - 1] {
            let mut copy = bytes.clone();
            copy[hit] ^= 0x01;
            assert!(decode_block(&copy).is_err(), "flip at {hit} not detected");
        }
        // A wrong version magic is refused before anything is parsed.
        let mut copy = bytes.clone();
        copy[6] = b'9'; // GWBLKv9
        let err = decode_block(&copy).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn empty_and_mixed_blocks_are_refused() {
        assert!(encode_block(RecordKind::Score, &[]).is_err());
        let mixed = vec![
            (
                0u64,
                Record::Stats(StatsSample {
                    at: 0,
                    payload: "{}".to_string(),
                }),
            ),
            (
                1u64,
                Record::Score(ScoreRow {
                    at: 0,
                    key: "system".to_string(),
                    score: 1.0,
                }),
            ),
        ];
        assert!(encode_block(RecordKind::Stats, &mixed).is_err());
    }
}
