//! gridwatch-store: an embedded, append-only, time-partitioned history
//! store for the gridwatch serving stack — no external storage engine,
//! no new dependencies.
//!
//! The serving pipeline produces three streams worth keeping: fitness
//! scores (the paper's `Q_t` / `Q^a_t` / `Q^{a,b}_t` board), serving
//! stats samples, and alarm/incident events. This crate persists all
//! three through one write path:
//!
//! ```text
//! append ──▶ WAL (checksummed frames, fsync-batched) ──▶ sync: durable
//!                    │ seal (checkpoint cadence)
//!                    ▼
//!         time partitions of columnar blocks
//!         (delta+RLE ints, XOR+RLE f64 bits, dictionary strings)
//!                    │ retention
//!                    ▼
//!         expired partitions dropped atomically
//! ```
//!
//! Guarantees:
//!
//! * **Crash consistency** — reopening after a crash recovers exactly
//!   the records covered by the last completed [`HistoryStore::sync`];
//!   a torn tail is truncated, never misread. A crash mid-seal
//!   duplicates nothing: sequence numbers dedup WAL against blocks.
//! * **Bit-exact scores** — `f64` values travel as raw IEEE-754 bits;
//!   what the detection engine computed is what a query returns.
//! * **Self-checking at-rest format** — every WAL frame and every block
//!   carries a CRC-32; [`validate_store`] audits a store offline.
//!
//! Entry points: [`HistoryStore`] to write and scan, [`validate_store`]
//! to audit, [`query`] for CLI-grade summaries.

#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod block;
pub mod codec;
pub mod partition;
pub mod query;
pub mod record;
pub mod store;
pub mod validate;
pub mod wal;

pub use query::{measurement_key, pair_key, top_k_lowest_mean, KeySummary, SYSTEM_KEY};
pub use record::{EventRecord, Record, RecordKind, ScoreRow, StatsSample, TraceRecord};
pub use store::{HistoryStore, OpenReport, StoreConfig, StoreManifest, DEFAULT_PARTITION_SECS};
pub use validate::{validate_store, StoreValidation};

/// Any way a store operation can fail.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem refused.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// On-disk bytes violate the format or an invariant.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O on {}: {source}", path.display())
            }
            StoreError::Corrupt(reason) => write!(f, "store corruption: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt(_) => None,
        }
    }
}

/// Wraps an I/O error with the path it happened on.
pub(crate) fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Fsyncs the directory containing `path`, making a rename or create
/// inside it durable.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    let parent = match path.parent() {
        Some(parent) if parent.as_os_str().is_empty() => Path::new("."),
        Some(parent) => parent,
        None => Path::new("."),
    };
    let dir = std::fs::File::open(parent).map_err(|e| io_err(parent, e))?;
    dir.sync_all().map_err(|e| io_err(parent, e))
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory. A
/// crash leaves either the old file or the new one, never a torn mix.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    sync_parent_dir(path)
}
