//! The write-ahead log: a single append-only file of length-prefixed,
//! CRC-checked record frames, fronted by a small header that names the
//! format version and the sequence number of the first frame.
//!
//! ```text
//! offset 0   b"GWWALv1\n"        8-byte magic + version
//! offset 8   base_seq u64 LE     sequence number of frame 0
//! offset 16  frames:
//!            [len u32 LE][crc32 u32 LE][payload: len bytes] ...
//! ```
//!
//! Appends buffer in memory and hit the disk on [`Wal::sync`] (one
//! write + fdatasync per batch). Recovery scans frames until the first
//! torn or corrupt one and truncates the file there: everything before
//! the last completed sync is guaranteed back, everything after it is
//! best-effort prefix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::crc32;
use crate::{io_err, StoreError};

/// The WAL file's magic + version prefix (pinned as part of the v1
/// format).
pub const WAL_MAGIC: &[u8; 8] = b"GWWALv1\n";

/// Byte length of the WAL header (magic + base sequence number).
pub const WAL_HEADER_LEN: u64 = 16;

/// Largest accepted frame payload. Corrupt length prefixes must not
/// translate into multi-gigabyte allocations.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Complete frames recovered, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail discarded (0 for a clean file).
    pub truncated_bytes: u64,
    /// Why the tail was discarded, when it was.
    pub truncation_reason: Option<String>,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    base_seq: u64,
    /// Frames on disk + buffered, total.
    records: u64,
    /// Frames guaranteed durable by a completed [`Wal::sync`].
    synced_records: u64,
    /// Byte length of the durable prefix.
    synced_len: u64,
    /// Encoded frames not yet written + fdatasynced.
    pending: Vec<u8>,
    pending_records: u64,
}

impl Wal {
    /// Creates a fresh WAL at `path` (atomically: temp file + rename +
    /// parent-dir fsync), replacing any existing file.
    pub fn create(path: &Path, base_seq: u64) -> Result<Wal, StoreError> {
        let tmp = path.with_extension("log.tmp");
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&base_seq.to_le_bytes());
        {
            let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(&header).map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        crate::sync_parent_dir(path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            base_seq,
            records: 0,
            synced_records: 0,
            synced_len: WAL_HEADER_LEN,
            pending: Vec::new(),
            pending_records: 0,
        })
    }

    /// Opens an existing WAL, scanning every frame and truncating the
    /// first torn or corrupt tail it finds. Returns the log positioned
    /// for appending plus everything it recovered.
    pub fn open(path: &Path) -> Result<(Wal, WalRecovery), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;
        if bytes.len() < WAL_HEADER_LEN as usize {
            return Err(StoreError::Corrupt(format!(
                "WAL {} is {} bytes, shorter than its {}-byte header",
                path.display(),
                bytes.len(),
                WAL_HEADER_LEN
            )));
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "WAL {} has magic {:?}, expected {WAL_MAGIC:?}",
                path.display(),
                &bytes[..WAL_MAGIC.len()]
            )));
        }
        let mut base = [0u8; 8];
        base.copy_from_slice(&bytes[WAL_MAGIC.len()..WAL_HEADER_LEN as usize]);
        let base_seq = u64::from_le_bytes(base);

        let scan = scan_frames(&bytes[WAL_HEADER_LEN as usize..]);
        let good_len = WAL_HEADER_LEN + scan.good_bytes;
        let truncated = bytes.len() as u64 - good_len;
        if truncated > 0 {
            file.set_len(good_len).map_err(|e| io_err(path, e))?;
            file.sync_all().map_err(|e| io_err(path, e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
        let records = scan.payloads.len() as u64;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                base_seq,
                records,
                synced_records: records,
                synced_len: good_len,
                pending: Vec::new(),
                pending_records: 0,
            },
            WalRecovery {
                payloads: scan.payloads,
                truncated_bytes: truncated,
                truncation_reason: scan.stop_reason,
            },
        ))
    }

    /// The sequence number of the WAL's first frame.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Total frames appended (durable or not).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Frames guaranteed durable by a completed [`Wal::sync`].
    pub fn synced_records(&self) -> u64 {
        self.synced_records
    }

    /// Byte length of the durable prefix (used by crash tests to place
    /// simulated tears).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// The sequence number the next appended frame will get.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.records
    }

    /// Buffers one frame for the next [`Wal::sync`]; returns its
    /// sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.is_empty() || payload.len() as u64 > u64::from(MAX_FRAME_BYTES) {
            return Err(StoreError::Corrupt(format!(
                "refusing a {}-byte WAL frame (must be 1..={MAX_FRAME_BYTES})",
                payload.len()
            )));
        }
        let seq = self.next_seq();
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
        self.records += 1;
        Ok(seq)
    }

    /// Frames buffered since the last sync.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Writes and fdatasyncs every buffered frame. After this returns,
    /// all frames appended so far survive a crash.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.pending)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.synced_len += self.pending.len() as u64;
        self.synced_records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }
}

struct FrameScan {
    payloads: Vec<Vec<u8>>,
    good_bytes: u64,
    stop_reason: Option<String>,
}

/// Walks `bytes` frame by frame, stopping at the first torn or corrupt
/// frame; `good_bytes` is the length of the valid prefix.
fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let stop_reason = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 8 {
            break Some(format!(
                "torn frame header: {} trailing bytes",
                bytes.len() - pos
            ));
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(word);
        word.copy_from_slice(&bytes[pos + 4..pos + 8]);
        let crc = u32::from_le_bytes(word);
        if len == 0 || len > MAX_FRAME_BYTES {
            break Some(format!("frame length {len} out of range"));
        }
        let body = pos + 8;
        let end = body + len as usize;
        if end > bytes.len() {
            break Some(format!(
                "torn frame body: wanted {len} bytes, {} remain",
                bytes.len() - body
            ));
        }
        let payload = &bytes[body..end];
        let actual = crc32(payload);
        if actual != crc {
            break Some(format!(
                "frame checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
            ));
        }
        payloads.push(payload.to_vec());
        pos = end;
    };
    FrameScan {
        payloads,
        good_bytes: pos as u64,
        stop_reason,
    }
}

/// Scans a raw WAL file without opening it for writing — the offline
/// validator's read-only view. Returns the base sequence number and the
/// frame scan outcome.
pub(crate) fn inspect(path: &Path) -> Result<(u64, WalRecovery), StoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(StoreError::Corrupt(format!(
            "WAL {} is {} bytes, shorter than its {}-byte header",
            path.display(),
            bytes.len(),
            WAL_HEADER_LEN
        )));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "WAL {} has magic {:?}, expected {WAL_MAGIC:?}",
            path.display(),
            &bytes[..WAL_MAGIC.len()]
        )));
    }
    let mut base = [0u8; 8];
    base.copy_from_slice(&bytes[WAL_MAGIC.len()..WAL_HEADER_LEN as usize]);
    let scan = scan_frames(&bytes[WAL_HEADER_LEN as usize..]);
    Ok((
        u64::from_le_bytes(base),
        WalRecovery {
            payloads: scan.payloads,
            truncated_bytes: bytes.len() as u64 - WAL_HEADER_LEN - scan.good_bytes,
            truncation_reason: scan.stop_reason,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gw-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_sync_reopen_recovers_everything() {
        let path = scratch("roundtrip");
        let mut wal = Wal::create(&path, 7).unwrap();
        for k in 0..10u8 {
            wal.append(&[k, k + 1]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(wal.base_seq(), 7);
        assert_eq!(wal.next_seq(), 17);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.payloads.len(), 10);
        assert_eq!(recovery.payloads[3], vec![3, 4]);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_synced_prefix() {
        let path = scratch("torn");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.sync().unwrap();
        let synced = wal.synced_len();
        wal.append(b"gamma").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Crash mid-write of the third frame: cut 3 bytes into it.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..synced as usize + 3]).unwrap();

        let (wal, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.payloads, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(recovery.truncated_bytes, 3);
        assert!(recovery.truncation_reason.is_some());
        assert_eq!(wal.record_count(), 2);
        // The file itself was healed: a second open sees a clean log.
        drop(wal);
        let (_, again) = Wal::open(&path).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.payloads.len(), 2);
    }

    #[test]
    fn corrupt_payload_byte_cuts_the_log_at_that_frame() {
        let path = scratch("bitflip");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's payload.
        let hit = bytes.len() - 2;
        bytes[hit] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.payloads, vec![b"first".to_vec()]);
        assert!(recovery
            .truncation_reason
            .as_deref()
            .unwrap()
            .contains("checksum"));
    }

    #[test]
    fn bad_magic_is_corrupt_not_a_panic() {
        let path = scratch("magic");
        std::fs::write(&path, b"NOTAWAL!AAAAAAAA").unwrap();
        assert!(matches!(Wal::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn appends_after_recovery_continue_the_sequence() {
        let path = scratch("continue");
        let mut wal = Wal::create(&path, 100).unwrap();
        wal.append(b"one").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.append(b"two").unwrap(), 101);
        wal.sync().unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&path).unwrap();
        assert_eq!(recovery.payloads.len(), 2);
    }

    #[test]
    fn create_replaces_and_oversized_frames_are_refused() {
        let path = scratch("replace");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(b"junk").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let wal = Wal::create(&path, 9).unwrap();
        assert_eq!(wal.base_seq(), 9);
        assert_eq!(wal.record_count(), 0);
        drop(wal);
        let (mut wal, _) = Wal::open(&path).unwrap();
        assert!(wal.append(&[]).is_err());
    }
}
