//! Low-level byte encoding shared by the WAL and the columnar blocks:
//! LEB128 varints, zigzag signed mapping, length-prefixed strings, and
//! CRC-32 checksums. Everything here is pure and panic-free — a decoder
//! fed garbage returns an error, never aborts the process.

use std::fmt;

/// Largest accepted varint-encoded length for a string or byte column
/// element. Corrupt length prefixes must not translate into
/// multi-gigabyte allocations.
pub const MAX_ELEMENT_BYTES: u64 = 1 << 24;

/// A malformed byte stream, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    reason: String,
}

impl CodecError {
    pub(crate) fn new(reason: impl Into<String>) -> CodecError {
        CodecError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for CodecError {}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked forward reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// The current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                CodecError::new(format!(
                    "need {n} bytes at offset {}, only {} remain",
                    self.pos,
                    self.remaining()
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .take(1)?
                .first()
                .ok_or_else(|| CodecError::new("varint read returned no byte"))?;
            if shift >= 64 || (shift == 63 && (byte & 0x7e) != 0) {
                return Err(CodecError::new("varint longer than 64 bits"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let len = self.varint()?;
        if len > MAX_ELEMENT_BYTES {
            return Err(CodecError::new(format!(
                "string length {len} exceeds the {MAX_ELEMENT_BYTES}-byte element cap"
            )));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(format!("string is not UTF-8: {e}")))
    }
}

/// The IEEE CRC-32 lookup table (polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut crc = n as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
};

/// The IEEE CRC-32 of `bytes` (the same polynomial zlib and gzip use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Encodes a column of `u64` values as delta + run-length pairs: each
/// `(run, delta)` pair means "the previous value advances by `delta`,
/// `run` times" (zigzag-encoded, starting from an implicit 0). Regular
/// cadences — timestamps on a sampling grid, contiguous sequence
/// numbers, dictionary ids issued in order — collapse to a handful of
/// runs.
pub fn put_delta_rle(out: &mut Vec<u8>, values: &[u64]) {
    let mut prev = 0u64;
    let mut i = 0usize;
    while i < values.len() {
        let delta = values[i].wrapping_sub(prev) as i64;
        let mut run = 1usize;
        let mut cursor = values[i];
        while i + run < values.len() && values[i + run].wrapping_sub(cursor) as i64 == delta {
            cursor = values[i + run];
            run += 1;
        }
        put_varint(out, run as u64);
        put_varint(out, zigzag(delta));
        prev = cursor;
        i += run;
    }
}

/// Decodes exactly `rows` values written by [`put_delta_rle`].
pub fn get_delta_rle(r: &mut Reader<'_>, rows: usize) -> Result<Vec<u64>, CodecError> {
    let mut values = Vec::with_capacity(rows.min(1 << 20));
    let mut prev = 0u64;
    while values.len() < rows {
        let run = r.varint()?;
        if run == 0 || run > (rows - values.len()) as u64 {
            return Err(CodecError::new(format!(
                "delta-RLE run of {run} overflows the remaining {} rows",
                rows - values.len()
            )));
        }
        let delta = unzigzag(r.varint()?);
        for _ in 0..run {
            prev = prev.wrapping_add(delta as u64);
            values.push(prev);
        }
    }
    Ok(values)
}

/// Encodes a column of raw `u64` bit patterns (e.g. `f64::to_bits`) as
/// XOR + run-length pairs: `(run, xor)` means "the previous bits XOR
/// `xor`, `run` times". Runs of identical values — flat-lining scores,
/// repeated gauges — collapse to `(run, 0)`.
pub fn put_xor_rle(out: &mut Vec<u8>, values: &[u64]) {
    let mut prev = 0u64;
    let mut i = 0usize;
    while i < values.len() {
        let x = values[i] ^ prev;
        let mut run = 1usize;
        let mut cursor = values[i];
        while i + run < values.len() && (values[i + run] ^ cursor) == x {
            cursor = values[i + run];
            run += 1;
        }
        put_varint(out, run as u64);
        put_varint(out, x);
        prev = cursor;
        i += run;
    }
}

/// Decodes exactly `rows` values written by [`put_xor_rle`].
pub fn get_xor_rle(r: &mut Reader<'_>, rows: usize) -> Result<Vec<u64>, CodecError> {
    let mut values = Vec::with_capacity(rows.min(1 << 20));
    let mut prev = 0u64;
    while values.len() < rows {
        let run = r.varint()?;
        if run == 0 || run > (rows - values.len()) as u64 {
            return Err(CodecError::new(format!(
                "XOR-RLE run of {run} overflows the remaining {} rows",
                rows - values.len()
            )));
        }
        let x = r.varint()?;
        for _ in 0..run {
            prev ^= x;
            values.push(prev);
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xFFu8; 11];
        assert!(Reader::new(&buf).varint().is_err());
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn strings_roundtrip_and_bad_utf8_is_an_error() {
        let mut buf = Vec::new();
        put_string(&mut buf, "machine-003/CpuUtilization");
        put_string(&mut buf, "héllo ~ wörld");
        let mut r = Reader::new(&buf);
        assert_eq!(r.string().unwrap(), "machine-003/CpuUtilization");
        assert_eq!(r.string().unwrap(), "héllo ~ wörld");

        let mut bad = Vec::new();
        put_varint(&mut bad, 2);
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&bad).string().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn delta_rle_collapses_regular_cadence() {
        let values: Vec<u64> = (0..1000u64).map(|k| 360 * k).collect();
        let mut buf = Vec::new();
        put_delta_rle(&mut buf, &values);
        assert!(buf.len() < 16, "regular cadence must collapse: {buf:?}");
        let mut r = Reader::new(&buf);
        assert_eq!(get_delta_rle(&mut r, values.len()).unwrap(), values);
    }

    #[test]
    fn xor_rle_collapses_repeats_and_roundtrips_nan_bits() {
        let bits = [
            1.0f64.to_bits(),
            1.0f64.to_bits(),
            1.0f64.to_bits(),
            f64::NAN.to_bits(),
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
        ];
        let mut buf = Vec::new();
        put_xor_rle(&mut buf, &bits);
        let mut r = Reader::new(&buf);
        assert_eq!(get_xor_rle(&mut r, bits.len()).unwrap(), bits);
    }

    #[test]
    fn rle_run_overflow_is_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 5); // run of 5 ...
        put_varint(&mut buf, zigzag(1));
        let mut r = Reader::new(&buf);
        assert!(get_delta_rle(&mut r, 3).is_err()); // ... into 3 rows
        let mut r = Reader::new(&buf);
        assert!(get_xor_rle(&mut r, 3).is_err());
    }
}
