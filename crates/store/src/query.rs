//! Query helpers layered over [`crate::store::HistoryStore::scan`]:
//! canonical measurement keys, key filters, and per-key top-k
//! summaries for the `gridwatch history` CLI.
//!
//! Score rows are keyed by a canonical string so the store stays
//! decoupled from the detection crate's identifier types:
//!
//! * `system` — the system-wide fitness score `Q_t`
//! * `m:<machine>/<metric>` — a measurement score `Q^a_t`
//! * `p:<machine>/<metric>~<machine>/<metric>` — a pair score `Q^{a,b}_t`

use crate::record::{Record, ScoreRow};

/// The canonical key of the system-wide score.
pub const SYSTEM_KEY: &str = "system";

/// Prefix of measurement-score keys.
pub const MEASUREMENT_PREFIX: &str = "m:";

/// Prefix of pair-score keys.
pub const PAIR_PREFIX: &str = "p:";

/// The canonical key for a measurement score, from the measurement's
/// display form (`machine-003/CpuUtilization`).
pub fn measurement_key(measurement: &str) -> String {
    format!("{MEASUREMENT_PREFIX}{measurement}")
}

/// The canonical key for a pair score, from the two measurements'
/// display forms.
pub fn pair_key(first: &str, second: &str) -> String {
    format!("{PAIR_PREFIX}{first}~{second}")
}

/// Extracts the score rows out of a scan result, dropping other
/// families (a scan over [`crate::record::RecordKind::Score`] yields
/// only scores, so normally nothing is dropped).
pub fn score_rows(records: Vec<(u64, Record)>) -> Vec<ScoreRow> {
    records
        .into_iter()
        .filter_map(|(_, r)| match r {
            Record::Score(row) => Some(row),
            _ => None,
        })
        .collect()
}

/// Keeps only rows whose key matches `key` exactly.
pub fn filter_key(rows: Vec<ScoreRow>, key: &str) -> Vec<ScoreRow> {
    rows.into_iter().filter(|r| r.key == key).collect()
}

/// Keeps only rows of one family: `system`, measurement (`m:`), or
/// pair (`p:`) scores.
pub fn filter_prefix(rows: Vec<ScoreRow>, prefix: &str) -> Vec<ScoreRow> {
    rows.into_iter()
        .filter(|r| r.key.starts_with(prefix))
        .collect()
}

/// A per-key aggregate over a scanned window.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySummary {
    /// The canonical measurement key.
    pub key: String,
    /// Rows aggregated.
    pub count: u64,
    /// Mean score (NaN rows are excluded from the mean).
    pub mean: f64,
    /// Lowest score seen.
    pub min: f64,
    /// Highest score seen.
    pub max: f64,
}

/// Aggregates rows per key and returns the `k` keys with the lowest
/// mean score — the paper's problem-determination ranking: persistently
/// low fitness marks the measurements most correlated with the fault.
/// Ties break lexicographically by key so output is deterministic.
pub fn top_k_lowest_mean(rows: &[ScoreRow], k: usize) -> Vec<KeySummary> {
    let mut summaries = summarize(rows);
    summaries.sort_by(|a, b| a.mean.total_cmp(&b.mean).then_with(|| a.key.cmp(&b.key)));
    summaries.truncate(k);
    summaries
}

/// Aggregates rows per key, sorted by key. Single pass: pair-score
/// windows can hold thousands of distinct keys.
pub fn summarize(rows: &[ScoreRow]) -> Vec<KeySummary> {
    #[derive(Clone, Copy)]
    struct Acc {
        count: u64,
        finite: u64,
        sum: f64,
        min: f64,
        max: f64,
    }
    let mut accs: std::collections::BTreeMap<&str, Acc> = std::collections::BTreeMap::new();
    for row in rows {
        let acc = accs.entry(row.key.as_str()).or_insert(Acc {
            count: 0,
            finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        acc.count += 1;
        if !row.score.is_nan() {
            acc.finite += 1;
            acc.sum += row.score;
        }
        if row.score.total_cmp(&acc.min).is_lt() {
            acc.min = row.score;
        }
        if row.score.total_cmp(&acc.max).is_gt() {
            acc.max = row.score;
        }
    }
    accs.into_iter()
        .map(|(key, acc)| KeySummary {
            key: key.to_string(),
            count: acc.count,
            mean: if acc.finite > 0 {
                acc.sum / acc.finite as f64
            } else {
                f64::NAN
            },
            min: acc.min,
            max: acc.max,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(key: &str, score: f64) -> ScoreRow {
        ScoreRow {
            at: 0,
            key: key.to_string(),
            score,
        }
    }

    #[test]
    fn keys_compose_canonically() {
        assert_eq!(
            measurement_key("machine-003/CpuUtilization"),
            "m:machine-003/CpuUtilization"
        );
        assert_eq!(
            pair_key("machine-000/CpuUtilization", "machine-001/MemoryUsage"),
            "p:machine-000/CpuUtilization~machine-001/MemoryUsage"
        );
    }

    #[test]
    fn filters_select_by_key_and_family() {
        let rows = vec![
            row(SYSTEM_KEY, 0.9),
            row("m:a/B", 0.5),
            row("p:a/B~c/D", 0.4),
        ];
        assert_eq!(filter_key(rows.clone(), SYSTEM_KEY).len(), 1);
        assert_eq!(filter_prefix(rows.clone(), MEASUREMENT_PREFIX).len(), 1);
        assert_eq!(filter_prefix(rows, PAIR_PREFIX).len(), 1);
    }

    #[test]
    fn top_k_ranks_lowest_mean_first_with_stable_ties() {
        let rows = vec![
            row("m:a/A", 0.9),
            row("m:a/A", 0.7),
            row("m:b/B", 0.125),
            row("m:b/B", 0.375),
            row("m:c/C", 0.3),
            row("m:d/D", 0.3),
        ];
        let top = top_k_lowest_mean(&rows, 3);
        assert_eq!(
            top.iter().map(|s| s.key.as_str()).collect::<Vec<_>>(),
            vec!["m:b/B", "m:c/C", "m:d/D"]
        );
        assert_eq!(top[0].count, 2);
        assert!((top[0].mean - 0.25).abs() < 1e-12);
        assert_eq!(top[0].min.to_bits(), 0.125f64.to_bits());
        assert_eq!(top[0].max.to_bits(), 0.375f64.to_bits());
    }

    #[test]
    fn nan_scores_do_not_poison_the_mean() {
        let rows = vec![row("m:a/A", f64::NAN), row("m:a/A", 0.5)];
        let top = top_k_lowest_mean(&rows, 1);
        assert_eq!(top[0].count, 2);
        assert!((top[0].mean - 0.5).abs() < 1e-12);
    }
}
