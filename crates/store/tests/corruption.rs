//! Fixture corruption corpus for `gridwatch audit --store`: each case
//! takes a healthy store, applies one concrete kind of damage, and
//! asserts the offline validator reports it the right way — real
//! corruption as a *problem* (audit fails), self-healing states as a
//! *note* (audit passes).
//!
//! This is the store-level analogue of the audit crate's good/bad lint
//! fixture corpora: it proves the rules fire, and that they do not
//! over-fire on a healthy store.

use std::path::{Path, PathBuf};

use gridwatch_store::codec::crc32;
use gridwatch_store::record::{Record, ScoreRow};
use gridwatch_store::{validate_store, HistoryStore, StoreConfig};

const PARTITION_SECS: u64 = 3_600;

fn fixture(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gw-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig {
        partition_secs: PARTITION_SECS,
        ..StoreConfig::default()
    };
    let (mut store, _) = HistoryStore::open(&dir, config).unwrap();
    // Two partitions of sealed history plus a synced WAL tail.
    for k in 0..40u64 {
        store
            .append(Record::Score(ScoreRow {
                at: k * 180,
                key: format!("k{}", k % 3),
                score: k as f64 * 0.25,
            }))
            .unwrap();
    }
    store.seal().unwrap();
    for k in 0..6u64 {
        store
            .append(Record::Score(ScoreRow {
                at: 7_200 + k,
                key: "tail".to_string(),
                score: 0.5,
            }))
            .unwrap();
    }
    store.sync().unwrap();
    dir
}

fn first_block(dir: &Path) -> PathBuf {
    let mut partitions: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_str().unwrap_or("").to_string();
            (name.starts_with("p-") && e.path().is_dir()).then_some(e.path())
        })
        .collect();
    partitions.sort();
    let mut blocks: Vec<_> = std::fs::read_dir(&partitions[0])
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    blocks.sort();
    blocks[0].clone()
}

#[test]
fn healthy_fixture_passes() {
    let dir = fixture("ok");
    let v = validate_store(&dir).unwrap();
    assert!(v.is_healthy(), "{:?}", v.problems);
    assert_eq!(v.partitions, 2);
    assert_eq!(v.sealed_rows, 40);
    assert_eq!(v.wal_records, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_reported_as_recoverable() {
    let dir = fixture("torn-tail");
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(
        v.is_healthy(),
        "a torn tail heals on open: {:?}",
        v.problems
    );
    assert!(
        v.notes.iter().any(|n| n.contains("torn tail")),
        "{:?}",
        v.notes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_wal_header_is_a_problem() {
    let dir = fixture("short-wal");
    let wal = dir.join("wal.log");
    std::fs::write(&wal, b"GWWAL").unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("wal.log")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_wal_magic_is_a_problem() {
    let dir = fixture("wal-magic");
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[..8].copy_from_slice(b"GWWALv9\n");
    std::fs::write(&wal, &bytes).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("magic")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn undecodable_wal_record_is_a_problem() {
    let dir = fixture("wal-garbage");
    let wal = dir.join("wal.log");
    // A frame whose checksum is valid but whose payload is not a
    // record: the frame layer accepts it, the record layer must not.
    let payload = [0xFFu8, 0x01, 0x02];
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&frame);
    std::fs::write(&wal, &bytes).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("does not decode")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn block_checksum_mismatch_is_a_problem() {
    let dir = fixture("block-flip");
    let block = first_block(&dir);
    let mut bytes = std::fs::read(&block).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&block, &bytes).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("checksum")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_block_is_a_problem() {
    let dir = fixture("block-cut");
    let block = first_block(&dir);
    let bytes = std::fs::read(&block).unwrap();
    std::fs::write(&block, &bytes[..bytes.len() / 2]).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy(), "{:?}", v.notes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_block_version_is_a_problem() {
    let dir = fixture("block-v2");
    let block = first_block(&dir);
    let mut bytes = std::fs::read(&block).unwrap();
    // A future format bump: same magic shape, new version digit.
    bytes[..8].copy_from_slice(b"GWBLKv2\n");
    std::fs::write(&block, &bytes).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("magic")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_blocks_are_a_problem() {
    let dir = fixture("overlap");
    let block = first_block(&dir);
    // Re-seal the same sequence range into a different partition: the
    // same block file under another window claims every seq twice.
    let other = dir.join(format!("p-{:012}", 10 * PARTITION_SECS));
    std::fs::create_dir_all(&other).unwrap();
    std::fs::copy(&block, other.join(block.file_name().unwrap())).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("overlapping")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn misaligned_partition_is_a_problem() {
    let dir = fixture("misaligned");
    let mut partitions: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_str().unwrap_or("").to_string();
            (name.starts_with("p-") && e.path().is_dir()).then_some(e.path())
        })
        .collect();
    partitions.sort();
    // Shift the first partition off the grid by one second.
    let shifted = dir.join(format!("p-{:012}", 1));
    std::fs::rename(&partitions[0], &shifted).unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("not aligned")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_is_a_problem() {
    let dir = fixture("manifest");
    std::fs::write(dir.join("STORE.json"), "{not json").unwrap();
    let v = validate_store(&dir).unwrap();
    assert!(!v.is_healthy());
    assert!(
        v.problems.iter().any(|p| p.contains("manifest")),
        "{:?}",
        v.problems
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_seal_overlap_is_a_note_not_a_problem() {
    let dir = fixture("midseal");
    // Simulate a seal that wrote its blocks but died before swapping
    // the WAL: restore a pre-seal WAL copy next to the sealed blocks.
    let wal = dir.join("wal.log");
    let (mut store, _) = HistoryStore::open_existing(&dir).unwrap();
    store
        .append(Record::Score(ScoreRow {
            at: 7_300,
            key: "again".to_string(),
            score: 0.25,
        }))
        .unwrap();
    store.sync().unwrap();
    let pre_seal = std::fs::read(&wal).unwrap();
    store.seal().unwrap();
    drop(store);
    std::fs::write(&wal, &pre_seal).unwrap();

    let v = validate_store(&dir).unwrap();
    assert!(v.is_healthy(), "{:?}", v.problems);
    assert!(
        v.notes.iter().any(|n| n.contains("already sealed")),
        "{:?}",
        v.notes
    );
    // And open() deduplicates: the doubly-recorded rows come back once.
    let (store, report) = HistoryStore::open_existing(&dir).unwrap();
    assert!(report.already_sealed_records > 0);
    let rows = store
        .scan(gridwatch_store::RecordKind::Score, 0, u64::MAX)
        .unwrap();
    assert_eq!(rows.len(), 47);
    let _ = std::fs::remove_dir_all(&dir);
}
