//! Golden tests pinning the on-disk v1 formats byte-for-byte.
//!
//! These bytes are the compatibility contract: stores written today
//! must open under every future version. If one of these tests fails,
//! the encoder changed the v1 format — either revert the change, or
//! introduce a v2 magic alongside v1 decoding and re-pin.

use gridwatch_store::block::{decode_block, encode_block, BLOCK_MAGIC};
use gridwatch_store::record::{EventRecord, Record, RecordKind, ScoreRow, StatsSample};
use gridwatch_store::wal::{Wal, WAL_MAGIC};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn score_rows() -> Vec<(u64, Record)> {
    vec![
        (
            10,
            Record::Score(ScoreRow {
                at: 100,
                key: "system".to_string(),
                score: 0.5,
            }),
        ),
        (
            11,
            Record::Score(ScoreRow {
                at: 160,
                key: "m:a/B".to_string(),
                score: 0.25,
            }),
        ),
        (
            12,
            Record::Score(ScoreRow {
                at: 220,
                key: "system".to_string(),
                score: -0.0,
            }),
        ),
    ]
}

#[test]
fn score_block_v1_bytes_are_pinned() {
    let bytes = encode_block(RecordKind::Score, &score_rows()).unwrap();
    assert_eq!(&bytes[..8], BLOCK_MAGIC);
    assert_eq!(
        hex(&bytes),
        GOLDEN_SCORE_BLOCK,
        "score block v1 layout drifted"
    );
    // And the pinned bytes decode back to the same rows.
    let decoded = decode_block(&bytes).unwrap();
    assert_eq!(decoded.rows, score_rows());
}

#[test]
fn stats_block_v1_bytes_are_pinned() {
    let rows = vec![(
        3,
        Record::Stats(StatsSample {
            at: 360,
            payload: "{\"reports\":1}".to_string(),
        }),
    )];
    let bytes = encode_block(RecordKind::Stats, &rows).unwrap();
    assert_eq!(
        hex(&bytes),
        GOLDEN_STATS_BLOCK,
        "stats block v1 layout drifted"
    );
    assert_eq!(decode_block(&bytes).unwrap().rows, rows);
}

#[test]
fn event_block_v1_bytes_are_pinned() {
    let rows = vec![
        (
            20,
            Record::Event(EventRecord {
                at: 500,
                at_ns: 1_250,
                kind: "alarm".to_string(),
                detail: "Q_t low".to_string(),
            }),
        ),
        (
            21,
            Record::Event(EventRecord {
                at: 560,
                at_ns: 0,
                kind: "checkpoint".to_string(),
                detail: "cut 9".to_string(),
            }),
        ),
    ];
    let bytes = encode_block(RecordKind::Event, &rows).unwrap();
    assert_eq!(
        hex(&bytes),
        GOLDEN_EVENT_BLOCK,
        "event block v1 layout drifted"
    );
    assert_eq!(decode_block(&bytes).unwrap().rows, rows);
}

#[test]
fn wal_v1_bytes_are_pinned() {
    let dir = std::env::temp_dir().join(format!("gw-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    let mut wal = Wal::create(&path, 7).unwrap();
    wal.append(b"alpha").unwrap();
    wal.append(b"beta").unwrap();
    wal.sync().unwrap();
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], WAL_MAGIC);
    assert_eq!(hex(&bytes), GOLDEN_WAL, "WAL v1 layout drifted");
    let _ = std::fs::remove_dir_all(&dir);
}

const GOLDEN_SCORE_BLOCK: &str = "4757424c4b76310a010a000000000000000c000000000000000364dc01020673797374656d056d3a612f420114020201c80102780100010201010180808080808080f03f0180808080808080180180808080808080e8bf0115ef3b265800000047574531";
const GOLDEN_STATS_BLOCK: &str = "4757424c4b76310a020300000000000000030000000000000001e802e802010601d0050d7b227265706f727473223a317d07af55ca3100000047574531";
const GOLDEN_EVENT_BLOCK: &str = "4757424c4b76310a031400000000000000150000000000000002f403b0040205616c61726d0a636865636b706f696e740128010201e807017801c41301c3130100010207515f74206c6f77056375742039d4b6e8cc5100000047574531";
const GOLDEN_WAL: &str =
    "475757414c76310a0700000000000000050000006a39e0d0616c706861040000006304918f62657461";
