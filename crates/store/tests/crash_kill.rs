//! Real crash-consistency: SIGKILL a child process mid-append and
//! prove the reopened store holds exactly a clean prefix of what the
//! child wrote, including everything the child had confirmed synced.
//!
//! The child is this same test binary re-invoked with `GW_CRASH_DIR`
//! set (the standard self-exec trick, cf. the fabric fault tests): it
//! appends deterministic records in small batches, fsyncs each batch,
//! and only then advances a durable progress file. The parent kills it
//! at a random moment, so death lands anywhere — between appends,
//! mid-`write`, mid-`fsync`, or mid-progress-update.

use std::path::Path;
use std::time::{Duration, Instant};

use gridwatch_store::record::{Record, RecordKind, ScoreRow};
use gridwatch_store::{validate_store, HistoryStore, StoreConfig};

const DIR_ENV: &str = "GW_CRASH_DIR";
const PROGRESS_FILE: &str = "progress.txt";

/// The `i`-th record every writer produces: fully determined by its
/// index so the parent can check contents, not just counts.
fn nth_record(i: u64) -> Record {
    Record::Score(ScoreRow {
        at: i * 60,
        key: format!("k{:03}", i % 7),
        score: f64::from_bits(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    })
}

/// Child role: append forever in fsynced batches, recording how many
/// records are durable after each completed sync. Runs until killed.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        // Not invoked as a child — nothing to do in a normal test run.
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let config = StoreConfig {
        partition_secs: 600,
        ..StoreConfig::default()
    };
    let (mut store, _) = HistoryStore::open(&dir, config).unwrap();
    let mut written = 0u64;
    loop {
        for _ in 0..5 {
            store.append(nth_record(written)).unwrap();
            written += 1;
        }
        store.sync().unwrap();
        // Only after the sync returns is `written` durable; persist the
        // claim with the same guarantee (write + rename is atomic, and
        // a torn progress file would under-claim, never over-claim).
        let tmp = dir.join("progress.tmp");
        std::fs::write(&tmp, format!("{written}")).unwrap();
        std::fs::rename(&tmp, dir.join(PROGRESS_FILE)).unwrap();
        // Occasionally seal so the kill can also land mid-seal.
        if written.is_multiple_of(200) {
            store.seal().unwrap();
        }
    }
}

fn spawn_writer(dir: &Path) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().unwrap())
        .args(["crash_writer_child", "--exact", "--nocapture"])
        .env(DIR_ENV, dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer")
}

fn read_progress(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join(PROGRESS_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_append_recovers_exactly_to_the_last_synced_record() {
    let base = std::env::temp_dir().join(format!("gw-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Several rounds with different kill delays scatter the kill point
    // across the append/sync/seal cycle.
    for (round, delay_ms) in [25u64, 60, 140, 300].iter().enumerate() {
        let dir = base.join(format!("round-{round}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut child = spawn_writer(&dir);

        // Wait until the writer demonstrably makes progress, then let
        // it run for the round's delay and kill it without warning.
        let began = Instant::now();
        while read_progress(&dir) == 0 {
            assert!(
                began.elapsed() < Duration::from_secs(30),
                "writer made no progress in 30s"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(*delay_ms));
        child.kill().expect("SIGKILL the writer");
        child.wait().expect("reap the writer");

        // The progress file read AFTER the kill is the strongest claim
        // the child ever durably made.
        let claimed = read_progress(&dir);
        assert!(claimed > 0, "round {round}: no synced progress recorded");

        let (store, report) = HistoryStore::open_existing(&dir).unwrap();
        let rows = store.scan(RecordKind::Score, 0, u64::MAX).unwrap();

        // Exactly-to-the-last-synced-record: everything the child
        // confirmed synced is present...
        assert!(
            rows.len() as u64 >= claimed,
            "round {round}: recovered {} records, child had synced {claimed} \
             (truncated {} bytes: {:?})",
            rows.len(),
            report.truncated_bytes,
            report.truncation_reason
        );
        // ...and what came back is a clean prefix of the deterministic
        // write stream — no torn reads, no gaps, no reordering.
        for (i, (_, record)) in rows.iter().enumerate() {
            let expected = nth_record(i as u64);
            match (record, &expected) {
                (Record::Score(got), Record::Score(want)) => {
                    assert_eq!(got.at, want.at, "round {round}: record {i} at");
                    assert_eq!(got.key, want.key, "round {round}: record {i} key");
                    assert_eq!(
                        got.score.to_bits(),
                        want.score.to_bits(),
                        "round {round}: record {i} score bits"
                    );
                }
                other => panic!("round {round}: unexpected record shape {other:?}"),
            }
        }

        // The validator agrees the survivor is structurally sound.
        let validation = validate_store(&dir).unwrap();
        assert!(
            validation.is_healthy(),
            "round {round}: validator found problems: {:?}",
            validation.problems
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
