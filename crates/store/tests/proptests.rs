//! Property tests for the store's durability story:
//!
//! * WAL frames round-trip byte-exactly through append/sync/reopen.
//! * A crash at ANY byte offset (simulated by truncating the log) loses
//!   nothing before the last completed sync, never yields a torn read,
//!   and recovers a clean prefix of what was appended.
//! * Columnar blocks round-trip every record family bit-exactly,
//!   including non-finite and negative-zero scores.
//! * The full store recovers exactly the synced prefix after a
//!   simulated crash, and a second reopen is a fixed point.

use std::path::PathBuf;

use gridwatch_store::block::{decode_block, encode_block};
use gridwatch_store::record::{
    EventRecord, Record, RecordKind, ScoreRow, StatsSample, TraceRecord,
};
use gridwatch_store::wal::{Wal, WAL_HEADER_LEN};
use gridwatch_store::{HistoryStore, StoreConfig};
use proptest::prelude::*;

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gw-storeprop-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..64)
}

/// Scores with interesting bit patterns: ordinary values, ±0.0, ±inf,
/// NaN, and arbitrary bits — the store must round-trip the exact bits,
/// not the value. (The vendored proptest has no `prop_oneof`; a
/// selector byte picks the variant.)
fn score_from(sel: u8, bits: u64) -> f64 {
    match sel {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::NAN,
        5 => f64::from_bits(bits),
        _ => (bits % 2_000) as f64 / 2.0 - 500.0,
    }
}

fn kind_from(sel: u8) -> RecordKind {
    match sel {
        0 => RecordKind::Score,
        1 => RecordKind::Stats,
        2 => RecordKind::Event,
        _ => RecordKind::Trace,
    }
}

/// The raw material for one record: `(at, at_ns, key, text, (score
/// selector, score bits))`.
type RecordParts = (u32, u64, String, String, (u8, u64));

fn arb_parts() -> impl Strategy<Value = RecordParts> {
    (
        any::<u32>(),
        any::<u64>(),
        "[a-z:/~-]{0,12}",
        "[ -~]{0,24}",
        (0u8..7, any::<u64>()),
    )
}

fn record_from(kind: RecordKind, parts: RecordParts) -> Record {
    let (at, at_ns, key, text, (fsel, bits)) = parts;
    let at = u64::from(at);
    match kind {
        RecordKind::Score => Record::Score(ScoreRow {
            at,
            key,
            score: score_from(fsel, bits),
        }),
        RecordKind::Stats => Record::Stats(StatsSample { at, payload: text }),
        RecordKind::Event => Record::Event(EventRecord {
            at,
            at_ns,
            kind: key,
            detail: text,
        }),
        RecordKind::Trace => Record::Trace(TraceRecord {
            at,
            seq: at_ns,
            alarmed: fsel % 2 == 0,
            total_ns: bits,
            source: key,
            payload: text,
        }),
    }
}

fn arb_record() -> impl Strategy<Value = Record> {
    (0u8..4, arb_parts()).prop_map(|(sel, parts)| record_from(kind_from(sel), parts))
}

/// Single-family `(seq, record)` rows with strictly increasing but
/// gappy sequence numbers, as a partial seal would produce.
fn arb_rows() -> impl Strategy<Value = Vec<(u64, Record)>> {
    (
        0u8..4,
        any::<u32>(),
        prop::collection::vec((1u64..50, arb_parts()), 1..40),
    )
        .prop_map(|(sel, base, gaps)| {
            let kind = kind_from(sel);
            let mut seq = u64::from(base);
            gaps.into_iter()
                .map(|(gap, parts)| {
                    seq += gap;
                    (seq, record_from(kind, parts))
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_roundtrips_any_payloads(
        case in any::<u64>(),
        payloads in prop::collection::vec(arb_payload(), 1..20),
        base_seq in any::<u32>(),
    ) {
        let dir = scratch("walrt", case);
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, u64::from(base_seq)).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, recovery) = Wal::open(&path).unwrap();
        prop_assert_eq!(recovery.truncated_bytes, 0);
        prop_assert_eq!(&recovery.payloads, &payloads);
        prop_assert_eq!(wal.base_seq(), u64::from(base_seq));
        prop_assert_eq!(wal.next_seq(), u64::from(base_seq) + payloads.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_crash_at_any_offset_keeps_the_synced_prefix(
        case in any::<u64>(),
        payloads in prop::collection::vec(arb_payload(), 1..16),
        synced_count in 0usize..16,
        cut_back in 0u64..200,
    ) {
        let synced_count = synced_count.min(payloads.len());
        let dir = scratch("walcut", case);
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 0).unwrap();
        for p in &payloads[..synced_count] {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let synced_len = wal.synced_len();
        for p in &payloads[synced_count..] {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Crash: the tail past the first sync is torn at an arbitrary
        // byte. Everything synced before the tear must survive.
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as u64)
            .saturating_sub(cut_back)
            .max(synced_len)
            .max(WAL_HEADER_LEN) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (_, recovery) = Wal::open(&path).unwrap();
        // No torn reads: whatever came back is an exact prefix of what
        // was appended, and at least the explicitly synced prefix.
        prop_assert!(recovery.payloads.len() >= synced_count);
        prop_assert!(recovery.payloads.len() <= payloads.len());
        prop_assert_eq!(&recovery.payloads[..], &payloads[..recovery.payloads.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blocks_roundtrip_every_family_bit_exactly(
        rows in arb_rows(),
    ) {
        let bytes = encode_block(rows[0].1.kind(), &rows).unwrap();
        let decoded = decode_block(&bytes).unwrap();
        prop_assert_eq!(decoded.kind, rows[0].1.kind());
        prop_assert_eq!(decoded.rows.len(), rows.len());
        for ((seq_a, rec_a), (seq_b, rec_b)) in rows.iter().zip(decoded.rows.iter()) {
            prop_assert_eq!(seq_a, seq_b);
            match (rec_a, rec_b) {
                (Record::Score(a), Record::Score(b)) => {
                    prop_assert_eq!(a.at, b.at);
                    prop_assert_eq!(&a.key, &b.key);
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn record_encoding_roundtrips(
        record in arb_record(),
    ) {
        let bytes = record.encode();
        let back = Record::decode(&bytes).unwrap();
        match (&record, &back) {
            (Record::Score(a), Record::Score(b)) => {
                prop_assert_eq!(a.at, b.at);
                prop_assert_eq!(&a.key, &b.key);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn store_recovers_exactly_the_synced_prefix_after_a_torn_tail(
        case in any::<u64>(),
        total in 1usize..60,
        synced_count in 0usize..60,
        sealed in any::<bool>(),
        cut_back in 0u64..300,
    ) {
        let synced_count = synced_count.min(total);
        let dir = scratch("storecut", case);
        let config = StoreConfig {
            partition_secs: 1_000,
            ..StoreConfig::default()
        };
        let (mut store, _) = HistoryStore::open(&dir, config).unwrap();
        let record = |i: usize| {
            Record::Score(ScoreRow {
                at: i as u64 * 100,
                key: format!("k{i}"),
                score: i as f64 * 0.5,
            })
        };
        for i in 0..synced_count {
            store.append(record(i)).unwrap();
        }
        store.sync().unwrap();
        if sealed && synced_count > 0 {
            // Seal part of history into blocks first: recovery must
            // then stitch blocks + WAL without duplicating a record.
            store.seal().unwrap();
        }
        // The durable boundary of this crash scenario: nothing at or
        // below this WAL offset may be lost (sealed rows live in block
        // files and are durable regardless).
        let wal_path = dir.join("wal.log");
        let synced_len = std::fs::metadata(&wal_path).unwrap().len();
        for i in synced_count..total {
            store.append(record(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Crash: tear the WAL tail at an arbitrary byte at or past the
        // durable boundary.
        let full = std::fs::read(&wal_path).unwrap();
        let cut = (full.len() as u64)
            .saturating_sub(cut_back)
            .max(synced_len)
            .max(WAL_HEADER_LEN) as usize;
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let (store, _) = HistoryStore::open_existing(&dir).unwrap();
        let rows = store.scan(RecordKind::Score, 0, u64::MAX).unwrap();
        // The synced prefix always survives; the WAL tail comes back as
        // an exact prefix of the remaining appends — no torn reads, no
        // duplicates, no reordering.
        let recovered = rows.len();
        prop_assert!(recovered >= synced_count);
        prop_assert!(recovered <= total);
        for (i, (_, rec)) in rows.iter().enumerate() {
            match rec {
                Record::Score(row) => {
                    prop_assert_eq!(&row.key, &format!("k{i}"));
                    prop_assert_eq!(row.score.to_bits(), (i as f64 * 0.5).to_bits());
                }
                other => prop_assert!(false, "unexpected record {other:?}"),
            }
        }
        // Reopening again is a fixed point: nothing else is lost.
        drop(store);
        let (store, report) = HistoryStore::open_existing(&dir).unwrap();
        prop_assert_eq!(report.truncated_bytes, 0);
        prop_assert_eq!(
            store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(),
            recovered
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
