//! Property-based tests for the simulator: traces are well-formed for
//! arbitrary spans, fault windows affect exactly their targets, and the
//! workload stays positive under any configuration in range.

use gridwatch_sim::{
    FaultEvent, FaultKind, FaultSchedule, Infrastructure, TraceGenerator, WorkloadConfig,
    WorkloadGenerator,
};
use gridwatch_timeseries::{GroupId, MachineId, MeasurementId, MetricKind, Timestamp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn workload_is_positive_and_deterministic(
        seed in 0u64..1000,
        base in 0.05f64..0.5,
        amplitude in 0.1f64..1.0,
        hours in 1u64..72,
    ) {
        let config = WorkloadConfig {
            base,
            diurnal_amplitude: amplitude,
            ..WorkloadConfig::default()
        };
        let run = |seed: u64| -> Vec<f64> {
            let mut g = WorkloadGenerator::new(config, seed);
            (0..hours * 10)
                .map(|k| g.next_load(Timestamp::from_secs(k * 360)))
                .collect()
        };
        let a = run(seed);
        prop_assert!(a.iter().all(|&l| l > 0.0));
        prop_assert_eq!(a, run(seed));
    }

    #[test]
    fn trace_series_are_aligned_and_complete(
        seed in 0u64..500,
        machines in 1usize..4,
        hours in 1u64..24,
    ) {
        let infra = Infrastructure::standard_group(GroupId::B, machines, seed);
        let generator =
            TraceGenerator::new(infra, WorkloadConfig::default(), FaultSchedule::new(), seed);
        let end = Timestamp::from_hours(hours);
        let trace = generator.generate(Timestamp::EPOCH, end);
        let expected = (hours * 10) as usize; // 6-minute sampling
        prop_assert_eq!(trace.measurement_count(), machines * 6);
        for id in trace.measurement_ids() {
            let s = trace.series(id).unwrap();
            prop_assert_eq!(s.len(), expected, "series {} has wrong length", id);
            prop_assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn stuck_sensor_affects_only_its_target(
        seed in 0u64..200,
        start_hour in 1u64..10,
        len_hours in 1u64..6,
    ) {
        let infra = Infrastructure::standard_group(GroupId::A, 2, seed);
        let target = MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage);
        let other = MeasurementId::new(MachineId::new(1), MetricKind::MemoryUsage);
        let mut faults = FaultSchedule::new();
        let (fs, fe) = (
            Timestamp::from_hours(start_hour),
            Timestamp::from_hours(start_hour + len_hours),
        );
        faults.push(FaultEvent::new(FaultKind::SensorStuck { target }, fs, fe));

        let faulty = TraceGenerator::new(
            infra.clone(),
            WorkloadConfig::default(),
            faults,
            seed,
        )
        .generate(Timestamp::EPOCH, Timestamp::from_hours(start_hour + len_hours + 2));
        let clean = TraceGenerator::new(
            infra,
            WorkloadConfig::default(),
            FaultSchedule::new(),
            seed,
        )
        .generate(Timestamp::EPOCH, Timestamp::from_hours(start_hour + len_hours + 2));

        // Target is frozen inside the window.
        let window = faulty.series(target).unwrap().slice(fs, fe);
        let first = window.values()[0];
        prop_assert!(window.values().iter().all(|&v| v == first));
        // The untouched measurement matches the clean run exactly.
        prop_assert_eq!(faulty.series(other).unwrap(), clean.series(other).unwrap());
    }

    #[test]
    fn truth_label_matches_window_membership(
        start in 0u64..1000,
        len in 1u64..1000,
        probe in 0u64..3000,
    ) {
        let target = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::new(
            FaultKind::CorrelationBreak { target, level: 0.5 },
            Timestamp::from_secs(start),
            Timestamp::from_secs(start + len),
        ));
        let t = Timestamp::from_secs(probe);
        prop_assert_eq!(s.truth_label(t), probe >= start && probe < start + len);
    }
}
