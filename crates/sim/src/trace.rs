//! Trace generation: sampling the simulated infrastructure on the
//! paper's 6-minute schedule, with faults applied.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{
    AlignmentPolicy, Catalog, MeasurementId, PairSeries, SampleInterval, TimeSeries,
    TimeSeriesError, Timestamp,
};

use crate::chaos::{ChaosKind, ChaosSchedule};
use crate::fault::{FaultKind, FaultSchedule};
use crate::infra::Infrastructure;
use crate::workload::{WorkloadConfig, WorkloadGenerator};
use crate::NormalSampler;

/// A generated monitoring-data set: one time series per measurement.
///
/// The paper calls "the set of time series collected from the system" the
/// *monitoring data*; this type is its in-memory form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    catalog: Catalog,
    series: BTreeMap<MeasurementId, TimeSeries>,
    interval: SampleInterval,
}

impl Trace {
    /// Assembles a trace from parts (used by CSV import and tests).
    pub fn from_parts(
        catalog: Catalog,
        series: BTreeMap<MeasurementId, TimeSeries>,
        interval: SampleInterval,
    ) -> Self {
        Trace {
            catalog,
            series,
            interval,
        }
    }

    /// The measurement catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The sampling interval.
    pub fn interval(&self) -> SampleInterval {
        self.interval
    }

    /// The series for one measurement, if present.
    pub fn series(&self, id: MeasurementId) -> Option<&TimeSeries> {
        self.series.get(&id)
    }

    /// All measurement ids with series, in sorted order.
    pub fn measurement_ids(&self) -> impl ExactSizeIterator<Item = MeasurementId> + '_ {
        self.series.keys().copied()
    }

    /// Number of measurements.
    pub fn measurement_count(&self) -> usize {
        self.series.len()
    }

    /// The aligned pair series of two measurements.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::EmptySeries`] if either id is unknown,
    /// or an alignment error from [`PairSeries::align`].
    pub fn pair(&self, a: MeasurementId, b: MeasurementId) -> Result<PairSeries, TimeSeriesError> {
        let sa = self.series(a).ok_or(TimeSeriesError::EmptySeries)?;
        let sb = self.series(b).ok_or(TimeSeriesError::EmptySeries)?;
        PairSeries::align(sa, sb, AlignmentPolicy::Intersect)
    }
}

/// Generates [`Trace`]s from an infrastructure, a workload model, and a
/// fault schedule.
///
/// # Example
///
/// ```
/// use gridwatch_sim::{FaultSchedule, Infrastructure, TraceGenerator, WorkloadConfig};
/// use gridwatch_timeseries::{GroupId, Timestamp};
///
/// let infra = Infrastructure::standard_group(GroupId::A, 2, 1);
/// let generator = TraceGenerator::new(infra, WorkloadConfig::default(), FaultSchedule::new(), 1);
/// let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(1));
/// assert_eq!(trace.measurement_count(), 12);
/// let id = trace.measurement_ids().next().unwrap();
/// assert_eq!(trace.series(id).unwrap().len(), 240);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    infra: Infrastructure,
    workload: WorkloadConfig,
    faults: FaultSchedule,
    chaos: ChaosSchedule,
    interval: SampleInterval,
    seed: u64,
}

/// Bound on the ClockSkew load-history buffer (ticks). Larger skews
/// clamp to the oldest retained load.
const MAX_SKEW_HISTORY: usize = 256;

impl TraceGenerator {
    /// Creates a generator with the paper's default 6-minute sampling.
    pub fn new(
        infra: Infrastructure,
        workload: WorkloadConfig,
        faults: FaultSchedule,
        seed: u64,
    ) -> Self {
        TraceGenerator {
            infra,
            workload,
            faults,
            chaos: ChaosSchedule::new(),
            interval: SampleInterval::SIX_MINUTES,
            seed,
        }
    }

    /// Overrides the sampling interval.
    pub fn with_interval(mut self, interval: SampleInterval) -> Self {
        self.interval = interval;
        self
    }

    /// Composes a chaos schedule on top of the fault schedule. An empty
    /// schedule leaves generation bit-identical to the baseline.
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = chaos;
        self
    }

    /// The fault schedule (the ground truth for evaluation).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The chaos schedule (the hostile-conditions ground truth).
    pub fn chaos(&self) -> &ChaosSchedule {
        &self.chaos
    }

    /// The infrastructure.
    pub fn infrastructure(&self) -> &Infrastructure {
        &self.infra
    }

    /// Generates the trace for `[start, end)`.
    pub fn generate(&self, start: Timestamp, end: Timestamp) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut normal = NormalSampler::new();
        let mut workload = WorkloadGenerator::new(self.workload, self.seed.wrapping_add(1));

        // Per-machine local jitter AR(1) states.
        let mut jitter: BTreeMap<u32, f64> = BTreeMap::new();
        // Per-measurement last emitted value (for SensorStuck holds).
        let mut last_value: BTreeMap<MeasurementId, f64> = BTreeMap::new();
        // Per-broken-measurement wander state (for CorrelationBreak).
        let mut wander: BTreeMap<MeasurementId, f64> = BTreeMap::new();

        let mut series: BTreeMap<MeasurementId, TimeSeries> = self
            .infra
            .machines()
            .iter()
            .flat_map(|m| m.measurement_ids())
            .map(|id| (id, TimeSeries::new()))
            .collect();

        // Chaos effects are gated on a non-empty schedule so the default
        // path stays bit-identical (no extra RNG draws, no history).
        let chaos_active = !self.chaos.is_empty();
        // Recent global loads, for ClockSkew lag lookups (newest last).
        let mut recent_loads: Vec<f64> = Vec::new();
        let interval_secs = self.interval.as_secs().max(1);

        for t in self.interval.ticks(start, end) {
            // Correlation-preserving load spikes multiply the workload.
            let mut spike_factor: f64 = self
                .faults
                .active_at(t)
                .filter_map(|e| match e.kind {
                    FaultKind::LoadSpike { factor } => Some(factor),
                    _ => None,
                })
                .product();
            if chaos_active {
                spike_factor *= self
                    .chaos
                    .active_at(t)
                    .filter_map(|e| match e.kind {
                        ChaosKind::OverloadBurst { factor } => Some(factor),
                        _ => None,
                    })
                    .product::<f64>();
            }
            workload.set_external_factor(spike_factor);
            let load = workload.next_load(t);
            if chaos_active {
                recent_loads.push(load);
                if recent_loads.len() > MAX_SKEW_HISTORY {
                    recent_loads.remove(0);
                }
            }

            for machine in self.infra.machines() {
                // Machine-local AR(1) jitter.
                let state = jitter.entry(machine.id.index()).or_insert(0.0);
                *state = machine.local_phi * *state + normal.sample(&mut rng) * machine.local_sigma;
                let mut share = machine.load_share;
                let mut extra_noise = 0.0;
                for e in self.faults.active_at(t) {
                    if let FaultKind::MachineDegradation {
                        machine: m,
                        share_factor,
                        extra_noise: en,
                    } = e.kind
                    {
                        if m == machine.id {
                            share *= share_factor;
                            extra_noise += en;
                        }
                    }
                }
                // Chaos: a skewed machine responds to the load from
                // `skew_ticks` intervals ago; a flapping machine samples
                // normally but stops reporting during its off phase.
                let mut machine_load = load;
                let mut reporting = true;
                if chaos_active {
                    for e in self.chaos.active_at(t) {
                        match e.kind {
                            ChaosKind::ClockSkew {
                                machine: m,
                                skew_ticks,
                            } if m == machine.id => {
                                let idx =
                                    recent_loads.len().saturating_sub(1 + skew_ticks as usize);
                                machine_load = recent_loads[idx];
                            }
                            ChaosKind::Flapping {
                                machine: m,
                                period_ticks,
                                duty_ticks,
                            } if m == machine.id && period_ticks > 0 => {
                                let ticks = (t.as_secs() - e.start.as_secs()) / interval_secs;
                                reporting = ticks % u64::from(period_ticks) < u64::from(duty_ticks);
                            }
                            _ => {}
                        }
                    }
                }
                let effective_load = (machine_load * share * (1.0 + *state)).max(0.0);

                for metric in &machine.metrics {
                    let id = MeasurementId::new(machine.id, metric.kind);
                    let mut value = metric.sample(effective_load, &mut rng, &mut normal);
                    if extra_noise > 0.0 {
                        value +=
                            normal.sample(&mut rng) * extra_noise * metric.model.output_scale();
                    }
                    // Measurement-targeted faults override the value.
                    for e in self.faults.active_at(t) {
                        match e.kind {
                            FaultKind::CorrelationBreak { target, level } if target == id => {
                                // A broken component flaps: its values
                                // jump erratically around `level`,
                                // decoupled from load — large cell-level
                                // jumps, like the paper's Group B anomaly.
                                let w = wander.entry(id).or_insert(0.0);
                                *w = 0.3 * *w + 0.6 * normal.sample(&mut rng);
                                value = (level * metric.model.output_scale() * (1.0 + *w)).abs();
                            }
                            FaultKind::SensorStuck { target } if target == id => {
                                value = last_value.get(&id).copied().unwrap_or(value);
                            }
                            _ => {}
                        }
                    }
                    // Chaos: concept drift morphs the response model
                    // toward `to`, linearly over the ramp.
                    if chaos_active {
                        for e in self.chaos.active_at(t) {
                            if let ChaosKind::DriftRewire {
                                target,
                                to,
                                ramp_secs,
                            } = e.kind
                            {
                                if target == id {
                                    let elapsed = t.as_secs() - e.start.as_secs();
                                    let alpha = if ramp_secs == 0 {
                                        1.0
                                    } else {
                                        (elapsed as f64 / ramp_secs as f64).min(1.0)
                                    };
                                    value += alpha
                                        * (to.response(effective_load)
                                            - metric.model.response(effective_load));
                                }
                            }
                        }
                    }
                    if !value.is_finite() {
                        value = 0.0;
                    }
                    last_value.insert(id, value);
                    if !reporting {
                        continue;
                    }
                    series
                        .get_mut(&id)
                        .expect("series pre-created for every measurement")
                        .push(t, value)
                        .expect("ticks are strictly increasing and values finite");
                }
            }
        }

        Trace {
            catalog: self.infra.catalog(),
            series,
            interval: self.interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use gridwatch_timeseries::{GroupId, MachineId, MetricKind};

    fn small_generator(faults: FaultSchedule, seed: u64) -> TraceGenerator {
        let infra = Infrastructure::standard_group(GroupId::A, 3, seed);
        TraceGenerator::new(infra, WorkloadConfig::default(), faults, seed)
    }

    #[test]
    fn generates_full_day_for_every_measurement() {
        let trace = small_generator(FaultSchedule::new(), 4)
            .generate(Timestamp::EPOCH, Timestamp::from_days(1));
        assert_eq!(trace.measurement_count(), 18);
        for id in trace.measurement_ids() {
            assert_eq!(trace.series(id).unwrap().len(), 240, "{id}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_generator(FaultSchedule::new(), 5)
            .generate(Timestamp::EPOCH, Timestamp::from_days(1));
        let b = small_generator(FaultSchedule::new(), 5)
            .generate(Timestamp::EPOCH, Timestamp::from_days(1));
        assert_eq!(a, b);
    }

    #[test]
    fn linear_pair_is_strongly_correlated() {
        let trace = small_generator(FaultSchedule::new(), 6)
            .generate(Timestamp::EPOCH, Timestamp::from_days(2));
        let m = MachineId::new(0);
        let a = MeasurementId::new(m, MetricKind::IfInOctetsRate);
        let b = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
        let pair = trace.pair(a, b).unwrap();
        let (xs, ys) = pair.columns();
        let r = gridwatch_timeseries::stats::pearson(&xs, &ys).unwrap();
        assert!(r > 0.95, "pearson {r}");
    }

    #[test]
    fn correlation_break_decouples_target() {
        let m = MachineId::new(0);
        let target = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
        let mut faults = FaultSchedule::new();
        faults.push(FaultEvent::new(
            FaultKind::CorrelationBreak {
                target,
                level: 0.05,
            },
            Timestamp::from_hours(6),
            Timestamp::from_hours(18),
        ));
        let trace = small_generator(faults, 7).generate(Timestamp::EPOCH, Timestamp::from_days(1));
        let a = MeasurementId::new(m, MetricKind::IfInOctetsRate);
        let pair = trace.pair(a, target).unwrap();
        let broken = pair.slice(Timestamp::from_hours(6), Timestamp::from_hours(18));
        let clean = pair.slice(Timestamp::from_hours(18), Timestamp::from_hours(24));
        let corr = |p: &gridwatch_timeseries::PairSeries| {
            let (xs, ys) = p.columns();
            gridwatch_timeseries::stats::pearson(&xs, &ys).unwrap_or(0.0)
        };
        let (r_broken, r_clean) = (corr(&broken), corr(&clean));
        // The decoupled window can show spurious drift correlation over a
        // short sample, but must clearly fall below the coupled window.
        assert!(r_clean > 0.9, "clean window correlated, pearson {r_clean}");
        assert!(
            r_broken < r_clean - 0.2,
            "broken window should decorrelate: broken {r_broken} vs clean {r_clean}"
        );
    }

    #[test]
    fn load_spike_preserves_correlation() {
        let mut faults = FaultSchedule::new();
        faults.push(FaultEvent::new(
            FaultKind::LoadSpike { factor: 3.0 },
            Timestamp::from_hours(10),
            Timestamp::from_hours(14),
        ));
        let trace = small_generator(faults, 8).generate(Timestamp::EPOCH, Timestamp::from_days(1));
        let m = MachineId::new(1);
        let a = MeasurementId::new(m, MetricKind::IfInOctetsRate);
        let b = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
        let pair = trace.pair(a, b).unwrap();
        let (xs, ys) = pair.columns();
        let r = gridwatch_timeseries::stats::pearson(&xs, &ys).unwrap();
        assert!(r > 0.95, "spiked pair stays correlated, pearson {r}");
        // And the spike really raised the values.
        let sa = trace.series(a).unwrap();
        let during = sa
            .slice(Timestamp::from_hours(11), Timestamp::from_hours(13))
            .mean()
            .unwrap();
        let before = sa
            .slice(Timestamp::from_hours(7), Timestamp::from_hours(9))
            .mean()
            .unwrap();
        assert!(during > before * 1.5, "spike {during} vs baseline {before}");
    }

    #[test]
    fn sensor_stuck_freezes_values() {
        let m = MachineId::new(2);
        let target = MeasurementId::new(m, MetricKind::CpuUtilization);
        let mut faults = FaultSchedule::new();
        faults.push(FaultEvent::new(
            FaultKind::SensorStuck { target },
            Timestamp::from_hours(5),
            Timestamp::from_hours(10),
        ));
        let trace = small_generator(faults, 9).generate(Timestamp::EPOCH, Timestamp::from_days(1));
        let s = trace.series(target).unwrap();
        let window = s.slice(Timestamp::from_hours(5), Timestamp::from_hours(10));
        let first = window.values()[0];
        assert!(window.values().iter().all(|&v| v == first));
    }

    #[test]
    fn pair_of_unknown_measurement_errors() {
        let trace = small_generator(FaultSchedule::new(), 10)
            .generate(Timestamp::EPOCH, Timestamp::from_hours(2));
        let ghost = MeasurementId::new(MachineId::new(99), MetricKind::CpuUtilization);
        let real = trace.measurement_ids().next().unwrap();
        assert!(trace.pair(real, ghost).is_err());
    }
}
