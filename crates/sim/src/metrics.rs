//! Metric response models: how each simulated measurement reacts to the
//! latent workload.
//!
//! The paper's Figure 2 identifies three correlation shapes among real
//! measurements: linear (in/out traffic on one machine), non-linear
//! (saturating utilization curves), and arbitrary (regime-dependent
//! clusters). One [`MetricModel`] variant produces each shape; two metrics
//! driven by the same load with different models exhibit exactly the
//! corresponding pairwise correlation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use gridwatch_timeseries::MetricKind;

use crate::NormalSampler;

/// The functional response of one metric to the instantaneous load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MetricModel {
    /// `value = scale · load + offset` — linear coupling (Figure 2(b)).
    Linear {
        /// Multiplier on the load.
        scale: f64,
        /// Additive offset (resting level).
        offset: f64,
    },
    /// `value = capacity · load / (load + half_load)` — a saturating
    /// utilization curve (Figure 2(d)).
    Saturating {
        /// Asymptotic maximum of the metric.
        capacity: f64,
        /// Load at which the metric reaches half capacity.
        half_load: f64,
    },
    /// Two linear regimes switched by a load threshold — the
    /// "arbitrary shapes" of Figure 2(c).
    RegimeSwitching {
        /// Scale in the low-load regime.
        low_scale: f64,
        /// Scale in the high-load regime.
        high_scale: f64,
        /// Load threshold separating the regimes.
        threshold: f64,
        /// Offset added in the high regime (creates disjoint clusters).
        high_offset: f64,
    },
    /// Load-independent noise around a mean — an uncorrelated metric.
    Independent {
        /// Mean level.
        mean: f64,
    },
}

impl MetricModel {
    /// The noise-free response to `load`.
    pub fn response(&self, load: f64) -> f64 {
        match *self {
            MetricModel::Linear { scale, offset } => scale * load + offset,
            MetricModel::Saturating {
                capacity,
                half_load,
            } => capacity * load / (load + half_load),
            MetricModel::RegimeSwitching {
                low_scale,
                high_scale,
                threshold,
                high_offset,
            } => {
                if load < threshold {
                    low_scale * load
                } else {
                    high_scale * load + high_offset
                }
            }
            MetricModel::Independent { mean } => mean,
        }
    }

    /// A plausible relative noise level for the model's output scale,
    /// used to set the sensor-noise stddev.
    pub fn output_scale(&self) -> f64 {
        match *self {
            MetricModel::Linear { scale, offset } => (scale + offset.abs()).max(1e-6),
            MetricModel::Saturating { capacity, .. } => capacity.max(1e-6),
            MetricModel::RegimeSwitching {
                low_scale,
                high_scale,
                high_offset,
                ..
            } => (low_scale.max(high_scale) + high_offset.abs()).max(1e-6),
            MetricModel::Independent { mean } => mean.abs().max(1e-6),
        }
    }
}

/// One metric attached to a machine: the metric kind, its response model,
/// and its relative sensor noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSpec {
    /// What the metric measures.
    pub kind: MetricKind,
    /// How it responds to load.
    pub model: MetricModel,
    /// Sensor noise stddev as a fraction of [`MetricModel::output_scale`].
    pub relative_noise: f64,
}

impl MetricSpec {
    /// Creates a spec with the given relative noise.
    pub fn new(kind: MetricKind, model: MetricModel, relative_noise: f64) -> Self {
        MetricSpec {
            kind,
            model,
            relative_noise,
        }
    }

    /// Samples the metric's value at the given effective load.
    ///
    /// Sensor noise scales mostly with the signal (plus a small floor),
    /// so lightly loaded periods are quiet in absolute terms — matching
    /// real rate counters, whose fluctuation grows with the rate.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        load: f64,
        rng: &mut R,
        normal: &mut NormalSampler,
    ) -> f64 {
        let clean = self.model.response(load);
        let stddev = self.relative_noise * (clean.abs() + 0.05 * self.model.output_scale());
        clean + normal.sample(rng) * stddev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_response() {
        let m = MetricModel::Linear {
            scale: 2.0,
            offset: 1.0,
        };
        assert_eq!(m.response(0.0), 1.0);
        assert_eq!(m.response(3.0), 7.0);
    }

    #[test]
    fn saturating_response_bounded_by_capacity() {
        let m = MetricModel::Saturating {
            capacity: 100.0,
            half_load: 0.5,
        };
        assert_eq!(m.response(0.5), 50.0);
        for load in [0.1, 1.0, 10.0, 1e6] {
            let v = m.response(load);
            assert!((0.0..100.0).contains(&v));
        }
        // Monotone increasing.
        assert!(m.response(2.0) > m.response(1.0));
    }

    #[test]
    fn regime_switching_is_discontinuous() {
        let m = MetricModel::RegimeSwitching {
            low_scale: 1.0,
            high_scale: 0.2,
            threshold: 0.5,
            high_offset: 10.0,
        };
        assert_eq!(m.response(0.4), 0.4);
        assert_eq!(m.response(0.6), 10.12);
    }

    #[test]
    fn independent_ignores_load() {
        let m = MetricModel::Independent { mean: 42.0 };
        assert_eq!(m.response(0.0), m.response(100.0));
    }

    #[test]
    fn sampling_adds_bounded_noise() {
        let spec = MetricSpec::new(
            MetricKind::CpuUtilization,
            MetricModel::Linear {
                scale: 100.0,
                offset: 0.0,
            },
            0.01,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut normal = NormalSampler::new();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| spec.sample(0.5, &mut rng, &mut normal))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn two_linear_metrics_are_linearly_correlated() {
        // The core claim behind Figure 2(b): same load, two linear models
        // -> near-perfect Pearson correlation.
        let a = MetricSpec::new(
            MetricKind::IfInOctetsRate,
            MetricModel::Linear {
                scale: 1e5,
                offset: 0.0,
            },
            0.005,
        );
        let b = MetricSpec::new(
            MetricKind::IfOutOctetsRate,
            MetricModel::Linear {
                scale: 2e5,
                offset: 1e4,
            },
            0.005,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut normal = NormalSampler::new();
        let loads: Vec<f64> = (0..500).map(|k| 0.2 + 0.6 * (k as f64 / 500.0)).collect();
        let xs: Vec<f64> = loads
            .iter()
            .map(|&l| a.sample(l, &mut rng, &mut normal))
            .collect();
        let ys: Vec<f64> = loads
            .iter()
            .map(|&l| b.sample(l, &mut rng, &mut normal))
            .collect();
        let r = gridwatch_timeseries::stats::pearson(&xs, &ys).unwrap();
        assert!(r > 0.99, "pearson {r}");
    }

    #[test]
    fn saturating_pair_is_nonlinear_but_monotone() {
        let lin = MetricModel::Linear {
            scale: 1.0,
            offset: 0.0,
        };
        let sat = MetricModel::Saturating {
            capacity: 1.0,
            half_load: 0.3,
        };
        let loads: Vec<f64> = (1..200).map(|k| k as f64 / 100.0).collect();
        let xs: Vec<f64> = loads.iter().map(|&l| lin.response(l)).collect();
        let ys: Vec<f64> = loads.iter().map(|&l| sat.response(l)).collect();
        let rho = gridwatch_timeseries::stats::spearman(&xs, &ys).unwrap();
        let r = gridwatch_timeseries::stats::pearson(&xs, &ys).unwrap();
        assert!(rho > 0.999, "monotone: spearman {rho}");
        assert!(r < 0.95, "but not linear: pearson {r}");
    }
}
