//! Canned scenarios matching the paper's experiments.
//!
//! The paper's calendar: monitoring data from May 29 to June 27 2008
//! (days 0–29 of our epoch, which falls on a Thursday as May 29 2008
//! did). Training sets start May 29; test sets start June 13 (day 15).

use gridwatch_timeseries::{GroupId, MachineId, MeasurementId, MetricKind, Timestamp};

use crate::fault::{FaultEvent, FaultKind, FaultSchedule};
use crate::infra::Infrastructure;
use crate::trace::{Trace, TraceGenerator};
use crate::workload::WorkloadConfig;

/// Day index of June 13 2008 (the first test day) relative to the May 29
/// epoch.
pub const TEST_DAY: u64 = 15;

/// Total days of monitoring data (May 29 – June 27).
pub const MONTH_DAYS: u64 = 30;

/// A generated scenario: the trace plus its ground-truth fault schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generated monitoring data.
    pub trace: Trace,
    /// The injected faults (ground truth).
    pub faults: FaultSchedule,
    /// The group simulated.
    pub group: GroupId,
    /// The measurement pair the experiment focuses on, when applicable.
    pub focus_pair: Option<(MeasurementId, MeasurementId)>,
}

/// The per-group focus pair used by the paper's Figure 12: Group A
/// watches `CurrentUtilization_PORT` vs `ifOutOctetsRate_PORT`-style
/// metrics, B a traffic in/out pair, and C a utilization/rate pair.
pub fn figure12_focus_pair(group: GroupId) -> (MetricKind, MetricKind) {
    match group {
        GroupId::A => (MetricKind::PortUtilization, MetricKind::IfOutOctetsRate),
        GroupId::B => (MetricKind::IfOutOctetsRate, MetricKind::IfInOctetsRate),
        GroupId::C => (MetricKind::PortUtilization, MetricKind::IfInOctetsRate),
    }
}

/// The fault window the paper reports for each group on the test day:
/// "the problems are found in the morning (Group A), or in the afternoon
/// (Group B and C)".
pub fn figure12_fault_window(group: GroupId) -> (Timestamp, Timestamp) {
    let day = Timestamp::from_days(TEST_DAY).as_secs();
    match group {
        GroupId::A => (
            Timestamp::from_secs(day + 8 * 3600),
            Timestamp::from_secs(day + 10 * 3600),
        ),
        GroupId::B | GroupId::C => (
            Timestamp::from_secs(day + 14 * 3600),
            Timestamp::from_secs(day + 16 * 3600),
        ),
    }
}

/// One month of data for a group with a correlation-breaking fault on the
/// test day (morning for A, afternoon for B/C, per Figure 12) plus a
/// correlation-preserving load spike earlier the same day (the
/// false-positive control).
pub fn group_fault_scenario(group: GroupId, machines: usize, seed: u64) -> Scenario {
    let infra = Infrastructure::standard_group(group, machines, seed);
    let (kind_a, kind_b) = figure12_focus_pair(group);
    let machine = MachineId::new(0);
    let target = MeasurementId::new(machine, kind_b);
    let partner = MeasurementId::new(machine, kind_a);

    let (fault_start, fault_end) = figure12_fault_window(group);
    let mut faults = FaultSchedule::new();
    faults.push(FaultEvent::new(
        FaultKind::CorrelationBreak {
            target,
            // The broken component flaps around mid-range, decoupled
            // from load: individual values stay in range, but the joint
            // trajectory makes large never-seen jumps.
            level: 0.5,
        },
        fault_start,
        fault_end,
    ));
    // A flash crowd in the early morning of the test day: must not
    // alarm. It fires at 4-5am, when the baseline load is low, so the
    // surged values stay inside the historically observed range —
    // "many measurements values increase but their correlations remain
    // unchanged" (the paper's false-positive scenario).
    let day = Timestamp::from_days(TEST_DAY).as_secs();
    let spike_start = Timestamp::from_secs(day + 4 * 3600);
    let spike_end = Timestamp::from_secs(day + 5 * 3600);
    faults.push(FaultEvent::new(
        FaultKind::LoadSpike { factor: 1.8 },
        spike_start,
        spike_end,
    ));

    let generator = TraceGenerator::new(infra, WorkloadConfig::default(), faults.clone(), seed);
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(MONTH_DAYS));
    Scenario {
        trace,
        faults,
        group,
        focus_pair: Some((partner, target)),
    }
}

/// One month of data with a machine-wide degradation across the test
/// period — the localization target of Figure 14. The degraded machine is
/// machine 0.
pub fn localization_scenario(group: GroupId, machines: usize, seed: u64) -> Scenario {
    let infra = Infrastructure::standard_group(group, machines, seed);
    let degraded = MachineId::new(0);
    let mut faults = FaultSchedule::new();
    faults.push(FaultEvent::new(
        FaultKind::MachineDegradation {
            machine: degraded,
            share_factor: 0.25,
            extra_noise: 0.20,
        },
        Timestamp::from_days(TEST_DAY),
        Timestamp::from_days(TEST_DAY + 1),
    ));
    let generator = TraceGenerator::new(infra, WorkloadConfig::default(), faults.clone(), seed);
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(MONTH_DAYS));
    Scenario {
        trace,
        faults,
        group,
        focus_pair: None,
    }
}

/// A clean (fault-free) month for a group — used by the offline/adaptive
/// sweep (Figure 13) and the periodic-pattern experiments (Figures 15
/// and 16).
pub fn clean_scenario(group: GroupId, machines: usize, seed: u64) -> Scenario {
    let infra = Infrastructure::standard_group(group, machines, seed);
    let generator =
        TraceGenerator::new(infra, WorkloadConfig::default(), FaultSchedule::new(), seed);
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(MONTH_DAYS));
    Scenario {
        trace,
        faults: FaultSchedule::new(),
        group,
        focus_pair: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_matches_paper() {
        // May 29 2008 was a Thursday; June 13 (day 15) was a Friday.
        assert_eq!(
            Timestamp::from_days(0).weekday(),
            gridwatch_timeseries::Weekday::Thursday
        );
        assert_eq!(
            Timestamp::from_days(TEST_DAY).weekday(),
            gridwatch_timeseries::Weekday::Friday
        );
    }

    #[test]
    fn group_a_fault_is_morning_b_c_afternoon() {
        let (s, e) = figure12_fault_window(GroupId::A);
        assert_eq!(s.hour().get(), 8);
        assert_eq!(e.hour().get(), 10);
        assert_eq!(s.day_index(), TEST_DAY);
        for g in [GroupId::B, GroupId::C] {
            let (s, _) = figure12_fault_window(g);
            assert!(s.hour().get() >= 12, "afternoon fault for {g}");
        }
    }

    #[test]
    fn group_fault_scenario_has_truth_and_control() {
        let s = group_fault_scenario(GroupId::B, 2, 3);
        assert_eq!(s.faults.events().len(), 2);
        assert_eq!(s.faults.truth_windows().len(), 1, "load spike is not truth");
        let (a, b) = s.focus_pair.unwrap();
        assert!(s.trace.series(a).is_some());
        assert!(s.trace.series(b).is_some());
        // Trace covers the whole month.
        let series = s.trace.series(a).unwrap();
        assert_eq!(series.len() as u64, MONTH_DAYS * 240);
    }

    #[test]
    fn localization_scenario_targets_machine_zero() {
        let s = localization_scenario(GroupId::A, 3, 5);
        let machines: Vec<_> = s
            .faults
            .events()
            .iter()
            .filter_map(|e| e.kind.machine())
            .collect();
        assert_eq!(machines, vec![MachineId::new(0)]);
    }

    #[test]
    fn clean_scenario_has_no_faults() {
        let s = clean_scenario(GroupId::C, 2, 8);
        assert!(s.faults.is_empty());
    }
}
