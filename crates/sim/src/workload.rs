//! The latent workload process driving every metric in the simulated
//! infrastructure.
//!
//! The paper attributes measurement correlations to shared outside
//! factors: "some outside factors, such as work loads and number of user
//! requests, may affect them simultaneously", and observes in Figures 15
//! and 16 that fitness varies with peak hours and weekends. The workload
//! model therefore combines:
//!
//! * a smooth **diurnal** curve peaking in the afternoon;
//! * a **weekly** factor damping weekends;
//! * occasional **bursts** (flash crowds) with exponential decay — the
//!   correlation-*preserving* events that must not alarm;
//! * **AR(1) noise** for short-term fluctuation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use gridwatch_timeseries::Timestamp;

use crate::NormalSampler;

/// Parameters of the workload process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Baseline load level (night-time floor), in `[0, 1]`.
    pub base: f64,
    /// Amplitude of the diurnal bump added on top of `base`.
    pub diurnal_amplitude: f64,
    /// Hour of day (fractional) at which load peaks.
    pub peak_hour: f64,
    /// Multiplier applied on Saturdays and Sundays.
    pub weekend_factor: f64,
    /// AR(1) coefficient of the noise process, in `[0, 1)`.
    pub noise_phi: f64,
    /// Standard deviation of the AR(1) innovations.
    pub noise_sigma: f64,
    /// Expected number of bursts per day.
    pub bursts_per_day: f64,
    /// Peak extra load of a burst (relative units added to the load).
    pub burst_magnitude: f64,
    /// Burst decay time constant, in seconds.
    pub burst_decay_secs: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            base: 0.25,
            diurnal_amplitude: 0.65,
            peak_hour: 14.0,
            weekend_factor: 0.55,
            noise_phi: 0.9,
            noise_sigma: 0.02,
            bursts_per_day: 2.5,
            burst_magnitude: 0.45,
            burst_decay_secs: 1800.0,
        }
    }
}

impl WorkloadConfig {
    /// The deterministic (noise- and burst-free) load level at `t`: the
    /// diurnal curve damped on weekends. Always positive.
    ///
    /// The weekend factor damps only the diurnal *bump*, not the idle
    /// floor: real systems idle at similar levels every night, while the
    /// business-hours surge shrinks on weekends.
    pub fn seasonal_level(&self, t: Timestamp) -> f64 {
        let hour = t.day_fraction() * 24.0;
        // Smooth bump centred on peak_hour: raised cosine over the day.
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let bump = 0.5 * (1.0 + phase.cos());
        // Exponent 1.5: sharp enough for a clear peak, flat enough that
        // the system dwells at intermediate load levels (where weekend
        // days also live) long enough for a one-day model to learn them.
        let shaped = bump * bump.sqrt();
        let weekday_scale = if t.is_weekend() {
            self.weekend_factor
        } else {
            1.0
        };
        self.base + self.diurnal_amplitude * shaped * weekday_scale
    }
}

/// Stateful, seeded generator of the workload value at successive sample
/// times.
///
/// # Example
///
/// ```
/// use gridwatch_sim::{WorkloadConfig, WorkloadGenerator};
/// use gridwatch_timeseries::{SampleInterval, Timestamp};
///
/// let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 42);
/// let ticks = SampleInterval::SIX_MINUTES.ticks(Timestamp::EPOCH, Timestamp::from_days(1));
/// let loads: Vec<f64> = ticks.map(|t| gen.next_load(t)).collect();
/// assert_eq!(loads.len(), 240);
/// assert!(loads.iter().all(|&l| l > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    normal: NormalSampler,
    ar_state: f64,
    /// Active bursts as `(start, magnitude)`.
    bursts: Vec<(Timestamp, f64)>,
    last_tick: Option<Timestamp>,
    /// Extra multiplicative factor imposed externally (fault injection of
    /// correlation-preserving load spikes).
    external_factor: f64,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        WorkloadGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            normal: NormalSampler::new(),
            ar_state: 0.0,
            bursts: Vec::new(),
            last_tick: None,
            external_factor: 1.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Sets the external load multiplier (used by
    /// [`crate::FaultKind::LoadSpike`] injection; 1.0 = no spike).
    pub fn set_external_factor(&mut self, factor: f64) {
        self.external_factor = factor.max(0.0);
    }

    /// Advances to sample time `t` and returns the load value.
    ///
    /// Calls must use non-decreasing timestamps; the AR(1) and burst
    /// states evolve per call.
    pub fn next_load(&mut self, t: Timestamp) -> f64 {
        // Spawn bursts with per-interval probability matched to the
        // configured daily rate.
        let dt = match self.last_tick {
            Some(prev) => t.saturating_secs_since(prev) as f64,
            None => 0.0,
        };
        self.last_tick = Some(t);
        if dt > 0.0 {
            // Flash crowds cluster at busy hours: the arrival rate scales
            // with the square of the relative seasonal level, so peak
            // hours are genuinely harder to predict (the paper's
            // Figures 15/16 pattern) while nights and weekends stay calm.
            let seasonal = self.config.seasonal_level(t);
            let busyness = (seasonal / 0.5).powi(2);
            let p_burst = (self.config.bursts_per_day * busyness * dt / 86_400.0).min(1.0);
            if self.rng.random::<f64>() < p_burst {
                let magnitude = self.config.burst_magnitude * (0.5 + self.rng.random::<f64>());
                self.bursts.push((t, magnitude));
            }
        }
        // Decay and sum active bursts; retire the negligible ones.
        let decay = self.config.burst_decay_secs;
        let mut burst_load = 0.0;
        self.bursts.retain(|&(start, magnitude)| {
            let age = t.saturating_secs_since(start) as f64;
            let contribution = magnitude * (-age / decay).exp();
            burst_load += contribution;
            contribution > 1e-4
        });
        // AR(1) noise, applied *multiplicatively*: request-driven
        // fluctuation scales with the request rate, so peak hours are
        // noisier in absolute terms than quiet nights — the reason the
        // paper's fitness dips at peak hours (Figures 15 and 16).
        let innovation = self.normal.sample(&mut self.rng) * self.config.noise_sigma;
        self.ar_state = self.config.noise_phi * self.ar_state + innovation;

        let seasonal = self.config.seasonal_level(t);
        let level = seasonal * (1.0 + self.ar_state + burst_load);
        (level * self.external_factor).max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::SampleInterval;

    fn day_loads(seed: u64, day: u64) -> Vec<f64> {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), seed);
        SampleInterval::SIX_MINUTES
            .ticks(Timestamp::from_days(day), Timestamp::from_days(day + 1))
            .map(|t| g.next_load(t))
            .collect()
    }

    #[test]
    fn load_is_always_positive() {
        for seed in 0..5 {
            assert!(day_loads(seed, 0).iter().all(|&l| l > 0.0));
        }
    }

    #[test]
    fn peak_hours_exceed_night() {
        let cfg = WorkloadConfig::default();
        // Deterministic seasonal comparison (no noise).
        let night = cfg.seasonal_level(Timestamp::from_hours(3));
        let peak = cfg.seasonal_level(Timestamp::from_hours(14));
        assert!(peak > night * 1.5, "peak {peak} vs night {night}");
    }

    #[test]
    fn weekends_are_lighter_at_peak_but_share_the_night_floor() {
        let cfg = WorkloadConfig::default();
        // Day 1 (Friday) vs day 2 (Saturday) at the same peak hour.
        let friday = cfg.seasonal_level(Timestamp::from_secs(86_400 + 14 * 3600));
        let saturday = cfg.seasonal_level(Timestamp::from_secs(2 * 86_400 + 14 * 3600));
        assert!(saturday < friday);
        // Only the bump shrinks: (sat - base) / (fri - base) = factor.
        let ratio = (saturday - cfg.base) / (friday - cfg.base);
        assert!((ratio - cfg.weekend_factor).abs() < 1e-9);
        // Deep night: both days idle at the same floor.
        let friday_night = cfg.seasonal_level(Timestamp::from_secs(86_400 + 2 * 3600));
        let saturday_night = cfg.seasonal_level(Timestamp::from_secs(2 * 86_400 + 2 * 3600));
        assert!((friday_night - saturday_night).abs() / friday_night < 0.05);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(day_loads(9, 0), day_loads(9, 0));
        assert_ne!(day_loads(9, 0), day_loads(10, 0));
    }

    #[test]
    fn external_factor_scales_load() {
        let mut a = WorkloadGenerator::new(WorkloadConfig::default(), 3);
        let mut b = WorkloadGenerator::new(WorkloadConfig::default(), 3);
        b.set_external_factor(3.0);
        let t = Timestamp::from_hours(12);
        let la = a.next_load(t);
        let lb = b.next_load(t);
        assert!((lb / la - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_decay_away() {
        let cfg = WorkloadConfig {
            bursts_per_day: 0.0,
            noise_sigma: 0.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 0);
        // Manually inject a burst by observing the internal behaviour:
        // with rate 0 and no noise, the load equals the seasonal level.
        let t = Timestamp::from_hours(10);
        let load = g.next_load(t);
        assert!((load - cfg.seasonal_level(t)).abs() < 1e-9);
    }
}
