//! Chaos regimes: hostile-conditions scenario generation with typed
//! ground truth.
//!
//! The base [`fault`](crate::fault) taxonomy covers clean point faults;
//! production systems also *drift*. Workloads are non-stationary, clocks
//! skew, sources flap, and load bursts overrun queues — conditions that
//! stress the detector's assumptions rather than just its thresholds.
//! This module scripts those conditions as [`ChaosEvent`]s composed on
//! top of the fault schedule, each carrying the same exact half-open
//! ground-truth window so the evaluation can score detection latency,
//! precision/recall, and false-rebuild rate per regime.
//!
//! Ground-truth semantics per kind:
//!
//! * [`ChaosKind::DriftRewire`] breaks the learned correlation
//!   *gradually* — it must eventually alarm **and** trigger a model
//!   rebuild (the paper's adaptive-modeling case);
//! * [`ChaosKind::ClockSkew`], [`ChaosKind::Flapping`], and
//!   [`ChaosKind::OverloadBurst`] preserve correlations — they must
//!   **not** alarm and must **not** trigger rebuilds (robustness
//!   controls);
//! * cascades reuse [`FaultKind`](crate::fault::FaultKind) events
//!   staggered across machines and inherit their alarm semantics.

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{GroupId, MachineId, MeasurementId, MetricKind, Timestamp};

use crate::fault::{FaultEvent, FaultKind, FaultSchedule};
use crate::infra::Infrastructure;
use crate::metrics::MetricModel;
use crate::scenario::{MONTH_DAYS, TEST_DAY};
use crate::trace::{Trace, TraceGenerator};
use crate::workload::WorkloadConfig;

/// The kind of injected chaos condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChaosKind {
    /// Concept drift: the target measurement's response model morphs
    /// into `to` over `ramp_secs` (0 = sudden), permanently rewiring
    /// its correlations. The detector should alarm *and* rebuild.
    DriftRewire {
        /// The measurement whose response model drifts.
        target: MeasurementId,
        /// The response model the measurement drifts toward.
        to: MetricModel,
        /// Seconds over which the drift ramps from 0 to 100% (0 for a
        /// sudden rewire).
        ramp_secs: u64,
    },
    /// The machine's sampling clock lags: its metrics respond to the
    /// global load from `skew_ticks` sampling intervals ago.
    /// Correlations within the machine persist; cross-machine pairs
    /// blur slightly but stay inside the trained grid.
    ClockSkew {
        /// The machine whose clock lags.
        machine: MachineId,
        /// How many sampling intervals the machine lags behind.
        skew_ticks: u32,
    },
    /// The machine's monitoring agent flaps: it reports for
    /// `duty_ticks` out of every `period_ticks` sampling intervals and
    /// goes silent in between, leaving gaps in its series.
    Flapping {
        /// The machine whose agent flaps.
        machine: MachineId,
        /// Full on/off cycle length, in sampling intervals.
        period_ticks: u32,
        /// Intervals per cycle during which the agent reports.
        duty_ticks: u32,
    },
    /// A correlation-preserving overload burst: the global workload
    /// multiplies by `factor`, stressing ingest queues downstream
    /// without breaking any pairwise correlation.
    OverloadBurst {
        /// Multiplier on the global workload during the window.
        factor: f64,
    },
}

impl ChaosKind {
    /// Whether this condition should raise an alarm (breaks the learned
    /// correlation structure). Only drift rewires do; the rest are
    /// robustness controls that must stay silent.
    pub fn should_alarm(&self) -> bool {
        matches!(self, ChaosKind::DriftRewire { .. })
    }

    /// Whether this condition should trigger a model rebuild (the
    /// correlation change is permanent, not a transient fault).
    pub fn expects_rebuild(&self) -> bool {
        matches!(self, ChaosKind::DriftRewire { .. })
    }

    /// The machine this condition localizes to, if any.
    pub fn machine(&self) -> Option<MachineId> {
        match self {
            ChaosKind::DriftRewire { target, .. } => Some(target.machine()),
            ChaosKind::ClockSkew { machine, .. } => Some(*machine),
            ChaosKind::Flapping { machine, .. } => Some(*machine),
            ChaosKind::OverloadBurst { .. } => None,
        }
    }
}

/// One chaos condition: a kind plus its half-open active window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// What condition holds.
    pub kind: ChaosKind,
    /// Start of the condition (inclusive).
    pub start: Timestamp,
    /// End of the condition (exclusive).
    pub end: Timestamp,
}

impl ChaosEvent {
    /// Creates a chaos event.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(kind: ChaosKind, start: Timestamp, end: Timestamp) -> Self {
        assert!(start < end, "chaos window must be non-empty");
        ChaosEvent { kind, start, end }
    }

    /// Whether the condition is active at `t`.
    pub fn is_active_at(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

/// A scripted schedule of chaos conditions — ground truth for the
/// hostile-conditions evaluation, composed with a [`FaultSchedule`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Adds an event.
    pub fn push(&mut self, event: ChaosEvent) {
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events active at `t`.
    pub fn active_at(&self, t: Timestamp) -> impl Iterator<Item = &ChaosEvent> + '_ {
        self.events.iter().filter(move |e| e.is_active_at(t))
    }

    /// Whether any alarm-worthy condition is active at `t`.
    pub fn truth_label(&self, t: Timestamp) -> bool {
        self.active_at(t).any(|e| e.kind.should_alarm())
    }

    /// The alarm-worthy windows, for scoring.
    pub fn truth_windows(&self) -> Vec<(Timestamp, Timestamp)> {
        self.events
            .iter()
            .filter(|e| e.kind.should_alarm())
            .map(|e| (e.start, e.end))
            .collect()
    }

    /// The windows during (or after) which a model rebuild is the
    /// correct response — rebuilds observed wholly outside these count
    /// as false rebuilds.
    pub fn rebuild_windows(&self) -> Vec<(Timestamp, Timestamp)> {
        self.events
            .iter()
            .filter(|e| e.kind.expects_rebuild())
            .map(|e| (e.start, e.end))
            .collect()
    }
}

impl FromIterator<ChaosEvent> for ChaosSchedule {
    fn from_iter<T: IntoIterator<Item = ChaosEvent>>(iter: T) -> Self {
        ChaosSchedule {
            events: iter.into_iter().collect(),
        }
    }
}

/// The named chaos regimes the evaluation matrix runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosRegime {
    /// Gradual concept drift: one measurement's response model rewires
    /// over a few hours and stays rewired.
    Drift,
    /// One machine's clock lags the global load by a couple of ticks.
    Skew,
    /// One machine's monitoring agent flaps on and off.
    Flapping,
    /// A correlation-preserving global overload burst.
    Overload,
    /// A correlated multi-machine fault cascade (staggered point
    /// faults across three machines).
    Cascade,
}

impl ChaosRegime {
    /// Every regime, in evaluation order.
    pub const ALL: [ChaosRegime; 5] = [
        ChaosRegime::Drift,
        ChaosRegime::Skew,
        ChaosRegime::Flapping,
        ChaosRegime::Overload,
        ChaosRegime::Cascade,
    ];

    /// The regime's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosRegime::Drift => "drift",
            ChaosRegime::Skew => "skew",
            ChaosRegime::Flapping => "flapping",
            ChaosRegime::Overload => "overload",
            ChaosRegime::Cascade => "cascade",
        }
    }
}

impl std::fmt::Display for ChaosRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ChaosRegime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "drift" => Ok(ChaosRegime::Drift),
            "skew" => Ok(ChaosRegime::Skew),
            "flapping" => Ok(ChaosRegime::Flapping),
            "overload" => Ok(ChaosRegime::Overload),
            "cascade" => Ok(ChaosRegime::Cascade),
            other => Err(format!(
                "unknown chaos regime {other:?} \
                 (expected drift, skew, flapping, overload, or cascade)"
            )),
        }
    }
}

/// A generated chaos scenario: the trace plus both ground-truth layers.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The generated monitoring data (chaos applied).
    pub trace: Trace,
    /// Point faults injected alongside (cascade regimes use these).
    pub faults: FaultSchedule,
    /// The chaos conditions injected.
    pub chaos: ChaosSchedule,
    /// Which regime this scenario realizes.
    pub regime: ChaosRegime,
    /// The group simulated.
    pub group: GroupId,
}

impl ChaosScenario {
    /// Whether an alarm is expected at `t` under either truth layer.
    pub fn truth_label(&self, t: Timestamp) -> bool {
        self.faults.truth_label(t) || self.chaos.truth_label(t)
    }

    /// All alarm-worthy windows from both truth layers, sorted by
    /// start.
    pub fn truth_windows(&self) -> Vec<(Timestamp, Timestamp)> {
        let mut windows = self.faults.truth_windows();
        windows.extend(self.chaos.truth_windows());
        windows.sort();
        windows
    }

    /// The combined ground truth as one [`FaultSchedule`]-shaped
    /// overlay, for scoring with the existing evaluation metrics: each
    /// alarm-worthy chaos window is represented as a synthetic
    /// correlation-breaking fault over the same window.
    pub fn truth_schedule(&self) -> FaultSchedule {
        let mut schedule = self.faults.clone();
        for e in self.chaos.events() {
            if let ChaosKind::DriftRewire { target, .. } = e.kind {
                schedule.push(FaultEvent::new(
                    FaultKind::CorrelationBreak { target, level: 0.0 },
                    e.start,
                    e.end,
                ));
            }
        }
        schedule
    }
}

/// Seconds in an hour, for window arithmetic below.
const HOUR: u64 = 3600;

/// Builds the canonical one-month scenario for a regime: clean training
/// weeks, then the regime's hostile conditions starting on the paper's
/// test day. Machine indices wrap into `machines`, so small
/// infrastructures still get every regime.
pub fn chaos_scenario(regime: ChaosRegime, machines: usize, seed: u64) -> ChaosScenario {
    let group = GroupId::A;
    let infra = Infrastructure::standard_group(group, machines, seed);
    let day = Timestamp::from_days(TEST_DAY).as_secs();
    let machine = |k: usize| MachineId::new((k % machines.max(1)) as u32);

    let mut faults = FaultSchedule::new();
    let mut chaos = ChaosSchedule::new();
    match regime {
        ChaosRegime::Drift => {
            // Machine 0's out-traffic rate gradually rewires: the linear
            // coupling to load flattens and gains a large offset, so the
            // (in, out) joint trajectory migrates out of the trained
            // grid and stays there. Two hours of ramp, permanent after.
            let target = MeasurementId::new(machine(0), MetricKind::IfOutOctetsRate);
            let base = drifted_model(&infra, target);
            chaos.push(ChaosEvent::new(
                ChaosKind::DriftRewire {
                    target,
                    to: base,
                    ramp_secs: 2 * HOUR,
                },
                Timestamp::from_secs(day + 2 * HOUR),
                Timestamp::from_days(MONTH_DAYS),
            ));
        }
        ChaosRegime::Skew => {
            chaos.push(ChaosEvent::new(
                ChaosKind::ClockSkew {
                    machine: machine(1),
                    skew_ticks: 2,
                },
                Timestamp::from_secs(day + 2 * HOUR),
                Timestamp::from_secs(day + 20 * HOUR),
            ));
        }
        ChaosRegime::Flapping => {
            chaos.push(ChaosEvent::new(
                ChaosKind::Flapping {
                    machine: machine(2),
                    period_ticks: 10,
                    duty_ticks: 5,
                },
                Timestamp::from_secs(day + 2 * HOUR),
                Timestamp::from_secs(day + 20 * HOUR),
            ));
        }
        ChaosRegime::Overload => {
            chaos.push(ChaosEvent::new(
                ChaosKind::OverloadBurst { factor: 2.5 },
                Timestamp::from_secs(day + 4 * HOUR),
                Timestamp::from_secs(day + 8 * HOUR),
            ));
        }
        ChaosRegime::Cascade => {
            // Staggered correlated failures marching across machines,
            // overlapping pairwise: break, degradation, stuck sensor.
            faults.push(FaultEvent::new(
                FaultKind::CorrelationBreak {
                    target: MeasurementId::new(machine(0), MetricKind::IfOutOctetsRate),
                    level: 0.5,
                },
                Timestamp::from_secs(day + 8 * HOUR),
                Timestamp::from_secs(day + 10 * HOUR),
            ));
            faults.push(FaultEvent::new(
                FaultKind::MachineDegradation {
                    machine: machine(1),
                    share_factor: 0.25,
                    extra_noise: 0.20,
                },
                Timestamp::from_secs(day + 9 * HOUR),
                Timestamp::from_secs(day + 11 * HOUR),
            ));
            faults.push(FaultEvent::new(
                FaultKind::SensorStuck {
                    target: MeasurementId::new(machine(2), MetricKind::CpuUtilization),
                },
                Timestamp::from_secs(day + 10 * HOUR),
                Timestamp::from_secs(day + 12 * HOUR),
            ));
        }
    }

    let generator = TraceGenerator::new(infra, WorkloadConfig::default(), faults.clone(), seed)
        .with_chaos(chaos.clone());
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(MONTH_DAYS));
    ChaosScenario {
        trace,
        faults,
        chaos,
        regime,
        group,
    }
}

/// The post-drift response model for `target`: an inverted, *steeper*
/// version of its trained model. The inversion anti-correlates the
/// measurement with its in-traffic partner; the amplified slope makes
/// every tick-to-tick load change move the value several trained grid
/// cells at once (and beyond the trained range at the extremes), so a
/// frozen transition grid scores the rewired trajectory as sustained
/// outliers rather than silently following it — that is what makes the
/// drift *detectable*. A model refit on post-drift history spans the
/// new range and scores it smoothly again, which is what makes the
/// rebuild *recover* fitness.
fn drifted_model(infra: &Infrastructure, target: MeasurementId) -> MetricModel {
    let scale = infra
        .machines()
        .iter()
        .find(|m| m.id == target.machine())
        .and_then(|m| m.metrics.iter().find(|s| s.kind == target.metric()))
        .map(|s| s.model.output_scale())
        .unwrap_or(1.0);
    MetricModel::Linear {
        scale: -4.0 * scale,
        offset: 3.5 * scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::stats::pearson;

    #[test]
    fn regime_names_round_trip() {
        for regime in ChaosRegime::ALL {
            assert_eq!(regime.name().parse::<ChaosRegime>().unwrap(), regime);
        }
        assert!("mayhem".parse::<ChaosRegime>().is_err());
    }

    #[test]
    fn truth_semantics_per_kind() {
        let target = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
        let drift = ChaosKind::DriftRewire {
            target,
            to: MetricModel::Independent { mean: 1.0 },
            ramp_secs: 0,
        };
        assert!(drift.should_alarm());
        assert!(drift.expects_rebuild());
        for silent in [
            ChaosKind::ClockSkew {
                machine: MachineId::new(1),
                skew_ticks: 2,
            },
            ChaosKind::Flapping {
                machine: MachineId::new(1),
                period_ticks: 10,
                duty_ticks: 5,
            },
            ChaosKind::OverloadBurst { factor: 2.0 },
        ] {
            assert!(!silent.should_alarm(), "{silent:?}");
            assert!(!silent.expects_rebuild(), "{silent:?}");
        }
        assert_eq!(drift.machine(), Some(MachineId::new(0)));
        assert_eq!(ChaosKind::OverloadBurst { factor: 2.0 }.machine(), None);
    }

    #[test]
    fn drift_scenario_has_truth_and_rebuild_windows() {
        let s = chaos_scenario(ChaosRegime::Drift, 3, 11);
        assert_eq!(s.chaos.truth_windows().len(), 1);
        assert_eq!(s.chaos.rebuild_windows().len(), 1);
        assert!(s.truth_label(Timestamp::from_secs(
            Timestamp::from_days(TEST_DAY).as_secs() + 6 * HOUR
        )));
        assert_eq!(s.truth_schedule().truth_windows().len(), 1);
    }

    #[test]
    fn control_regimes_have_no_truth() {
        for regime in [
            ChaosRegime::Skew,
            ChaosRegime::Flapping,
            ChaosRegime::Overload,
        ] {
            let s = chaos_scenario(regime, 3, 12);
            assert!(s.truth_windows().is_empty(), "{regime}");
            assert!(s.chaos.rebuild_windows().is_empty(), "{regime}");
        }
    }

    #[test]
    fn cascade_marches_across_machines() {
        let s = chaos_scenario(ChaosRegime::Cascade, 3, 13);
        let machines: Vec<_> = s
            .faults
            .events()
            .iter()
            .filter_map(|e| e.kind.machine())
            .collect();
        assert_eq!(machines.len(), 3);
        assert_eq!(s.truth_windows().len(), 3);
        // Distinct machines, staggered overlapping windows.
        let mut unique = machines.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn drift_decorrelates_the_target_pair_after_onset() {
        let s = chaos_scenario(ChaosRegime::Drift, 3, 14);
        let m = MachineId::new(0);
        let a = MeasurementId::new(m, MetricKind::IfInOctetsRate);
        let b = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
        let pair = s.trace.pair(a, b).unwrap();
        let corr = |p: &gridwatch_timeseries::PairSeries| {
            let (xs, ys) = p.columns();
            pearson(&xs, &ys).unwrap_or(0.0)
        };
        let clean = corr(&pair.slice(Timestamp::EPOCH, Timestamp::from_days(TEST_DAY)));
        let drifted = corr(&pair.slice(
            Timestamp::from_days(TEST_DAY + 1),
            Timestamp::from_days(MONTH_DAYS),
        ));
        assert!(clean > 0.9, "training window correlated, pearson {clean}");
        assert!(
            drifted < 0.0,
            "post-drift window should anti-correlate: {drifted} vs clean {clean}"
        );
    }

    #[test]
    fn flapping_machine_has_gaps() {
        let s = chaos_scenario(ChaosRegime::Flapping, 3, 15);
        let flapped = MeasurementId::new(MachineId::new(2), MetricKind::CpuUtilization);
        let steady = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
        let flapped_len = s.trace.series(flapped).unwrap().len();
        let steady_len = s.trace.series(steady).unwrap().len();
        assert!(
            flapped_len < steady_len,
            "flapping machine reports fewer samples: {flapped_len} vs {steady_len}"
        );
        // Roughly half the samples in the 18h flap window are dropped.
        let expected_missing = 18 * 10 / 2;
        let missing = steady_len - flapped_len;
        assert!(
            (expected_missing - 20..=expected_missing + 20).contains(&missing),
            "missing {missing}, expected about {expected_missing}"
        );
    }

    #[test]
    fn overload_raises_values_but_preserves_correlation() {
        let s = chaos_scenario(ChaosRegime::Overload, 3, 16);
        let m = MachineId::new(1);
        let a = MeasurementId::new(m, MetricKind::IfInOctetsRate);
        let b = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
        let day = Timestamp::from_days(TEST_DAY).as_secs();
        let sa = s.trace.series(a).unwrap();
        let during = sa
            .slice(
                Timestamp::from_secs(day + 5 * HOUR),
                Timestamp::from_secs(day + 7 * HOUR),
            )
            .mean()
            .unwrap();
        let before = sa
            .slice(
                Timestamp::from_secs(day + HOUR),
                Timestamp::from_secs(day + 3 * HOUR),
            )
            .mean()
            .unwrap();
        assert!(during > before * 1.5, "burst {during} vs baseline {before}");
        let pair = s.trace.pair(a, b).unwrap();
        let (xs, ys) = pair.columns();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r > 0.95, "burst keeps the pair correlated, pearson {r}");
    }

    #[test]
    fn empty_chaos_schedule_is_bit_identical_to_baseline() {
        let infra = Infrastructure::standard_group(GroupId::A, 2, 21);
        let base = TraceGenerator::new(
            infra.clone(),
            WorkloadConfig::default(),
            FaultSchedule::new(),
            21,
        );
        let with_empty = base.clone().with_chaos(ChaosSchedule::new());
        let a = base.generate(Timestamp::EPOCH, Timestamp::from_days(2));
        let b = with_empty.generate(Timestamp::EPOCH, Timestamp::from_days(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        ChaosEvent::new(
            ChaosKind::OverloadBurst { factor: 2.0 },
            Timestamp::from_hours(1),
            Timestamp::from_hours(1),
        );
    }
}
