//! The simulated infrastructure: machines and their metric suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{Catalog, GroupId, MachineId, MeasurementId, MetricKind};

use crate::metrics::{MetricModel, MetricSpec};

/// One machine: its load share and its monitored metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// The machine's identity within the group.
    pub id: MachineId,
    /// The fraction of the global workload this machine receives
    /// (heterogeneous load balancing).
    pub load_share: f64,
    /// AR(1) coefficient of the machine-local jitter shared by all this
    /// machine's metrics (creates same-machine correlation beyond the
    /// global load).
    pub local_phi: f64,
    /// Stddev of the machine-local jitter innovations.
    pub local_sigma: f64,
    /// The metrics monitored on this machine.
    pub metrics: Vec<MetricSpec>,
}

impl MachineSpec {
    /// Measurement ids of all this machine's metrics.
    pub fn measurement_ids(&self) -> impl Iterator<Item = MeasurementId> + '_ {
        self.metrics
            .iter()
            .map(move |m| MeasurementId::new(self.id, m.kind))
    }
}

/// A group's infrastructure: a set of machines under a shared workload.
///
/// # Example
///
/// ```
/// use gridwatch_sim::Infrastructure;
/// use gridwatch_timeseries::GroupId;
///
/// let infra = Infrastructure::standard_group(GroupId::B, 5, 99);
/// assert_eq!(infra.machines().len(), 5);
/// assert!(infra.measurement_count() >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Infrastructure {
    group: GroupId,
    machines: Vec<MachineSpec>,
}

impl Infrastructure {
    /// Creates an infrastructure from explicit machine specs.
    pub fn new(group: GroupId, machines: Vec<MachineSpec>) -> Self {
        Infrastructure { group, machines }
    }

    /// Builds a standard heterogeneous group of `machine_count` machines
    /// with the paper-motivated metric mix: linear traffic-rate pairs,
    /// saturating port utilization, regime-switching cross-machine
    /// couplings, and one independent metric per machine.
    ///
    /// Each group uses different scale/noise regimes, mirroring the
    /// paper's observation that "the monitoring data from the three
    /// information systems have different characteristics and
    /// distributions".
    pub fn standard_group(group: GroupId, machine_count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Group-specific flavour.
        let (scale, noise) = match group {
            GroupId::A => (2e5, 0.010),
            GroupId::B => (5e4, 0.015),
            GroupId::C => (1e3, 0.018),
        };
        let machines = (0..machine_count)
            .map(|k| {
                let load_share = 0.6 + 0.8 * rng.random::<f64>();
                let lin_scale = scale * (0.5 + rng.random::<f64>());
                let metrics = vec![
                    MetricSpec::new(
                        MetricKind::IfInOctetsRate,
                        MetricModel::Linear {
                            scale: lin_scale,
                            offset: 0.02 * lin_scale,
                        },
                        noise,
                    ),
                    MetricSpec::new(
                        MetricKind::IfOutOctetsRate,
                        MetricModel::Linear {
                            scale: lin_scale * (1.2 + 0.6 * rng.random::<f64>()),
                            offset: 0.01 * lin_scale,
                        },
                        noise,
                    ),
                    MetricSpec::new(
                        MetricKind::PortUtilization,
                        MetricModel::Saturating {
                            capacity: 100.0,
                            half_load: 0.35 + 0.3 * rng.random::<f64>(),
                        },
                        noise * 0.5,
                    ),
                    MetricSpec::new(
                        MetricKind::CpuUtilization,
                        MetricModel::RegimeSwitching {
                            low_scale: 60.0,
                            high_scale: 25.0,
                            threshold: 0.55 + 0.15 * rng.random::<f64>(),
                            high_offset: 35.0,
                        },
                        noise,
                    ),
                    MetricSpec::new(
                        MetricKind::MemoryUsage,
                        MetricModel::Linear {
                            scale: 40.0,
                            offset: 30.0 + 10.0 * rng.random::<f64>(),
                        },
                        noise * 2.0,
                    ),
                    MetricSpec::new(
                        MetricKind::FreeDiskSpace,
                        MetricModel::Independent {
                            mean: 500.0 + 100.0 * rng.random::<f64>(),
                        },
                        0.01,
                    ),
                ];
                MachineSpec {
                    id: MachineId::new(k as u32),
                    load_share,
                    local_phi: 0.9,
                    local_sigma: 0.006,
                    metrics,
                }
            })
            .collect();
        Infrastructure { group, machines }
    }

    /// The group this infrastructure belongs to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The machines.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Total number of measurements across all machines.
    pub fn measurement_count(&self) -> usize {
        self.machines.iter().map(|m| m.metrics.len()).sum()
    }

    /// Builds the measurement catalog for this infrastructure.
    pub fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        for machine in &self.machines {
            for metric in &machine.metrics {
                catalog.register(machine.id, metric.kind, self.group);
            }
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_group_shapes() {
        let infra = Infrastructure::standard_group(GroupId::A, 8, 1);
        assert_eq!(infra.machines().len(), 8);
        assert_eq!(infra.measurement_count(), 48);
        assert_eq!(infra.catalog().len(), 48);
        assert_eq!(infra.group(), GroupId::A);
    }

    #[test]
    fn groups_differ_in_scale() {
        let a = Infrastructure::standard_group(GroupId::A, 2, 7);
        let c = Infrastructure::standard_group(GroupId::C, 2, 7);
        let scale_of = |i: &Infrastructure| {
            i.machines()[0]
                .metrics
                .iter()
                .map(|m| m.model.output_scale())
                .fold(0.0f64, f64::max)
        };
        assert!(scale_of(&a) > scale_of(&c) * 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Infrastructure::standard_group(GroupId::B, 3, 5);
        let y = Infrastructure::standard_group(GroupId::B, 3, 5);
        assert_eq!(x, y);
        let z = Infrastructure::standard_group(GroupId::B, 3, 6);
        assert_ne!(x, z);
    }

    #[test]
    fn measurement_ids_cover_all_metrics() {
        let infra = Infrastructure::standard_group(GroupId::B, 2, 3);
        let m = &infra.machines()[1];
        let ids: Vec<_> = m.measurement_ids().collect();
        assert_eq!(ids.len(), m.metrics.len());
        assert!(ids.iter().all(|id| id.machine() == m.id));
    }
}
