use rand::Rng;

/// Standard-normal sampler via the Box–Muller transform.
///
/// The approved dependency set includes `rand` but not `rand_distr`, so
/// Gaussian sampling is implemented here. The transform produces samples
/// in pairs; the spare is cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with no cached spare.
    pub fn new() -> Self {
        NormalSampler::default()
    }

    /// Draws one standard-normal sample using `rng` for uniforms.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box-Muller: u1 in (0, 1] to keep ln finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a normal sample with the given mean and standard deviation.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_approximately_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn sample_with_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sampler.sample_with(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = (StdRng::seed_from_u64(42), NormalSampler::new());
        let mut b = (StdRng::seed_from_u64(42), NormalSampler::new());
        for _ in 0..100 {
            assert_eq!(a.1.sample(&mut a.0), b.1.sample(&mut b.0));
        }
    }
}
