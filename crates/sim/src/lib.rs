//! A distributed-infrastructure telemetry simulator for `gridwatch`.
//!
//! The paper evaluates on one month of proprietary monitoring data from
//! three companies' infrastructures — data we cannot obtain. This crate
//! generates the closest synthetic equivalent that exercises the same
//! code paths (see DESIGN.md §2 for the substitution argument):
//!
//! * a latent **workload** process with diurnal and weekly periodicity,
//!   bursts, and AR(1) noise ([`workload`]) — the "outside factor, such as
//!   work loads and number of user requests" that induces measurement
//!   correlations in the paper;
//! * an **infrastructure** of machines whose metrics respond to the
//!   workload through linear, saturating (non-linear), and
//!   regime-switching (arbitrary-shape) couplings ([`metrics`],
//!   [`infra`]), mirroring the correlation types of the paper's Figure 2;
//! * **fault injection** with exact ground-truth windows ([`fault`]):
//!   correlation-breaking faults (must alarm), correlation-preserving
//!   load spikes (must *not* alarm), machine-wide degradations (for
//!   localization), and stuck sensors;
//! * a **trace generator** producing one-month, 6-minute-sampled
//!   monitoring data with the paper's calendar (epoch = Thursday
//!   May 29 2008) ([`trace`]), plus canned per-experiment scenarios
//!   ([`scenario`]).
//!
//! All randomness is seeded and reproducible.
//!
//! # Example
//!
//! ```
//! use gridwatch_sim::scenario;
//!
//! // A small group-A style infrastructure with one injected fault.
//! let s = scenario::group_fault_scenario(gridwatch_timeseries::GroupId::A, 4, 7);
//! let trace = s.trace;
//! assert!(trace.catalog().len() >= 8);
//! assert!(!s.faults.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod csv;
pub mod fault;
pub mod infra;
pub mod metrics;
mod rng;
pub mod scenario;
pub mod trace;
pub mod workload;

pub use chaos::{ChaosEvent, ChaosKind, ChaosRegime, ChaosScenario, ChaosSchedule};
pub use csv::CsvError;
pub use fault::{FaultEvent, FaultKind, FaultSchedule};
pub use infra::{Infrastructure, MachineSpec};
pub use metrics::{MetricModel, MetricSpec};
pub use rng::NormalSampler;
pub use trace::{Trace, TraceGenerator};
pub use workload::{WorkloadConfig, WorkloadGenerator};
