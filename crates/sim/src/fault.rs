//! Fault injection with exact ground-truth windows.
//!
//! The paper evaluates against problems "identified by the system
//! administrators" — ground truth it could only eyeball. The simulator
//! injects faults at scripted times instead, which lets the evaluation
//! measure precision/recall and detection delay exactly.
//!
//! The fault taxonomy follows the paper's motivating discussion:
//!
//! * [`FaultKind::CorrelationBreak`] — a measurement decouples from the
//!   workload (the "real" problems the detector must flag);
//! * [`FaultKind::LoadSpike`] — "a flood of user requests": every
//!   measurement rises but correlations persist; the paper argues these
//!   must **not** alarm (its false-positive-reduction claim);
//! * [`FaultKind::MachineDegradation`] — all metrics of one machine
//!   misbehave, the localization target of Figure 14;
//! * [`FaultKind::SensorStuck`] — a measurement freezes at its last
//!   value.

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{MachineId, MeasurementId, Timestamp};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// The target measurement decouples from the workload: its values are
    /// replaced by `level · (1 + wander)`, independent of load.
    CorrelationBreak {
        /// The affected measurement.
        target: MeasurementId,
        /// The level (relative to the metric's normal output scale) the
        /// measurement wanders around while broken.
        level: f64,
    },
    /// A correlation-preserving global load surge (flash crowd).
    LoadSpike {
        /// Multiplier on the global workload during the window.
        factor: f64,
    },
    /// Every metric on the machine degrades: load share collapses and
    /// extra noise appears.
    MachineDegradation {
        /// The affected machine.
        machine: MachineId,
        /// Multiplier on the machine's load share (e.g. 0.2).
        share_factor: f64,
        /// Extra relative noise added to the machine's metrics.
        extra_noise: f64,
    },
    /// The target measurement reports its last pre-fault value for the
    /// whole window.
    SensorStuck {
        /// The affected measurement.
        target: MeasurementId,
    },
}

impl FaultKind {
    /// Whether this fault should raise an alarm (breaks correlations).
    ///
    /// Load spikes preserve correlations and are expected to stay silent.
    pub fn should_alarm(&self) -> bool {
        !matches!(self, FaultKind::LoadSpike { .. })
    }

    /// The machine this fault localizes to, if any.
    pub fn machine(&self) -> Option<MachineId> {
        match self {
            FaultKind::CorrelationBreak { target, .. } => Some(target.machine()),
            FaultKind::SensorStuck { target } => Some(target.machine()),
            FaultKind::MachineDegradation { machine, .. } => Some(*machine),
            FaultKind::LoadSpike { .. } => None,
        }
    }
}

/// One injected fault: a kind plus its half-open active window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Start of the fault (inclusive).
    pub start: Timestamp,
    /// End of the fault (exclusive).
    pub end: Timestamp,
}

impl FaultEvent {
    /// Creates a fault event.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(kind: FaultKind, start: Timestamp, end: Timestamp) -> Self {
        assert!(start < end, "fault window must be non-empty");
        FaultEvent { kind, start, end }
    }

    /// Whether the fault is active at `t`.
    pub fn is_active_at(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

/// A scripted schedule of fault events — the simulation's ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events active at `t`.
    pub fn active_at(&self, t: Timestamp) -> impl Iterator<Item = &FaultEvent> + '_ {
        self.events.iter().filter(move |e| e.is_active_at(t))
    }

    /// Whether any *alarm-worthy* fault (correlation-breaking) is active
    /// at `t` — the ground-truth label for detection metrics.
    pub fn truth_label(&self, t: Timestamp) -> bool {
        self.active_at(t).any(|e| e.kind.should_alarm())
    }

    /// The alarm-worthy windows, for reporting.
    pub fn truth_windows(&self) -> Vec<(Timestamp, Timestamp)> {
        self.events
            .iter()
            .filter(|e| e.kind.should_alarm())
            .map(|e| (e.start, e.end))
            .collect()
    }
}

impl FromIterator<FaultEvent> for FaultSchedule {
    fn from_iter<T: IntoIterator<Item = FaultEvent>>(iter: T) -> Self {
        FaultSchedule {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::MetricKind;

    fn measurement() -> MeasurementId {
        MeasurementId::new(MachineId::new(2), MetricKind::CpuUtilization)
    }

    #[test]
    fn window_membership() {
        let e = FaultEvent::new(
            FaultKind::LoadSpike { factor: 3.0 },
            Timestamp::from_hours(10),
            Timestamp::from_hours(12),
        );
        assert!(!e.is_active_at(Timestamp::from_hours(9)));
        assert!(e.is_active_at(Timestamp::from_hours(10)));
        assert!(e.is_active_at(Timestamp::from_secs(11 * 3600 + 1800)));
        assert!(!e.is_active_at(Timestamp::from_hours(12)));
    }

    #[test]
    fn load_spikes_do_not_count_as_truth() {
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::new(
            FaultKind::LoadSpike { factor: 2.0 },
            Timestamp::from_hours(0),
            Timestamp::from_hours(1),
        ));
        s.push(FaultEvent::new(
            FaultKind::CorrelationBreak {
                target: measurement(),
                level: 0.1,
            },
            Timestamp::from_hours(2),
            Timestamp::from_hours(3),
        ));
        assert!(!s.truth_label(Timestamp::from_secs(1800)));
        assert!(s.truth_label(Timestamp::from_secs(2 * 3600 + 60)));
        assert_eq!(s.truth_windows().len(), 1);
    }

    #[test]
    fn machine_attribution() {
        assert_eq!(
            FaultKind::CorrelationBreak {
                target: measurement(),
                level: 1.0
            }
            .machine(),
            Some(MachineId::new(2))
        );
        assert_eq!(FaultKind::LoadSpike { factor: 2.0 }.machine(), None);
        assert_eq!(
            FaultKind::MachineDegradation {
                machine: MachineId::new(7),
                share_factor: 0.2,
                extra_noise: 0.1
            }
            .machine(),
            Some(MachineId::new(7))
        );
    }

    #[test]
    fn alarm_expectations() {
        assert!(!FaultKind::LoadSpike { factor: 5.0 }.should_alarm());
        assert!(FaultKind::SensorStuck {
            target: measurement()
        }
        .should_alarm());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        FaultEvent::new(
            FaultKind::LoadSpike { factor: 1.0 },
            Timestamp::from_hours(1),
            Timestamp::from_hours(1),
        );
    }
}
