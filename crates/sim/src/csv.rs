//! CSV import/export for monitoring traces.
//!
//! The long format mirrors what monitoring agents actually emit — one
//! row per sample:
//!
//! ```text
//! timestamp_secs,group,machine,metric,value
//! 0,A,machine-000,CpuUtilization,14.2061
//! ```
//!
//! Export lets simulated traces feed external tooling; import lets the
//! detection pipeline run on real monitoring data with no code changes.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use gridwatch_timeseries::{
    Catalog, GroupId, MeasurementId, SampleInterval, TimeSeries, Timestamp,
};

use crate::trace::Trace;

/// The CSV header written and expected by this module.
pub const HEADER: &str = "timestamp_secs,group,machine,metric,value";

/// Errors produced while reading a trace from CSV.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or different from [`HEADER`].
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// A data row could not be parsed.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file contained a header but no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o failure: {e}"),
            CsvError::BadHeader { found } => {
                write!(f, "expected header {HEADER:?}, found {found:?}")
            }
            CsvError::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl Trace {
    /// Writes the trace as long-format CSV.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), CsvError> {
        writeln!(w, "{HEADER}")?;
        for id in self.measurement_ids() {
            let group = self
                .catalog()
                .group_of(id)
                .expect("trace catalog covers its measurements");
            let series = self.series(id).expect("id from this trace");
            for (t, v) in series.iter() {
                writeln!(
                    w,
                    "{},{},{},{},{}",
                    t.as_secs(),
                    group,
                    id.machine(),
                    id.metric(),
                    v
                )?;
            }
        }
        Ok(())
    }

    /// The trace as a CSV string.
    pub fn to_csv_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("csv output is UTF-8")
    }

    /// Reads a long-format CSV trace. Rows may arrive grouped by
    /// measurement or fully interleaved by time; within one measurement,
    /// timestamps must be strictly increasing.
    ///
    /// The sampling interval is inferred from the smallest gap between
    /// consecutive samples of the first measurement.
    ///
    /// # Errors
    ///
    /// Returns a [`CsvError`] for I/O failures, a bad header, or a
    /// malformed row.
    pub fn read_csv<R: BufRead>(reader: R) -> Result<Trace, CsvError> {
        let mut lines = reader.lines();
        let header = lines.next().ok_or(CsvError::Empty)??;
        if header.trim() != HEADER {
            return Err(CsvError::BadHeader { found: header });
        }
        let mut catalog = Catalog::new();
        let mut series: BTreeMap<MeasurementId, TimeSeries> = BTreeMap::new();
        let mut rows = 0usize;
        for (k, line) in lines.enumerate() {
            let line = line?;
            let line_no = k + 2;
            if line.trim().is_empty() {
                continue;
            }
            let bad = |reason: String| CsvError::BadRow {
                line: line_no,
                reason,
            };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(bad(format!("expected 5 fields, found {}", fields.len())));
            }
            let secs: u64 = fields[0]
                .trim()
                .parse()
                .map_err(|e| bad(format!("bad timestamp: {e}")))?;
            let group: GroupId = fields[1].trim().parse().map_err(|e| bad(format!("{e}")))?;
            let machine = fields[2].trim().parse().map_err(|e| bad(format!("{e}")))?;
            let metric = fields[3].trim().parse().map_err(|e| bad(format!("{e}")))?;
            let value: f64 = fields[4]
                .trim()
                .parse()
                .map_err(|e| bad(format!("bad value: {e}")))?;
            let id = MeasurementId::new(machine, metric);
            if catalog.info(id).is_none() {
                catalog.register(machine, metric, group);
            }
            series
                .entry(id)
                .or_default()
                .push(Timestamp::from_secs(secs), value)
                .map_err(|e| bad(format!("{e}")))?;
            rows += 1;
        }
        if rows == 0 {
            return Err(CsvError::Empty);
        }
        // Infer the sampling interval from the densest observed spacing.
        let interval = series
            .values()
            .next()
            .and_then(|s| {
                s.timestamps()
                    .windows(2)
                    .map(|w| w[1].as_secs() - w[0].as_secs())
                    .min()
            })
            .filter(|&gap| gap > 0)
            .map(SampleInterval::from_secs)
            .unwrap_or_default();
        Ok(Trace::from_parts(catalog, series, interval))
    }

    /// Reads a CSV trace from a string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Trace::read_csv`].
    pub fn from_csv_str(s: &str) -> Result<Trace, CsvError> {
        Trace::read_csv(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::clean_scenario;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = clean_scenario(GroupId::B, 2, 5).trace;
        // Trim to a few hours to keep the CSV small.
        let csv = {
            let mut small = BTreeMap::new();
            for id in trace.measurement_ids() {
                small.insert(
                    id,
                    trace
                        .series(id)
                        .unwrap()
                        .slice(Timestamp::EPOCH, Timestamp::from_hours(3)),
                );
            }
            Trace::from_parts(trace.catalog().clone(), small, trace.interval()).to_csv_string()
        };
        let back = Trace::from_csv_str(&csv).unwrap();
        assert_eq!(back.measurement_count(), trace.measurement_count());
        assert_eq!(back.interval(), trace.interval());
        for id in back.measurement_ids() {
            let s = back.series(id).unwrap();
            assert_eq!(s.len(), 30, "3 hours of 6-minute samples");
            assert_eq!(
                trace.catalog().group_of(id),
                back.catalog().group_of(id),
                "group preserved for {id}"
            );
        }
        // Bit-exact values.
        let id = back.measurement_ids().next().unwrap();
        let original = trace
            .series(id)
            .unwrap()
            .slice(Timestamp::EPOCH, Timestamp::from_hours(3));
        assert_eq!(back.series(id).unwrap().values(), original.values());
    }

    #[test]
    fn bad_header_rejected() {
        let err = Trace::from_csv_str("time,value\n1,2\n").unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
        assert!(err.to_string().contains("expected header"));
    }

    #[test]
    fn bad_rows_are_located() {
        let csv = format!("{HEADER}\n0,A,machine-000,CpuUtilization,1.0\nnot,a,row\n");
        let err = Trace::from_csv_str(&csv).unwrap_err();
        match err {
            CsvError::BadRow { line, .. } => assert_eq!(line, 3),
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn unknown_metric_rejected() {
        let csv = format!("{HEADER}\n0,A,machine-000,Bogus,1.0\n");
        let err = Trace::from_csv_str(&csv).unwrap_err();
        assert!(err.to_string().contains("metric kind"));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(Trace::from_csv_str(""), Err(CsvError::Empty)));
        assert!(matches!(
            Trace::from_csv_str(&format!("{HEADER}\n")),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn interval_is_inferred() {
        let csv = format!(
            "{HEADER}\n0,A,0,CpuUtilization,1.0\n60,A,0,CpuUtilization,2.0\n\
             120,A,0,CpuUtilization,3.0\n"
        );
        let trace = Trace::from_csv_str(&csv).unwrap();
        assert_eq!(trace.interval(), SampleInterval::from_secs(60));
    }
}
