//! gridwatch-sync: rank-ordered lock wrappers with a runtime lockdep.
//!
//! Every shared lock in the serving fabric belongs to a [`LockClass`]
//! with a global **rank**; the rule is that a thread may only acquire
//! locks in strictly increasing rank order. The workspace's rank table
//! lives in [`classes`] so the whole ordering is reviewable in one
//! place (and documented in DESIGN.md §13).
//!
//! [`OrderedMutex`] and [`OrderedRwLock`] wrap their `parking_lot`
//! counterparts:
//!
//! * with the `validate` feature **off** (the default), they are plain
//!   pass-throughs — no atomics, no thread-locals, no branches beyond
//!   the underlying lock. The `lockdep_overhead` bench hard-gates this.
//! * with `validate` **on**, each acquisition is checked against a
//!   per-thread stack of held locks and the actual acquisition order is
//!   recorded in a global edge table ([`observed_edges`]). Acquiring a
//!   lock whose rank is not strictly greater than every held lock's
//!   rank panics with *both* acquisition locations — the would-be
//!   deadlock dies loudly in tests instead of hanging in production.
//!
//! The static side of the same contract is `gridwatch audit
//! --concurrency`, which lints the source for lock-order cycles; this
//! crate catches the orders that actually execute.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// One lock class: a name for reports and a global rank. Locks must be
/// acquired in strictly increasing rank order within a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    name: &'static str,
    rank: u32,
}

impl LockClass {
    /// Defines a lock class. Ranks are compared globally: keep the full
    /// table in [`classes`] so orderings stay reviewable.
    pub const fn new(name: &'static str, rank: u32) -> LockClass {
        LockClass { name, rank }
    }

    /// The class name, used in lockdep panics and the edge table.
    pub const fn name(self) -> &'static str {
        self.name
    }

    /// The class rank. Lower ranks must be acquired first.
    pub const fn rank(self) -> u32 {
        self.rank
    }
}

/// The workspace rank table. One constant per lock class, ordered by
/// rank: a thread holding one of these may only acquire classes that
/// appear *later* in this list.
///
/// The spacing leaves room to slot new classes between existing ones
/// without renumbering.
pub mod classes {
    use super::LockClass;

    /// Coordinator per-shard slot (`Coordinator::slots[i]`): connection
    /// state, epoch, and the upstream socket for one shard.
    pub const FABRIC_SLOT: LockClass = LockClass::new("fabric.slot", 10);
    /// Coordinator checkpoint state cache (`Coordinator::state_cache`).
    pub const FABRIC_STATE_CACHE: LockClass = LockClass::new("fabric.state_cache", 20);
    /// Coordinator fabric counters (`Coordinator::stats`).
    pub const FABRIC_STATS: LockClass = LockClass::new("fabric.stats", 30);
    /// `ShardedEngine` serving counters (`StatsAccumulator`).
    pub const ENGINE_STATS: LockClass = LockClass::new("engine.stats", 32);
    /// `NetServer` ingestion counters and per-connection stats table.
    pub const NET_ACCUMULATOR: LockClass = LockClass::new("net.accumulator", 34);
    /// `NetServer` live-connection registry (for shutdown teardown).
    pub const NET_CONNS: LockClass = LockClass::new("net.connections", 36);
    /// Shard-worker live session socket (`ShardWorker::session`).
    pub const WORKER_SESSION: LockClass = LockClass::new("worker.session", 40);
    /// Shard-worker lifetime counters (`ShardWorker::summary`).
    pub const WORKER_SUMMARY: LockClass = LockClass::new("worker.summary", 42);
    /// Exemplar tracer's in-flight trace table (`ExemplarTracer`
    /// pending map): spans accumulate here between open and finalize.
    /// Acquired from submit/merge/report paths that may hold stats
    /// locks, so it ranks above every counter class.
    pub const EXEMPLAR_PENDING: LockClass = LockClass::new("obs.exemplar_pending", 44);
    /// Exemplar tracer's retained ring. Ranks above the pending map:
    /// `finalize` moves a trace from pending into the ring.
    pub const EXEMPLAR_RING: LockClass = LockClass::new("obs.exemplar_ring", 46);
    /// Burn-rate gauge sample window (`BurnGauges`): appended to and
    /// read at scrape time only.
    pub const HEALTH_WINDOW: LockClass = LockClass::new("obs.health_window", 48);
    /// Flight-recorder event ring. Highest rank on purpose: `record()`
    /// is called from code that may hold any other lock, so the ring
    /// must be acquirable last from anywhere.
    pub const FLIGHT_RING: LockClass = LockClass::new("obs.flight_ring", 50);
}

#[cfg(feature = "validate")]
mod lockdep {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::panic::Location;

    use super::LockClass;

    #[derive(Clone, Copy)]
    struct Held {
        class: LockClass,
        acquired_at: &'static Location<'static>,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Every (held, acquired) class-name pair actually executed under
    /// `validate`, across all threads — the runtime lock-order graph.
    static EDGES: parking_lot::Mutex<BTreeSet<(&'static str, &'static str)>> =
        parking_lot::Mutex::new(BTreeSet::new());

    pub(super) fn observed_edges() -> Vec<(&'static str, &'static str)> {
        EDGES.lock().iter().copied().collect()
    }

    /// Checks `class` against this thread's held stack, records the
    /// order edges, and pushes the acquisition. Panics on inversion
    /// *before* blocking on the lock, so a real AB/BA deadlock fails
    /// fast instead of hanging the suite.
    pub(super) fn acquire(class: LockClass, at: &'static Location<'static>) -> u64 {
        let token = NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            *t += 1;
            *t
        });
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(blocker) = held.iter().find(|h| h.class.rank() >= class.rank()) {
                let stack: Vec<String> = held
                    .iter()
                    .map(|h| {
                        format!(
                            "{} (rank {}, acquired at {})",
                            h.class.name(),
                            h.class.rank(),
                            h.acquired_at
                        )
                    })
                    .collect();
                let msg = format!(
                    "lock-order inversion: acquiring `{}` (rank {}) at {} while holding \
                     `{}` (rank {}) acquired at {}; this thread's held stack: [{}]",
                    class.name(),
                    class.rank(),
                    at,
                    blocker.class.name(),
                    blocker.class.rank(),
                    blocker.acquired_at,
                    stack.join(", ")
                );
                // Deliberate fail-stop: an order inversion is a latent
                // deadlock; crashing with both locations is the point.
                panic!("{msg}");
            }
            if !held.is_empty() {
                let mut edges = EDGES.lock();
                for h in held.iter() {
                    edges.insert((h.class.name(), class.name()));
                }
            }
            held.push(Held {
                class,
                acquired_at: at,
                token,
            });
        });
        token
    }

    /// Removes the acquisition with `token` from this thread's stack.
    /// Guards may be dropped out of LIFO order, so release is by token,
    /// not by popping.
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.token == token) {
                held.remove(pos);
            }
        });
    }
}

/// The (held → acquired) lock-class pairs actually executed so far,
/// across all threads — the runtime lock-order graph, for tests that
/// want to assert which orders a scenario exercised.
#[cfg(feature = "validate")]
pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
    lockdep::observed_edges()
}

/// A mutex belonging to a [`LockClass`]; see the crate docs for the
/// ordering contract.
pub struct OrderedMutex<T> {
    class: LockClass,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex of the given class.
    pub const fn new(class: LockClass, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            class,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// This lock's class.
    pub const fn class(&self) -> LockClass {
        self.class
    }

    /// Acquires the mutex. Under `validate`, panics with both
    /// acquisition locations if this would invert the rank order
    /// against any lock the current thread already holds.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(feature = "validate")]
        let token = lockdep::acquire(self.class, std::panic::Location::caller());
        OrderedMutexGuard {
            #[cfg(feature = "validate")]
            token,
            inner: self.inner.lock(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("class", &self.class.name())
            .field("rank", &self.class.rank())
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`OrderedMutex::lock`].
pub struct OrderedMutexGuard<'a, T> {
    #[cfg(feature = "validate")]
    token: u64,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(feature = "validate")]
impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::release(self.token);
    }
}

/// A reader–writer lock belonging to a [`LockClass`]. Both read and
/// write acquisitions participate in the rank order: a same-class
/// read-under-read is also rejected under `validate`, because a writer
/// queued between the two reads deadlocks a fair rwlock.
pub struct OrderedRwLock<T> {
    class: LockClass,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` in an rwlock of the given class.
    pub const fn new(class: LockClass, value: T) -> OrderedRwLock<T> {
        OrderedRwLock {
            class,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// This lock's class.
    pub const fn class(&self) -> LockClass {
        self.class
    }

    /// Acquires a shared read guard, rank-checked under `validate`.
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(feature = "validate")]
        let token = lockdep::acquire(self.class, std::panic::Location::caller());
        OrderedReadGuard {
            #[cfg(feature = "validate")]
            token,
            inner: self.inner.read(),
        }
    }

    /// Acquires an exclusive write guard, rank-checked under `validate`.
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(feature = "validate")]
        let token = lockdep::acquire(self.class, std::panic::Location::caller());
        OrderedWriteGuard {
            #[cfg(feature = "validate")]
            token,
            inner: self.inner.write(),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("class", &self.class.name())
            .field("rank", &self.class.rank())
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`OrderedRwLock::read`].
pub struct OrderedReadGuard<'a, T> {
    #[cfg(feature = "validate")]
    token: u64,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(feature = "validate")]
impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::release(self.token);
    }
}

/// RAII guard for [`OrderedRwLock::write`].
pub struct OrderedWriteGuard<'a, T> {
    #[cfg(feature = "validate")]
    token: u64,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(feature = "validate")]
impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOW: LockClass = LockClass::new("test.low", 1);
    const HIGH: LockClass = LockClass::new("test.high", 2);

    #[test]
    fn mutex_guards_data() {
        let m = OrderedMutex::new(LOW, 0u64);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_guards_data() {
        let l = OrderedRwLock::new(LOW, vec![1u32, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn ascending_order_is_legal() {
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(HIGH, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
        // Re-acquire to prove the stack was not corrupted by the
        // out-of-LIFO release above.
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }

    #[test]
    fn class_metadata_is_exposed() {
        let m = OrderedMutex::new(classes::FLIGHT_RING, ());
        assert_eq!(m.class().name(), "obs.flight_ring");
        assert!(m.class().rank() > classes::FABRIC_SLOT.rank());
        assert!(format!("{m:?}").contains("obs.flight_ring"));
    }

    #[test]
    fn rank_table_is_strictly_increasing() {
        let table = [
            classes::FABRIC_SLOT,
            classes::FABRIC_STATE_CACHE,
            classes::FABRIC_STATS,
            classes::ENGINE_STATS,
            classes::NET_ACCUMULATOR,
            classes::NET_CONNS,
            classes::WORKER_SESSION,
            classes::WORKER_SUMMARY,
            classes::EXEMPLAR_PENDING,
            classes::EXEMPLAR_RING,
            classes::HEALTH_WINDOW,
            classes::FLIGHT_RING,
        ];
        for pair in table.windows(2) {
            assert!(
                pair[0].rank() < pair[1].rank(),
                "{} must rank below {}",
                pair[0].name(),
                pair[1].name()
            );
        }
    }
}
