//! Runtime lockdep behavior under the `validate` feature: inversions
//! panic with both acquisition locations, legal orders pass, threads
//! keep independent held stacks, and the observed-edge table records
//! the orders that actually executed.
//!
//! Without `validate` the wrappers are pass-throughs; the non-gated
//! tests below pin that the API still behaves as a plain lock.

use gridwatch_sync::{LockClass, OrderedMutex};

const ALPHA: LockClass = LockClass::new("lockdep.alpha", 100);
const BETA: LockClass = LockClass::new("lockdep.beta", 200);

#[test]
fn nested_ascending_acquisition_passes() {
    let a = OrderedMutex::new(ALPHA, 1u32);
    let b = OrderedMutex::new(BETA, 2u32);
    let ga = a.lock();
    let gb = b.lock();
    assert_eq!(*ga + *gb, 3);
}

#[test]
fn sequential_reacquisition_passes() {
    // Dropping a guard must release its lockdep slot: B-then-A is legal
    // when the B guard is gone before A is taken.
    let a = OrderedMutex::new(ALPHA, ());
    let b = OrderedMutex::new(BETA, ());
    drop(b.lock());
    drop(a.lock());
    drop(b.lock());
}

#[cfg(feature = "validate")]
mod validate {
    use super::*;
    use gridwatch_sync::OrderedRwLock;

    const GAMMA: LockClass = LockClass::new("lockdep.gamma", 300);

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn descending_acquisition_panics() {
        let a = OrderedMutex::new(ALPHA, ());
        let b = OrderedMutex::new(BETA, ());
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn same_class_nesting_panics() {
        // Two locks of the same class can deadlock against each other
        // (AB/BA with itself), so same-rank nesting is an inversion.
        let a1 = OrderedMutex::new(ALPHA, ());
        let a2 = OrderedMutex::new(ALPHA, ());
        let _g1 = a1.lock();
        let _g2 = a2.lock();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn rwlock_read_participates_in_ordering() {
        let a = OrderedRwLock::new(ALPHA, ());
        let b = OrderedMutex::new(BETA, ());
        let _gb = b.lock();
        let _ga = a.read();
    }

    #[test]
    fn inversion_message_names_both_locations() {
        let err = std::thread::spawn(|| {
            let a = OrderedMutex::new(ALPHA, ());
            let b = OrderedMutex::new(BETA, ());
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String")
            .clone();
        assert!(msg.contains("lockdep.alpha"), "{msg}");
        assert!(msg.contains("lockdep.beta"), "{msg}");
        // Both the blocked acquisition and the held acquisition carry
        // file:line locations from #[track_caller].
        assert!(msg.matches("lockdep.rs").count() >= 2, "{msg}");
        assert!(msg.contains("held stack"), "{msg}");
    }

    #[test]
    fn held_stacks_are_per_thread() {
        // One thread holding BETA must not poison another thread's
        // ALPHA acquisition: the ordering is per-thread, not global.
        let b = std::sync::Arc::new(OrderedMutex::new(BETA, ()));
        let held = b.lock();
        let worker = std::thread::spawn(|| {
            let a = OrderedMutex::new(ALPHA, ());
            drop(a.lock());
        });
        worker.join().expect("cross-thread acquisition is legal");
        drop(held);
    }

    #[test]
    fn observed_edges_record_actual_orders() {
        let a = OrderedMutex::new(ALPHA, ());
        let c = OrderedRwLock::new(GAMMA, ());
        let ga = a.lock();
        let gc = c.write();
        drop(gc);
        drop(ga);
        let edges = gridwatch_sync::observed_edges();
        assert!(
            edges.contains(&("lockdep.alpha", "lockdep.gamma")),
            "{edges:?}"
        );
    }

    #[test]
    fn out_of_order_release_keeps_stack_consistent() {
        let a = OrderedMutex::new(ALPHA, ());
        let b = OrderedMutex::new(BETA, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the *lower* rank first
        let gc = OrderedMutex::new(GAMMA, ());
        let g = gc.lock(); // must see only BETA held — legal
        drop(g);
        drop(gb);
    }
}
