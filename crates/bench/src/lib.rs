//! Shared fixtures for the Criterion benches: simulated pairs, trained
//! models, and trained engines at several scales.

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_detect::{DetectionEngine, EngineConfig, PairScreen};
use gridwatch_sim::scenario::clean_scenario;
use gridwatch_sim::Trace;
use gridwatch_timeseries::{AlignmentPolicy, GroupId, PairSeries, Point2, Timestamp};

/// A simulated clean trace for group A.
pub fn trace(machines: usize) -> Trace {
    clean_scenario(GroupId::A, machines, 20080529).trace
}

/// The trace's first pair of measurements, aligned over `[0, days)`.
pub fn pair_series(trace: &Trace, days: u64) -> PairSeries {
    let mut ids = trace.measurement_ids();
    let a = ids.next().expect("trace has measurements");
    let b = ids.next().expect("trace has measurements");
    let sa = trace
        .series(a)
        .expect("measurement exists")
        .slice(Timestamp::EPOCH, Timestamp::from_days(days));
    let sb = trace
        .series(b)
        .expect("measurement exists")
        .slice(Timestamp::EPOCH, Timestamp::from_days(days));
    PairSeries::align(&sa, &sb, AlignmentPolicy::Intersect).expect("same schedule")
}

/// A model trained on `train_days` of the trace's first pair.
pub fn trained_model(trace: &Trace, train_days: u64) -> TransitionModel {
    let history = pair_series(trace, train_days);
    TransitionModel::fit(&history, ModelConfig::default()).expect("history is modelable")
}

/// The test-day points of the trace's first pair.
pub fn test_points(trace: &Trace) -> Vec<Point2> {
    let mut ids = trace.measurement_ids();
    let a = ids.next().expect("trace has measurements");
    let b = ids.next().expect("trace has measurements");
    let sa = trace
        .series(a)
        .expect("measurement exists")
        .slice(Timestamp::from_days(15), Timestamp::from_days(16));
    let sb = trace
        .series(b)
        .expect("measurement exists")
        .slice(Timestamp::from_days(15), Timestamp::from_days(16));
    PairSeries::align(&sa, &sb, AlignmentPolicy::Intersect)
        .expect("same schedule")
        .points()
        .to_vec()
}

/// An engine trained on 8 days over up to `max_pairs` screened pairs.
pub fn trained_engine(trace: &Trace, max_pairs: usize, parallel: bool) -> DetectionEngine {
    let train_end = Timestamp::from_days(8);
    let mut training = std::collections::BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace
                .series(id)
                .expect("measurement exists")
                .slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        max_pairs: Some(max_pairs),
        ..PairScreen::default()
    };
    let pairs = screen.select(&training);
    let histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    DetectionEngine::train(
        histories,
        EngineConfig {
            parallel,
            ..EngineConfig::default()
        },
    )
    .expect("benchmark engine trains")
}

/// An engine for the chaos benches: frozen model (the drift layer's
/// target configuration) with an optional drift detector, trained on
/// the same 8 days and screen as [`trained_engine`].
pub fn trained_drift_engine(
    trace: &Trace,
    max_pairs: usize,
    drift: Option<gridwatch_detect::DriftConfig>,
) -> DetectionEngine {
    let train_end = Timestamp::from_days(8);
    let mut training = std::collections::BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace
                .series(id)
                .expect("measurement exists")
                .slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        max_pairs: Some(max_pairs),
        ..PairScreen::default()
    };
    let pairs = screen.select(&training);
    let histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    DetectionEngine::train(
        histories,
        EngineConfig {
            model: ModelConfig::default().frozen(),
            drift,
            ..EngineConfig::default()
        },
    )
    .expect("benchmark engine trains")
}

/// An engine for the sketch benches: up to `max_pairs` trained models
/// and, when `sketch` is set, every *other* screened pair registered as
/// a sketch-only candidate (the million-measurement posture: few
/// materialized models, many cheap tracked pairs).
pub fn trained_sketch_engine(
    trace: &Trace,
    max_pairs: usize,
    sketch: Option<gridwatch_detect::SketchConfig>,
) -> DetectionEngine {
    let train_end = Timestamp::from_days(8);
    let mut training = std::collections::BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace
                .series(id)
                .expect("measurement exists")
                .slice(Timestamp::EPOCH, train_end),
        );
    }
    let screen = PairScreen {
        min_cv: 0.05,
        ..PairScreen::default()
    };
    let mut pairs = screen.select(&training);
    let overflow = if pairs.len() > max_pairs {
        pairs.split_off(max_pairs)
    } else {
        Vec::new()
    };
    let histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let sketched = sketch.is_some();
    let mut engine = DetectionEngine::train(
        histories,
        EngineConfig {
            sketch,
            ..EngineConfig::default()
        },
    )
    .expect("benchmark engine trains");
    if sketched {
        engine.add_candidates(overflow);
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let t = trace(2);
        let model = trained_model(&t, 2);
        assert!(model.matrix().total_observations() > 0);
        assert!(!test_points(&t).is_empty());
        let engine = trained_engine(&t, 5, false);
        assert!(engine.model_count() > 0);
        let drifting = trained_drift_engine(&t, 5, Some(gridwatch_detect::DriftConfig::default()));
        assert!(drifting.model_count() > 0);
        let sketched =
            trained_sketch_engine(&t, 3, Some(gridwatch_detect::SketchConfig::default()));
        assert_eq!(sketched.model_count(), 3);
        assert!(
            sketched.tracked_pair_count() > sketched.model_count(),
            "screen overflow becomes sketch candidates"
        );
    }
}
