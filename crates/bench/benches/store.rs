//! History store throughput: WAL append (buffered and per-batch
//! fsynced), sealing into columnar blocks, and time-range scans over
//! sealed history. These are the costs `serve --store` adds to the hot
//! loop and the costs `gridwatch history` pays per query.

use std::hint::black_box;
use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridwatch_store::{HistoryStore, Record, RecordKind, ScoreRow, StoreConfig};

/// One serving step's worth of rows at `--store-depth measurements`
/// for a 24-measurement system: the system score plus one row per
/// measurement.
const ROWS_PER_STEP: u64 = 25;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gw-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(step: u64, slot: u64) -> Record {
    let key = if slot == 0 {
        "system".to_string()
    } else {
        format!("m:machine-{:03}/CpuUtilization", slot - 1)
    };
    Record::Score(ScoreRow {
        at: step * 360,
        key,
        score: (step as f64 * 0.01 + slot as f64).sin(),
    })
}

/// A store with `steps` steps of sealed score history.
fn sealed_store(tag: &str, steps: u64) -> HistoryStore {
    let dir = scratch(tag);
    let (mut store, _) = HistoryStore::open(&dir, StoreConfig::default()).unwrap();
    for step in 0..steps {
        for slot in 0..ROWS_PER_STEP {
            store.append(row(step, slot)).unwrap();
        }
    }
    store.seal().unwrap();
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(20);

    // Buffered appends: the per-row cost the serving loop pays inline.
    group.bench_function("store_append/buffered_step", |b| {
        let dir = scratch("append");
        let (mut store, _) = HistoryStore::open(&dir, StoreConfig::default()).unwrap();
        let mut step = 0u64;
        b.iter(|| {
            for slot in 0..ROWS_PER_STEP {
                store.append(black_box(row(step, slot))).unwrap();
            }
            step += 1;
        });
    });

    // Appends plus a batch fsync: the durability cadence.
    group.bench_function("store_append/synced_step", |b| {
        let dir = scratch("synced");
        let (mut store, _) = HistoryStore::open(&dir, StoreConfig::default()).unwrap();
        let mut step = 0u64;
        b.iter(|| {
            for slot in 0..ROWS_PER_STEP {
                store.append(black_box(row(step, slot))).unwrap();
            }
            store.sync().unwrap();
            step += 1;
        });
    });

    // One day of steps sealed into columnar blocks.
    const SEAL_STEPS: u64 = 240;
    group.bench_function("store_seal/one_day", |b| {
        b.iter_batched(
            || {
                let dir = scratch("seal");
                let (mut store, _) = HistoryStore::open(&dir, StoreConfig::default()).unwrap();
                for step in 0..SEAL_STEPS {
                    for slot in 0..ROWS_PER_STEP {
                        store.append(row(step, slot)).unwrap();
                    }
                }
                store
            },
            |mut store| {
                store.seal().unwrap();
                black_box(store);
            },
            BatchSize::PerIteration,
        );
    });

    // Scans over a week of sealed history: full range and a narrow day.
    const WEEK_STEPS: u64 = 240 * 7;
    let store = sealed_store("scan", WEEK_STEPS);
    group.bench_function("store_scan/full_week", |b| {
        b.iter(|| {
            let rows = store.scan(RecordKind::Score, 0, u64::MAX).unwrap();
            black_box(rows.len())
        });
    });
    group.bench_function("store_scan/one_day_of_seven", |b| {
        b.iter(|| {
            let rows = store
                .scan(RecordKind::Score, 3 * 86_400, 4 * 86_400 - 1)
                .unwrap();
            black_box(rows.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
