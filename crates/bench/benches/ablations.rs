//! Cost ablations over the model's design choices (DESIGN.md §6): decay
//! kernel, decay rate, and adaptive versus uniform grid construction.
//! (Quality ablations live in the eval crate; these measure cost.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_bench::{pair_series, test_points, trace};
use gridwatch_core::{DecayKernel, ModelConfig, TransitionModel};
use gridwatch_grid::GridConfig;

fn bench_kernel_ablation(c: &mut Criterion) {
    let trace = trace(2);
    let history = pair_series(&trace, 8);
    let points = test_points(&trace);

    let mut group = c.benchmark_group("ablation_kernel_observe");
    group.sample_size(15);
    for kernel in DecayKernel::ALL {
        let config = ModelConfig::builder()
            .kernel(kernel)
            .build()
            .expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &config,
            |b, &config| {
                b.iter_batched(
                    || TransitionModel::fit(&history, config).expect("fit succeeds"),
                    |mut model| {
                        for &p in &points {
                            black_box(model.observe(p));
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_grid_style_ablation(c: &mut Criterion) {
    let trace = trace(2);
    let history = pair_series(&trace, 8);

    let adaptive = GridConfig::default();
    // Forcing the uniform fallback by accepting any distribution as
    // "equal enough".
    let uniform = GridConfig::builder()
        .uniform_cv_threshold(f64::INFINITY)
        .uniform_intervals(16)
        .build()
        .expect("valid config");

    let mut group = c.benchmark_group("ablation_grid_style_fit");
    group.sample_size(15);
    for (name, grid) in [("adaptive", adaptive), ("uniform", uniform)] {
        let config = ModelConfig::builder().grid(grid).build().expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &config| {
            b.iter(|| black_box(TransitionModel::fit(&history, config).expect("fit succeeds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_ablation, bench_grid_style_ablation);
criterion_main!(benches);
