//! Detection-engine throughput: cost of one snapshot step as the number
//! of watched pairs grows, serial versus crossbeam-parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_bench::{trace, trained_engine};
use gridwatch_detect::Snapshot;
use gridwatch_timeseries::Timestamp;

fn bench_engine_throughput(c: &mut Criterion) {
    let trace = trace(4);
    // A representative mid-day snapshot on the test day.
    let t = Timestamp::from_secs(15 * 86_400 + 12 * 3600);
    let mut snapshot = Snapshot::new(t);
    for id in trace.measurement_ids() {
        if let Some(v) = trace.series(id).expect("measurement exists").value_at(t) {
            snapshot.insert(id, v);
        }
    }

    let mut group = c.benchmark_group("engine_step");
    group.sample_size(20);
    for pairs in [10usize, 45, 120] {
        for parallel in [false, true] {
            let label = format!(
                "{pairs}pairs_{}",
                if parallel { "parallel" } else { "serial" }
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(pairs, parallel),
                |b, &(pairs, parallel)| {
                    b.iter_batched(
                        || trained_engine(&trace, pairs, parallel),
                        |mut engine| {
                            // Two steps so every model has a trajectory
                            // and the second step exercises scoring.
                            black_box(engine.step(&snapshot));
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
