//! Memory diet of the compact probability-row formats.
//!
//! A materialized pair model's footprint is dominated by its memoized
//! probability rows: dense rows cost 8 bytes per cell, quantized rows
//! 2 bytes per cell (arena-backed `u16` fixed-point), sparse rows 6
//! bytes per *non-zero* entry. This bench opens with a hard gate — the
//! quantized format must fit at least `QUANTIZED_DENSITY_FLOOR` times
//! as many models per GB of row cache as dense, measured on real
//! steady-state caches after a day of scoring — then benchmarks the
//! scoring throughput of each representation so the memory saving is
//! priced against its decode cost.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridwatch_bench::{pair_series, test_points, trace};
use gridwatch_core::{ModelConfig, RowFormat, TransitionModel};
use gridwatch_sim::Trace;

/// The acceptance floor: quantized rows must fit at least this many
/// times more models into the same row-payload budget as dense rows.
const QUANTIZED_DENSITY_FLOOR: usize = 4;

/// A frozen model in the given row format with its row caches warmed
/// by a full test day of scoring (the steady serving state).
fn warmed_model(trace: &Trace, format: RowFormat) -> TransitionModel {
    let history = pair_series(trace, 8);
    let config = ModelConfig::builder()
        .row_format(format)
        .build()
        .expect("valid config")
        .frozen();
    let mut model = TransitionModel::fit(&history, config).expect("history is modelable");
    for &p in &test_points(trace) {
        black_box(model.observe(p));
    }
    model
}

/// Hard-asserts the quantized memory diet before any benchmarks.
///
/// The gate compares row *payload* bytes (`row_payload_bytes`): the
/// per-cell storage is exactly 8B dense vs 2B quantized, so the same
/// cached rows must satisfy the 4x floor as an exact integer
/// inequality. The full cache footprint (payload plus index
/// bookkeeping, `approx_row_cache_bytes`) is reported alongside.
fn assert_quantized_row_cache_diet(trace: &Trace) {
    let footprint = |format| {
        let model = warmed_model(trace, format);
        let matrix = model.matrix();
        (matrix.row_payload_bytes(), matrix.approx_row_cache_bytes())
    };
    let (dense, dense_full) = footprint(RowFormat::Dense);
    let (quantized, quantized_full) = footprint(RowFormat::Quantized);
    let (sparse, sparse_full) = footprint(RowFormat::Sparse);
    assert!(dense > 0, "scoring a day must populate the dense row cache");
    assert!(quantized > 0, "quantized cache must be populated too");
    assert!(
        dense >= QUANTIZED_DENSITY_FLOOR * quantized,
        "quantized row payload fits only {:.1}x more models/GB than dense \
         (floor {QUANTIZED_DENSITY_FLOOR}x): dense {dense}B vs quantized {quantized}B",
        dense as f64 / quantized as f64,
    );
    assert!(
        quantized_full < dense_full,
        "full quantized footprint {quantized_full}B must beat dense {dense_full}B"
    );
    println!(
        "row payload per model after one scored day: dense {dense}B, \
         quantized {quantized}B ({:.1}x more models/GB), sparse {sparse}B \
         ({:.1}x more models/GB); full cache incl. index: \
         dense {dense_full}B, quantized {quantized_full}B, sparse {sparse_full}B",
        dense as f64 / quantized as f64,
        dense as f64 / sparse as f64,
    );
}

fn bench_model_rss(c: &mut Criterion) {
    let trace = trace(2);
    assert_quantized_row_cache_diet(&trace);

    let points = test_points(&trace);
    let mut group = c.benchmark_group("model_rss_scoring");
    group.sample_size(20);
    for format in [RowFormat::Dense, RowFormat::Quantized, RowFormat::Sparse] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format.name()),
            &format,
            |b, &format| {
                // The model arrives warmed: every iteration scores the
                // day through already-cached rows, isolating the decode
                // cost of the representation.
                b.iter_batched(
                    || warmed_model(&trace, format),
                    |mut model| {
                        for &p in &points {
                            black_box(model.observe(p));
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_rss);
criterion_main!(benches);
