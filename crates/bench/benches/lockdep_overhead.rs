//! Lockdep overhead: the disabled validator path must be free.
//!
//! `OrderedMutex` sits on the fabric merge path, the engine's stats
//! accumulator, the TCP accept/ingest tier, and the flight-recorder
//! ring — all hot. With the `validate` feature off (the production
//! configuration, and how this bench crate builds it) the wrapper must
//! compile down to a bare `parking_lot::Mutex`: no rank check, no
//! thread-local touch, no token bookkeeping. Besides the Criterion
//! numbers this bench opens with a hard gate, so a stray cfg that
//! leaks validator work into the disabled path fails the run outright
//! instead of hiding in a report nobody reads.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gridwatch_sync::{classes, OrderedMutex, OrderedRwLock};

/// Generous ceiling for one uncontended lock/unlock round trip through
/// the disabled wrapper. An uncontended `parking_lot` lock+unlock is a
/// pair of atomics (~5-15ns on shared CI hosts); the ceiling leaves
/// headroom for slow machines while a thread-local lookup plus vector
/// push (~30-80ns) still trips it.
const DISABLED_LOCK_CEILING_NS: f64 = 40.0;

/// Hard-asserts the disabled-path cost before any benchmarks run.
fn assert_disabled_path_is_free() {
    let ordered = OrderedMutex::new(classes::ENGINE_STATS, 0u64);
    for _ in 0..100_000 {
        *black_box(&ordered).lock() += 1;
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        *black_box(&ordered).lock() += 1;
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_LOCK_CEILING_NS,
        "disabled OrderedMutex lock+unlock costs {per_iter_ns:.1}ns \
         (ceiling {DISABLED_LOCK_CEILING_NS}ns): the validate-off path \
         is no longer zero-cost"
    );
    println!(
        "disabled OrderedMutex lock+unlock: {per_iter_ns:.2}ns \
         (ceiling {DISABLED_LOCK_CEILING_NS}ns)"
    );
}

fn bench_lockdep_overhead(c: &mut Criterion) {
    assert_disabled_path_is_free();

    let mut group = c.benchmark_group("lockdep_overhead");
    group.sample_size(20);

    group.bench_function("raw_parking_lot_mutex", |b| {
        let raw = parking_lot::Mutex::new(0u64);
        b.iter(|| *black_box(&raw).lock() += 1);
    });
    group.bench_function("ordered_mutex_disabled", |b| {
        let ordered = OrderedMutex::new(classes::ENGINE_STATS, 0u64);
        b.iter(|| *black_box(&ordered).lock() += 1);
    });
    group.bench_function("ordered_mutex_nested_pair", |b| {
        // The fabric shape: a slot guard held while taking stats.
        let outer = OrderedMutex::new(classes::FABRIC_SLOT, 0u64);
        let inner = OrderedMutex::new(classes::FABRIC_STATS, 0u64);
        b.iter(|| {
            let mut o = black_box(&outer).lock();
            *black_box(&inner).lock() += 1;
            *o += 1;
        });
    });
    group.bench_function("ordered_rwlock_read_disabled", |b| {
        let ordered = OrderedRwLock::new(classes::NET_ACCUMULATOR, 0u64);
        b.iter(|| *black_box(&ordered).read());
    });
    group.finish();
}

criterion_group!(benches, bench_lockdep_overhead);
criterion_main!(benches);
