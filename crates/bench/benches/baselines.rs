//! Head-to-head per-observation cost of the paper's model versus the
//! baseline detectors, on the same trained pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_baselines::{
    GmmDetector, LinearInvariantDetector, MarkovDetector, PairDetector, ZScoreDetector,
};
use gridwatch_bench::{pair_series, test_points, trace};

fn bench_baselines(c: &mut Criterion) {
    let trace = trace(2);
    let history = pair_series(&trace, 8);
    let points = test_points(&trace);

    let detectors: Vec<Box<dyn Fn() -> Box<dyn PairDetector>>> = vec![
        Box::new(|| Box::new(LinearInvariantDetector::default())),
        Box::new(|| Box::new(GmmDetector::default())),
        Box::new(|| Box::new(ZScoreDetector::default())),
        Box::new(|| Box::new(MarkovDetector::default())),
    ];

    let mut group = c.benchmark_group("detector_observe");
    group.sample_size(20);
    for make in &detectors {
        let name = make().name();
        group.bench_with_input(BenchmarkId::from_parameter(name), &history, |b, history| {
            b.iter_batched(
                || {
                    let mut d = make();
                    d.fit(history).expect("fit succeeds");
                    d
                },
                |mut d| {
                    for &p in &points {
                        black_box(d.observe(p));
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    let mut fit_group = c.benchmark_group("detector_fit");
    fit_group.sample_size(10);
    for make in &detectors {
        let name = make().name();
        fit_group.bench_with_input(BenchmarkId::from_parameter(name), &history, |b, history| {
            b.iter(|| {
                let mut d = make();
                d.fit(history).expect("fit succeeds");
                black_box(d)
            });
        });
    }
    fit_group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
