//! Sharded serving throughput: wall-clock cost of streaming one test
//! day through `ShardedEngine` as the shard count sweeps 1/2/4/8.
//!
//! On a multi-core host the 4-shard configuration should beat the
//! single shard by well over 1.8x once the pair count is large enough
//! to amortize the per-snapshot fan-out; on a single-core host the
//! sweep degenerates to measuring the coordination overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_bench::{trace, trained_engine};
use gridwatch_detect::Snapshot;
use gridwatch_serve::{BackpressurePolicy, ServeConfig, ShardedEngine};
use gridwatch_timeseries::Timestamp;

/// Every snapshot of the test day (day 15), at the trace's native
/// sampling interval.
fn test_day_snapshots(trace: &gridwatch_sim::Trace) -> Vec<Snapshot> {
    let start = Timestamp::from_days(15);
    let end = Timestamp::from_days(16);
    trace
        .interval()
        .ticks(start, end)
        .map(|t| {
            let mut snap = Snapshot::new(t);
            for id in trace.measurement_ids() {
                if let Some(v) = trace.series(id).expect("measurement exists").value_at(t) {
                    snap.insert(id, v);
                }
            }
            snap
        })
        .filter(|s| !s.is_empty())
        .collect()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let trace = trace(4);
    let engine = trained_engine(&trace, 120, false);
    let snapshot = engine.snapshot();
    let stream = test_day_snapshots(&trace);
    assert!(!stream.is_empty(), "test day must have snapshots");

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}shards")),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || {
                        ShardedEngine::start(
                            snapshot.clone(),
                            ServeConfig {
                                shards,
                                queue_capacity: 64,
                                backpressure: BackpressurePolicy::Block,
                                sampling: None,
                            },
                        )
                    },
                    |mut engine| {
                        for snap in &stream {
                            engine.submit(snap.clone());
                        }
                        let (reports, stats) = engine.shutdown();
                        assert_eq!(stats.reports as usize, stream.len());
                        black_box(reports)
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
