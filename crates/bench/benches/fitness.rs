//! Cost of one fitness evaluation: posterior row materialization plus
//! rank computation, as the grid size `s` and the number of distinct
//! observed destinations grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_core::fitness::score_row;
use gridwatch_core::{DecayKernel, TransitionMatrix};
use gridwatch_grid::{CellId, GridStructure};

fn bench_fitness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fitness_row_and_rank");
    group.sample_size(50);
    for side in [10usize, 20, 30] {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), side, side);
        let s = grid.cell_count();
        for destinations in [5usize, 50] {
            let mut matrix = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
            for k in 0..500 {
                matrix.observe(CellId(0), CellId((k * 7) % destinations.min(s)));
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("s{}_dest{}", s, destinations)),
                &matrix,
                |b, matrix| {
                    b.iter(|| {
                        let row = matrix.compute_row(&grid, CellId(0));
                        black_box(score_row(&row, CellId(s / 2)))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fitness);
criterion_main!(benches);
