//! Drift-layer overhead: the disabled drift path must be free.
//!
//! Every `step_scores` call crosses the drift gate — when
//! `EngineConfig::drift` is unset that gate is a single `Option`
//! discriminant check, and it must stay that cheap: the drift knobs
//! exist so operators can enable them where they matter, not so every
//! deployment pays for them. Like `obs_overhead`, this bench opens with
//! a hard gate — a disabled drift gate costing more than
//! `DISABLED_DRIFT_GATE_CEILING_NS` per call fails the run outright —
//! then measures the real per-step cost with the detector off and on,
//! on clean in-distribution data where the enabled detector only
//! observes (never rebuilds).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gridwatch_bench::{trace, trained_drift_engine};
use gridwatch_detect::{DriftConfig, Snapshot};
use gridwatch_timeseries::Timestamp;

/// Generous ceiling for one disabled drift gate (an `Option` check on
/// a field already in cache). An order of magnitude above the expected
/// cost so shared CI hosts do not flake, while an accidental fitness
/// scan or allocation on the disabled path still trips it.
const DISABLED_DRIFT_GATE_CEILING_NS: f64 = 15.0;

/// Hard-asserts the disabled drift gate's cost before any benchmarks.
fn assert_disabled_drift_gate_is_free() {
    let trace = trace(2);
    let mut engine = trained_drift_engine(&trace, 10, None);
    for _ in 0..100_000 {
        black_box(engine.drift_gate_probe());
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        black_box(engine.drift_gate_probe());
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_DRIFT_GATE_CEILING_NS,
        "disabled drift gate costs {per_iter_ns:.1}ns/call (ceiling \
         {DISABLED_DRIFT_GATE_CEILING_NS}ns): the disabled drift path is no longer free"
    );
    println!(
        "disabled drift gate: {per_iter_ns:.2}ns/call \
         (ceiling {DISABLED_DRIFT_GATE_CEILING_NS}ns)"
    );
}

fn bench_chaos_step(c: &mut Criterion) {
    assert_disabled_drift_gate_is_free();

    let trace = trace(2);
    // A representative mid-day snapshot on the test day; clean data,
    // so the enabled detector observes healthy fitness and never fires.
    let t = Timestamp::from_secs(15 * 86_400 + 12 * 3600);
    let mut snapshot = Snapshot::new(t);
    for id in trace.measurement_ids() {
        if let Some(v) = trace.series(id).expect("measurement exists").value_at(t) {
            snapshot.insert(id, v);
        }
    }

    let mut group = c.benchmark_group("chaos_step");
    group.sample_size(20);
    for (label, drift) in [
        ("step_scores_drift_off", None),
        ("step_scores_drift_on", Some(DriftConfig::default())),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || trained_drift_engine(&trace, 10, drift),
                |mut engine| {
                    black_box(engine.step_scores(black_box(&snapshot)));
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos_step);
criterion_main!(benches);
