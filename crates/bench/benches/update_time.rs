//! Figure 13(b): the per-sample online updating cost as a function of
//! the training-set size. The paper reports < 2.5 ms/sample for 9- and
//! 15-day training and < 23 ms/sample worst case for 1-day training
//! (more frequent online adaptation); the shape claim is that one model
//! update is far below the 6-minute sampling budget, with the smallest
//! training set the slowest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_bench::{test_points, trace, trained_model};

fn bench_update_time(c: &mut Criterion) {
    let trace = trace(2);
    let points = test_points(&trace);
    let mut group = c.benchmark_group("fig13b_observe_per_sample");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(4));
    for train_days in [1u64, 8, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{train_days}d_training")),
            &train_days,
            |b, &days| {
                b.iter_batched(
                    || trained_model(&trace, days),
                    |mut model| {
                        for &p in &points {
                            black_box(model.observe(p));
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update_time);
criterion_main!(benches);
