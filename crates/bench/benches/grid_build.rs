//! Cost of the MAFIA-style adaptive grid construction (Section 4.1)
//! versus history size, and versus the uniform-grid fallback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridwatch_grid::{GridBuilder, GridConfig};
use gridwatch_timeseries::Point2;

fn history(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|k| {
            let t = k as f64 / 57.0;
            Point2::new(
                50.0 + 30.0 * t.sin() + (k % 13) as f64 * 0.3,
                100.0 + 80.0 * (t * 0.7).cos() + (k % 7) as f64 * 0.5,
            )
        })
        .collect()
}

fn bench_grid_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_build");
    group.sample_size(30);
    for n in [1_000usize, 10_000, 50_000] {
        let pts = history(n);
        group.bench_with_input(BenchmarkId::new("adaptive", n), &pts, |b, pts| {
            let builder = GridBuilder::new(GridConfig::default());
            b.iter(|| black_box(builder.build(pts).expect("grid builds")));
        });
        group.bench_with_input(BenchmarkId::new("fine_units", n), &pts, |b, pts| {
            let config = GridConfig::builder()
                .units_per_dimension(200)
                .max_intervals(64)
                .build()
                .expect("valid config");
            let builder = GridBuilder::new(config);
            b.iter(|| black_box(builder.build(pts).expect("grid builds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_build);
criterion_main!(benches);
