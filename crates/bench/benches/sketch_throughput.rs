//! Sketch-gate overhead: the disabled sketch path must be free, and
//! the enabled path must stay cheap per tracked pair.
//!
//! Every `step_scores` call crosses the sketch gate — when
//! `EngineConfig::sketch` is unset that gate is a single `Option`
//! discriminant check, and it must stay that cheap: deployments that
//! never outgrow explicit pair lists must not pay for the gate. Like
//! `chaos_step`, this bench opens with a hard gate — a disabled sketch
//! gate costing more than `DISABLED_SKETCH_GATE_CEILING_NS` per call
//! fails the run outright — then measures the real per-step cost with
//! the sketch off and on, with the screen's overflow pairs tracked as
//! sketch-only candidates.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gridwatch_bench::{trace, trained_sketch_engine};
use gridwatch_detect::{SketchConfig, Snapshot};
use gridwatch_timeseries::Timestamp;

/// Generous ceiling for one disabled sketch gate (an `Option` check on
/// a field already in cache). An order of magnitude above the expected
/// cost so shared CI hosts do not flake, while an accidental candidate
/// scan or allocation on the disabled path still trips it.
const DISABLED_SKETCH_GATE_CEILING_NS: f64 = 15.0;

/// Hard-asserts the disabled sketch gate's cost before any benchmarks.
fn assert_disabled_sketch_gate_is_free() {
    let trace = trace(2);
    let mut engine = trained_sketch_engine(&trace, 10, None);
    for _ in 0..100_000 {
        black_box(engine.sketch_gate_probe());
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        black_box(engine.sketch_gate_probe());
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_SKETCH_GATE_CEILING_NS,
        "disabled sketch gate costs {per_iter_ns:.1}ns/call (ceiling \
         {DISABLED_SKETCH_GATE_CEILING_NS}ns): the disabled sketch path is no longer free"
    );
    println!(
        "disabled sketch gate: {per_iter_ns:.2}ns/call \
         (ceiling {DISABLED_SKETCH_GATE_CEILING_NS}ns)"
    );
}

fn bench_sketch_throughput(c: &mut Criterion) {
    assert_disabled_sketch_gate_is_free();

    let trace = trace(4);
    // A representative mid-day snapshot on the test day; an admission
    // threshold above 1.0 keeps every candidate a candidate, so the
    // bench measures steady gated tracking, not one-off promotions.
    let t = Timestamp::from_secs(15 * 86_400 + 12 * 3600);
    let mut snapshot = Snapshot::new(t);
    for id in trace.measurement_ids() {
        if let Some(v) = trace.series(id).expect("measurement exists").value_at(t) {
            snapshot.insert(id, v);
        }
    }
    let tracking_only = SketchConfig {
        admit_score: 2.0,
        rescore_every: 1,
        ..SketchConfig::default()
    };

    // The sketch posture trend line CI prints alongside the audit
    // burn-down: the tracked/materialized split and sketch footprint of
    // the benchmark engine after one scored step, so drift in the
    // gate's selectivity or the sketch's memory cost shows up in CI
    // logs over time.
    {
        let mut engine = trained_sketch_engine(&trace, 10, Some(tracking_only));
        black_box(engine.step_scores(&snapshot));
        let tracked = engine.tracked_pair_count();
        let materialized = engine.model_count();
        println!(
            "sketch posture: {tracked} tracked pairs, {materialized} materialized \
             models ({:.1}% of tracked), sketch bytes {}",
            materialized as f64 / tracked as f64 * 100.0,
            engine.sketch_bytes(),
        );
    }

    let mut group = c.benchmark_group("sketch_throughput");
    group.sample_size(20);
    for (label, sketch) in [
        ("step_scores_sketch_off", None),
        ("step_scores_sketch_on", Some(tracking_only)),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || trained_sketch_engine(&trace, 10, sketch),
                |mut engine| {
                    black_box(engine.step_scores(black_box(&snapshot)));
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketch_throughput);
criterion_main!(benches);
