//! Observability overhead: the disabled tracing path must be free.
//!
//! The pipeline takes a span around every stage of every snapshot, so
//! the disabled path (one relaxed atomic load, no clock read, no
//! allocation) is on the hottest loop in the system. Besides the usual
//! Criterion numbers this bench opens with a hard gate: a disabled span
//! costing more than `DISABLED_SPAN_CEILING_NS` per call fails the run
//! outright, so a regression cannot hide in a report nobody reads.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gridwatch_obs::{FlightRecorder, Stage, Tracer};

/// Generous ceiling for one disabled span (load + branch, no clock
/// read). An order of magnitude above the expected cost so slow or
/// heavily shared CI hosts do not flake, while an accidental clock read
/// (~20-60ns) or allocation still trips it.
const DISABLED_SPAN_CEILING_NS: f64 = 15.0;

/// Hard-asserts the disabled-span cost before any benchmarks run.
fn assert_disabled_path_is_free() {
    let tracer = Tracer::disabled();
    // Warm up, then time a tight loop long enough to drown out timer
    // granularity (~10ms at the ceiling).
    for _ in 0..100_000 {
        black_box(tracer.span(black_box(Stage::Score)));
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        black_box(tracer.span(black_box(Stage::Score)));
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_SPAN_CEILING_NS,
        "disabled span costs {per_iter_ns:.1}ns/call (ceiling {DISABLED_SPAN_CEILING_NS}ns): \
         the disabled tracing path is no longer free"
    );
    println!("disabled span: {per_iter_ns:.2}ns/call (ceiling {DISABLED_SPAN_CEILING_NS}ns)");
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_disabled_path_is_free();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    group.bench_function("disabled_span", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| black_box(tracer.span(black_box(Stage::Score))));
    });
    group.bench_function("enabled_span", |b| {
        let tracer = Tracer::enabled();
        b.iter(|| black_box(tracer.span(black_box(Stage::Score))));
    });
    group.bench_function("record_ns_enabled", |b| {
        let tracer = Tracer::enabled();
        b.iter(|| tracer.record_ns(black_box(Stage::Score), black_box(1_250)));
    });
    group.bench_function("flight_recorder_event", |b| {
        let recorder = FlightRecorder::default();
        b.iter(|| recorder.record("bench", format_args!("event {}", black_box(7u64))));
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
