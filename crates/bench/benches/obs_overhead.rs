//! Observability overhead: the disabled tracing path must be free.
//!
//! The pipeline takes a span around every stage of every snapshot, so
//! the disabled path (one relaxed atomic load, no clock read, no
//! allocation) is on the hottest loop in the system. Besides the usual
//! Criterion numbers this bench opens with a hard gate: a disabled span
//! costing more than `DISABLED_SPAN_CEILING_NS` per call fails the run
//! outright, so a regression cannot hide in a report nobody reads.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gridwatch_obs::{ExemplarConfig, ExemplarTracer, FlightRecorder, SpanSlice, Stage, Tracer};

/// Generous ceiling for one disabled span (load + branch, no clock
/// read). An order of magnitude above the expected cost so slow or
/// heavily shared CI hosts do not flake, while an accidental clock read
/// (~20-60ns) or allocation still trips it.
const DISABLED_SPAN_CEILING_NS: f64 = 15.0;

/// Hard-asserts the disabled-span cost before any benchmarks run.
fn assert_disabled_path_is_free() {
    let tracer = Tracer::disabled();
    // Warm up, then time a tight loop long enough to drown out timer
    // granularity (~10ms at the ceiling).
    for _ in 0..100_000 {
        black_box(tracer.span(black_box(Stage::Score)));
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        black_box(tracer.span(black_box(Stage::Score)));
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_SPAN_CEILING_NS,
        "disabled span costs {per_iter_ns:.1}ns/call (ceiling {DISABLED_SPAN_CEILING_NS}ns): \
         the disabled tracing path is no longer free"
    );
    println!("disabled span: {per_iter_ns:.2}ns/call (ceiling {DISABLED_SPAN_CEILING_NS}ns)");
}

/// The exemplar layer rides the same hot loop (an `open`/`record`/
/// `finalize` attempt per snapshot), so its disabled path is held to
/// the same ceiling: one relaxed load and a branch, nothing else.
fn assert_disabled_exemplar_path_is_free() {
    let exemplar = ExemplarTracer::disabled();
    let slice = SpanSlice::new(Stage::Score, 0, 1_250, "bench");
    for _ in 0..100_000 {
        exemplar.record(black_box(7), black_box(slice.clone()));
    }
    let iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..iters {
        // `is_enabled` is the guard every call site takes first; the
        // timed step is guard + the short-circuited record call.
        if black_box(exemplar.is_enabled()) {
            exemplar.record(black_box(7), black_box(slice.clone()));
        }
    }
    let per_iter_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    assert!(
        per_iter_ns <= DISABLED_SPAN_CEILING_NS,
        "disabled exemplar step costs {per_iter_ns:.1}ns/call (ceiling \
         {DISABLED_SPAN_CEILING_NS}ns): the disabled exemplar path is no longer free"
    );
    println!(
        "disabled exemplar step: {per_iter_ns:.2}ns/call (ceiling {DISABLED_SPAN_CEILING_NS}ns)"
    );
}

/// Prints the exemplar capture posture after a representative burst,
/// for the CI trend line.
fn print_exemplar_posture() {
    let exemplar = ExemplarTracer::enabled(ExemplarConfig {
        head_sample_every: 4,
        ring_capacity: 64,
        ..ExemplarConfig::default()
    });
    for seq in 0..1_024u64 {
        exemplar.open(seq, "bench", seq);
        exemplar.record(seq, SpanSlice::new(Stage::Score, 0, 1_250, "bench"));
        exemplar.finalize(seq, seq.is_multiple_of(97));
    }
    let posture = exemplar.posture();
    println!(
        "exemplar posture: retained={} dropped={} bytes={}",
        posture.retained, posture.dropped, posture.bytes
    );
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_disabled_path_is_free();
    assert_disabled_exemplar_path_is_free();
    print_exemplar_posture();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    group.bench_function("disabled_span", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| black_box(tracer.span(black_box(Stage::Score))));
    });
    group.bench_function("enabled_span", |b| {
        let tracer = Tracer::enabled();
        b.iter(|| black_box(tracer.span(black_box(Stage::Score))));
    });
    group.bench_function("record_ns_enabled", |b| {
        let tracer = Tracer::enabled();
        b.iter(|| tracer.record_ns(black_box(Stage::Score), black_box(1_250)));
    });
    group.bench_function("flight_recorder_event", |b| {
        let recorder = FlightRecorder::default();
        b.iter(|| recorder.record("bench", format_args!("event {}", black_box(7u64))));
    });
    group.bench_function("exemplar_full_trace_enabled", |b| {
        let exemplar = ExemplarTracer::enabled(ExemplarConfig {
            head_sample_every: 1,
            ..ExemplarConfig::default()
        });
        let mut seq = 0u64;
        b.iter(|| {
            exemplar.open(seq, "bench", seq);
            exemplar.record(
                seq,
                SpanSlice::new(Stage::Score, 0, black_box(1_250), "bench"),
            );
            exemplar.finalize(seq, false);
            seq += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
