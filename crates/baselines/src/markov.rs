use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_timeseries::{PairSeries, Point2};

use crate::detector::{BaselineError, PairDetector};

/// The paper's transition-probability model exposed through the common
/// [`PairDetector`] interface, so it can be benchmarked head-to-head
/// against the baselines.
///
/// The normality score is the model's rank-based fitness `Q^{a,b}`.
#[derive(Debug, Clone, Default)]
pub struct MarkovDetector {
    config: ModelConfig,
    model: Option<TransitionModel>,
}

impl MarkovDetector {
    /// Creates an unfitted detector with the given model configuration.
    pub fn new(config: ModelConfig) -> Self {
        MarkovDetector {
            config,
            model: None,
        }
    }

    /// The wrapped model, if fitted.
    pub fn model(&self) -> Option<&TransitionModel> {
        self.model.as_ref()
    }
}

impl PairDetector for MarkovDetector {
    fn name(&self) -> &'static str {
        "grid-markov"
    }

    fn fit(&mut self, history: &PairSeries) -> Result<(), BaselineError> {
        self.model = Some(TransitionModel::fit(history, self.config)?);
        Ok(())
    }

    fn observe(&mut self, p: Point2) -> f64 {
        match self.model.as_mut() {
            Some(model) => model.observe(p).score.map(|s| s.fitness()).unwrap_or(0.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_scores_match_model_semantics() {
        let history = PairSeries::from_samples((0..300u64).map(|k| {
            let x = (k % 60) as f64;
            (k * 360, x, 2.0 * x)
        }))
        .unwrap();
        let mut d = MarkovDetector::default();
        d.fit(&history).unwrap();
        assert_eq!(d.name(), "grid-markov");
        let good = d.observe(Point2::new(30.0, 60.0));
        let bad = d.observe(Point2::new(59.0, 0.0));
        assert!(good > bad, "good {good} vs bad {bad}");
        assert!(d.model().is_some());
    }

    #[test]
    fn unfitted_scores_zero() {
        let mut d = MarkovDetector::default();
        assert_eq!(d.observe(Point2::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn fit_error_propagates() {
        let single = PairSeries::from_samples([(0, 1.0, 1.0)]).unwrap();
        let err = MarkovDetector::default().fit(&single).unwrap_err();
        assert!(matches!(err, BaselineError::Model(_)));
    }
}
