use serde::{Deserialize, Serialize};

use gridwatch_timeseries::stats::Welford;
use gridwatch_timeseries::{PairSeries, Point2};

use crate::detector::{BaselineError, PairDetector};

/// The single-measurement monitoring strawman from the paper's
/// introduction: score each dimension independently by its z-score
/// against the training distribution.
///
/// "A sudden increase in the values of a single measurement may not
/// indicate a problem … it could be caused by a flood of user requests" —
/// this detector flags exactly those events, demonstrating the
/// false-positive failure mode correlation models avoid.
///
/// The normality score is `exp(−½ (z_max / 3)²)` where `z_max` is the
/// larger of the two per-dimension |z-scores|.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ZScoreDetector {
    x: Option<Moments>,
    y: Option<Moments>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Moments {
    mean: f64,
    stddev: f64,
}

impl ZScoreDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        ZScoreDetector::default()
    }

    fn z(m: &Moments, v: f64) -> f64 {
        (v - m.mean).abs() / m.stddev
    }
}

impl PairDetector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "z-score"
    }

    fn fit(&mut self, history: &PairSeries) -> Result<(), BaselineError> {
        if history.len() < 2 {
            return Err(BaselineError::InsufficientHistory {
                points: history.len(),
                required: 2,
            });
        }
        let (xs, ys) = history.columns();
        let moments = |vals: &[f64], dim: &str| -> Result<Moments, BaselineError> {
            let mut w = Welford::new();
            vals.iter().for_each(|&v| w.update(v));
            let sd = w.population_stddev().expect("non-empty");
            if sd == 0.0 {
                return Err(BaselineError::DegenerateHistory {
                    reason: format!("{dim} dimension has zero variance"),
                });
            }
            Ok(Moments {
                mean: w.mean().expect("non-empty"),
                stddev: sd,
            })
        };
        self.x = Some(moments(&xs, "x")?);
        self.y = Some(moments(&ys, "y")?);
        Ok(())
    }

    fn observe(&mut self, p: Point2) -> f64 {
        let (Some(mx), Some(my)) = (self.x.as_ref(), self.y.as_ref()) else {
            return 0.0;
        };
        if !p.is_finite() {
            return 0.0;
        }
        let z = Self::z(mx, p.x).max(Self::z(my, p.y)) / 3.0;
        (-0.5 * z * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> PairSeries {
        // x around 100 ± ~10, y around 50 ± ~5.
        PairSeries::from_samples((0..200u64).map(|k| {
            let t = k as f64 / 10.0;
            (k, 100.0 + 10.0 * t.sin(), 50.0 + 5.0 * t.cos())
        }))
        .unwrap()
    }

    #[test]
    fn typical_points_score_high() {
        let mut d = ZScoreDetector::new();
        d.fit(&history()).unwrap();
        assert!(d.observe(Point2::new(100.0, 50.0)) > 0.9);
        assert_eq!(d.name(), "z-score");
    }

    #[test]
    fn surges_score_low_even_if_correlated() {
        // The false-positive failure mode: a coordinated surge (both
        // metrics triple) is "anomalous" to a per-metric detector.
        let mut d = ZScoreDetector::new();
        d.fit(&history()).unwrap();
        let s = d.observe(Point2::new(300.0, 150.0));
        assert!(s < 0.01, "per-metric detector flags the surge: {s}");
    }

    #[test]
    fn degenerate_dimension_rejected() {
        let flat = PairSeries::from_samples((0..10u64).map(|k| (k, 1.0, k as f64))).unwrap();
        let err = ZScoreDetector::new().fit(&flat).unwrap_err();
        assert!(matches!(err, BaselineError::DegenerateHistory { .. }));
    }

    #[test]
    fn unfitted_scores_zero() {
        let mut d = ZScoreDetector::new();
        assert_eq!(d.observe(Point2::new(0.0, 0.0)), 0.0);
    }
}
