use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{PairSeries, Point2};

use crate::detector::{BaselineError, PairDetector};

/// Configuration for the Gaussian-mixture baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components (ellipses).
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// EM stops when the mean log-likelihood improves by less than this.
    pub tolerance: f64,
    /// The Mahalanobis distance treated as the ellipse boundary; the
    /// normality score is `exp(−½ (d / boundary)²)` with `d` the distance
    /// to the nearest component.
    pub boundary: f64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            components: 3,
            max_iterations: 100,
            tolerance: 1e-6,
            boundary: 3.0,
        }
    }
}

/// One 2-D Gaussian component with full covariance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Component {
    weight: f64,
    mean: [f64; 2],
    /// Covariance entries: xx, xy, yy.
    cov: [f64; 3],
}

impl Component {
    /// Inverse covariance and determinant; regularized if singular.
    fn inverse(&self) -> ([f64; 3], f64) {
        let [xx, xy, yy] = self.cov;
        let det = (xx * yy - xy * xy).max(1e-300);
        ([yy / det, -xy / det, xx / det], det)
    }

    fn mahalanobis_sq(&self, p: Point2) -> f64 {
        let dx = p.x - self.mean[0];
        let dy = p.y - self.mean[1];
        let ([ixx, ixy, iyy], _) = self.inverse();
        (dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy).max(0.0)
    }

    fn log_density(&self, p: Point2) -> f64 {
        let (_, det) = self.inverse();
        let maha = self.mahalanobis_sq(p);
        -0.5 * maha - 0.5 * det.ln() - std::f64::consts::LN_2 - (std::f64::consts::PI).ln()
    }
}

/// The Gaussian-mixture "ellipse" baseline (Guo et al., DSN 2006):
/// assume the two-dimensional points come from a Gaussian mixture, model
/// the data clusters as ellipses, and flag points falling outside every
/// cluster boundary.
///
/// The mixture is fitted with expectation–maximization (EM), initialized
/// deterministically by spreading component means over the data's value
/// range (quantile-based), so fitting is reproducible without an RNG.
///
/// # Example
///
/// ```
/// use gridwatch_baselines::{GmmDetector, PairDetector};
/// use gridwatch_timeseries::{PairSeries, Point2};
///
/// // Two clusters: around (0, 0) and (10, 10).
/// let history = PairSeries::from_samples((0..200u64).map(|k| {
///     let c = if k % 2 == 0 { 0.0 } else { 10.0 };
///     let jitter = (k % 7) as f64 * 0.1;
///     (k, c + jitter, c + jitter * 0.5)
/// }))?;
/// let mut d = GmmDetector::default();
/// d.fit(&history)?;
/// assert!(d.observe(Point2::new(10.2, 10.1)) > 0.5);
/// assert!(d.observe(Point2::new(0.0, 10.0)) < 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmDetector {
    config: GmmConfig,
    components: Vec<Component>,
}

impl Default for GmmDetector {
    fn default() -> Self {
        GmmDetector::new(GmmConfig::default())
    }
}

impl GmmDetector {
    /// Creates an unfitted detector.
    pub fn new(config: GmmConfig) -> Self {
        GmmDetector {
            config,
            components: Vec::new(),
        }
    }

    /// The fitted component count (0 before fitting).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The squared Mahalanobis distance from `p` to the nearest fitted
    /// component, or `None` before fitting.
    pub fn nearest_mahalanobis_sq(&self, p: Point2) -> Option<f64> {
        self.components
            .iter()
            .map(|c| c.mahalanobis_sq(p))
            .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
    }

    /// Mean log-likelihood of points under the current mixture.
    fn mean_log_likelihood(&self, points: &[Point2]) -> f64 {
        points
            .iter()
            .map(|&p| {
                let mut best = f64::NEG_INFINITY;
                let mut sum = 0.0;
                let logs: Vec<f64> = self
                    .components
                    .iter()
                    .map(|c| c.weight.max(1e-300).ln() + c.log_density(p))
                    .collect();
                for &l in &logs {
                    best = best.max(l);
                }
                for &l in &logs {
                    sum += (l - best).exp();
                }
                best + sum.ln()
            })
            .sum::<f64>()
            / points.len() as f64
    }
}

impl PairDetector for GmmDetector {
    fn name(&self) -> &'static str {
        "gaussian-mixture"
    }

    fn fit(&mut self, history: &PairSeries) -> Result<(), BaselineError> {
        let k = self.config.components;
        if history.len() < k.max(2) * 3 {
            return Err(BaselineError::InsufficientHistory {
                points: history.len(),
                required: k.max(2) * 3,
            });
        }
        let points = history.points();
        let n = points.len();

        // Deterministic initialization: means at quantile positions along
        // the x-sorted data, covariance from the global spread.
        let mut by_x: Vec<Point2> = points.to_vec();
        by_x.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite points"));
        let global = global_covariance(points);
        if global[0] <= 0.0 && global[2] <= 0.0 {
            return Err(BaselineError::DegenerateHistory {
                reason: "all points identical".into(),
            });
        }
        let init_cov = [
            (global[0] / k as f64).max(1e-12),
            0.0,
            (global[2] / k as f64).max(1e-12),
        ];
        self.components = (0..k)
            .map(|j| {
                let idx = (2 * j + 1) * n / (2 * k);
                Component {
                    weight: 1.0 / k as f64,
                    mean: [by_x[idx].x, by_x[idx].y],
                    cov: init_cov,
                }
            })
            .collect();

        // EM iterations.
        let mut responsibilities = vec![vec![0.0f64; k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..self.config.max_iterations {
            // E step.
            for (i, &p) in points.iter().enumerate() {
                let logs: Vec<f64> = self
                    .components
                    .iter()
                    .map(|c| c.weight.max(1e-300).ln() + c.log_density(p))
                    .collect();
                let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for &l in &logs {
                    z += (l - max).exp();
                }
                for (j, &l) in logs.iter().enumerate() {
                    responsibilities[i][j] = ((l - max).exp() / z).max(0.0);
                }
            }
            // M step.
            for j in 0..k {
                let nj: f64 = responsibilities.iter().map(|r| r[j]).sum();
                if nj < 1e-9 {
                    continue; // dead component; keep its parameters
                }
                let mut mean = [0.0, 0.0];
                for (i, &p) in points.iter().enumerate() {
                    mean[0] += responsibilities[i][j] * p.x;
                    mean[1] += responsibilities[i][j] * p.y;
                }
                mean[0] /= nj;
                mean[1] /= nj;
                let mut cov = [0.0, 0.0, 0.0];
                for (i, &p) in points.iter().enumerate() {
                    let dx = p.x - mean[0];
                    let dy = p.y - mean[1];
                    let r = responsibilities[i][j];
                    cov[0] += r * dx * dx;
                    cov[1] += r * dx * dy;
                    cov[2] += r * dy * dy;
                }
                // Regularize to keep covariances invertible.
                let reg_x = (global[0] * 1e-6).max(1e-12);
                let reg_y = (global[2] * 1e-6).max(1e-12);
                cov[0] = cov[0] / nj + reg_x;
                cov[1] /= nj;
                cov[2] = cov[2] / nj + reg_y;
                self.components[j] = Component {
                    weight: nj / n as f64,
                    mean,
                    cov,
                };
            }
            let ll = self.mean_log_likelihood(points);
            if (ll - prev_ll).abs() < self.config.tolerance {
                break;
            }
            prev_ll = ll;
        }
        Ok(())
    }

    fn observe(&mut self, p: Point2) -> f64 {
        if self.components.is_empty() || !p.is_finite() {
            return 0.0;
        }
        let d2 = self
            .nearest_mahalanobis_sq(p)
            .expect("components non-empty");
        let z = d2.sqrt() / self.config.boundary;
        (-0.5 * z * z).exp()
    }
}

/// Population covariance entries `[xx, xy, yy]` of a point set.
fn global_covariance(points: &[Point2]) -> [f64; 3] {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.x).sum::<f64>() / n;
    let my = points.iter().map(|p| p.y).sum::<f64>() / n;
    let mut cov = [0.0, 0.0, 0.0];
    for p in points {
        let dx = p.x - mx;
        let dy = p.y - my;
        cov[0] += dx * dx;
        cov[1] += dx * dy;
        cov[2] += dy * dy;
    }
    cov.map(|c| c / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight clusters at (0,0) and (100, 50).
    fn bimodal_history() -> PairSeries {
        PairSeries::from_samples((0..300u64).map(|k| {
            let (cx, cy) = if k % 2 == 0 {
                (0.0, 0.0)
            } else {
                (100.0, 50.0)
            };
            let jx = ((k * 7) % 11) as f64 * 0.2 - 1.0;
            let jy = ((k * 13) % 7) as f64 * 0.2 - 0.6;
            (k, cx + jx, cy + jy)
        }))
        .unwrap()
    }

    #[test]
    fn finds_both_clusters() {
        let mut d = GmmDetector::new(GmmConfig {
            components: 2,
            ..GmmConfig::default()
        });
        d.fit(&bimodal_history()).unwrap();
        assert_eq!(d.component_count(), 2);
        // Points inside each cluster score well; between clusters, badly.
        assert!(d.observe(Point2::new(0.2, -0.1)) > 0.3);
        assert!(d.observe(Point2::new(100.1, 50.2)) > 0.3);
        assert!(d.observe(Point2::new(50.0, 25.0)) < 0.05);
        assert_eq!(d.name(), "gaussian-mixture");
    }

    #[test]
    fn score_decreases_with_distance() {
        let mut d = GmmDetector::new(GmmConfig {
            components: 1,
            ..GmmConfig::default()
        });
        let tight = PairSeries::from_samples(
            (0..100u64).map(|k| (k, ((k * 3) % 17) as f64 * 0.1, ((k * 5) % 13) as f64 * 0.1)),
        )
        .unwrap();
        d.fit(&tight).unwrap();
        let s0 = d.observe(Point2::new(0.8, 0.6));
        let s1 = d.observe(Point2::new(5.0, 5.0));
        let s2 = d.observe(Point2::new(50.0, 50.0));
        assert!(s0 > s1 && s1 > s2, "{s0} > {s1} > {s2}");
    }

    #[test]
    fn insufficient_history_rejected() {
        let short = PairSeries::from_samples((0..4u64).map(|k| (k, k as f64, k as f64))).unwrap();
        let err = GmmDetector::default().fit(&short).unwrap_err();
        assert!(matches!(err, BaselineError::InsufficientHistory { .. }));
    }

    #[test]
    fn degenerate_history_rejected() {
        let flat = PairSeries::from_samples((0..50u64).map(|k| (k, 2.0, 3.0))).unwrap();
        let err = GmmDetector::default().fit(&flat).unwrap_err();
        assert!(matches!(err, BaselineError::DegenerateHistory { .. }));
    }

    #[test]
    fn unfitted_scores_zero() {
        let mut d = GmmDetector::default();
        assert_eq!(d.observe(Point2::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn fitting_is_deterministic() {
        let mut a = GmmDetector::default();
        let mut b = GmmDetector::default();
        a.fit(&bimodal_history()).unwrap();
        b.fit(&bimodal_history()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weights_sum_to_one() {
        let mut d = GmmDetector::default();
        d.fit(&bimodal_history()).unwrap();
        let total: f64 = d.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
    }
}
