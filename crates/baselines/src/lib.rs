//! Baseline pairwise anomaly detectors the paper compares against (its
//! Related Work, Section 2), implemented from scratch:
//!
//! * [`LinearInvariantDetector`] — linear-regression invariants between
//!   measurement pairs (Jiang et al., "Discovering likely invariants of
//!   distributed transaction systems…"): fit `y ≈ a·x + b` offline, flag
//!   observations whose residual leaves the training residual band. Only
//!   valid for linearly correlated pairs — the paper's criticism.
//! * [`GmmDetector`] — Gaussian-mixture "ellipse" models (Guo et al.,
//!   "Tracking probabilistic correlation of monitoring data for fault
//!   detection in complex systems"): fit a 2-D mixture by EM, flag points
//!   with a large Mahalanobis distance to every component. Captures
//!   cluster-shaped non-linear correlations but assumes elliptic
//!   clusters and ignores temporal order.
//! * [`ZScoreDetector`] — the single-measurement strawman from the
//!   paper's introduction: per-dimension sliding-window z-scores. Flags
//!   any load surge, even correlation-preserving ones (the
//!   false-positive failure mode the paper highlights).
//! * [`MarkovDetector`] — the paper's own transition-probability model
//!   behind the same [`PairDetector`] interface, so all four can be
//!   benchmarked head-to-head.
//!
//! All detectors emit a *normality score* in `[0, 1]` per observation
//! (1 = perfectly normal), comparable to the paper's fitness score.
//!
//! # Example
//!
//! ```
//! use gridwatch_baselines::{LinearInvariantDetector, MarkovDetector, PairDetector};
//! use gridwatch_timeseries::{PairSeries, Point2};
//!
//! let history = PairSeries::from_samples(
//!     (0..300u64).map(|k| {
//!         let x = (k % 50) as f64 + 1.0;
//!         (k * 360, x, 3.0 * x + 2.0)
//!     }),
//! )?;
//! let mut linreg = LinearInvariantDetector::default();
//! linreg.fit(&history)?;
//! let mut markov = MarkovDetector::default();
//! markov.fit(&history)?;
//!
//! // Both catch a broken linear relation.
//! assert!(linreg.observe(Point2::new(25.0, 0.0)) < 0.5);
//! assert!(markov.observe(Point2::new(25.0, 0.0)) < 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod detector;
mod gmm;
mod linreg;
mod markov;
mod zscore;

pub use detector::{BaselineError, PairDetector};
pub use gmm::{GmmConfig, GmmDetector};
pub use linreg::LinearInvariantDetector;
pub use markov::MarkovDetector;
pub use zscore::ZScoreDetector;
