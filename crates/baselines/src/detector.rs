use std::error::Error;
use std::fmt;

use gridwatch_core::ModelError;
use gridwatch_timeseries::{PairSeries, Point2};

/// Errors produced while fitting a baseline detector.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The training series was too small for this detector.
    InsufficientHistory {
        /// Points provided.
        points: usize,
        /// Points required.
        required: usize,
    },
    /// The training data is degenerate for this detector (e.g. zero
    /// variance on a needed dimension).
    DegenerateHistory {
        /// Explanation.
        reason: String,
    },
    /// The wrapped transition model failed to fit.
    Model(ModelError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InsufficientHistory { points, required } => write!(
                f,
                "detector needs at least {required} history points, got {points}"
            ),
            BaselineError::DegenerateHistory { reason } => {
                write!(f, "degenerate training data: {reason}")
            }
            BaselineError::Model(e) => write!(f, "transition model fit failed: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for BaselineError {
    fn from(e: ModelError) -> Self {
        BaselineError::Model(e)
    }
}

/// A pairwise anomaly detector: trained offline on a pair's history,
/// then fed the online stream point by point.
///
/// Implementations return a *normality score* in `[0, 1]` per observed
/// point (1 = perfectly normal, 0 = maximally anomalous), directly
/// comparable to the paper's fitness score. Detectors are free to use
/// the observation to update internal state (sliding windows, adaptive
/// models).
pub trait PairDetector: fmt::Debug {
    /// A short human-readable name for result tables.
    fn name(&self) -> &'static str;

    /// Fits the detector on history data.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] when the history is too small or
    /// degenerate for this detector.
    fn fit(&mut self, history: &PairSeries) -> Result<(), BaselineError>;

    /// Consumes one online observation and returns its normality score.
    fn observe(&mut self, p: Point2) -> f64;

    /// How much of the value space this detector can meaningfully judge,
    /// in `[0, 1]`; e.g. a linear invariant with poor fit reports a low
    /// validity so the caller can discard it (as the invariant-mining
    /// baseline prunes weak invariants). Defaults to 1.
    fn validity(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = BaselineError::InsufficientHistory {
            points: 1,
            required: 10,
        };
        assert!(e.to_string().contains("at least 10"));
        assert!(e.source().is_none());
        let e = BaselineError::DegenerateHistory {
            reason: "x has zero variance".into(),
        };
        assert!(e.to_string().contains("zero variance"));
        let e = BaselineError::from(ModelError::InsufficientHistory { points: 1 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<BaselineError>();
    }
}
