use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{PairSeries, Point2};

use crate::detector::{BaselineError, PairDetector};

/// The linear-regression invariant baseline (Jiang et al., Cluster
/// Computing 2006; Munawar et al., SEAMS 2008).
///
/// Offline, fit `y ≈ a·x + b` by ordinary least squares and record the
/// training residual standard deviation `σ` and the coefficient of
/// determination `R²`. Online, the normality score decays with the
/// standardized residual: `exp(−½ (r / kσ)²)` with `k = 3`, so a point
/// on the line scores 1 and a point `3σ` off the band scores `≈ 0.61`,
/// dropping fast beyond.
///
/// `R²` is exposed as [`PairDetector::validity`]: invariant-mining
/// systems discard regressions that do not actually fit — exactly the
/// limitation the paper criticizes ("existing work only focuses on one
/// type of correlations").
///
/// # Example
///
/// ```
/// use gridwatch_baselines::{LinearInvariantDetector, PairDetector};
/// use gridwatch_timeseries::{PairSeries, Point2};
///
/// let history = PairSeries::from_samples(
///     (0..100u64).map(|k| (k, k as f64, 2.0 * k as f64 + 1.0)),
/// )?;
/// let mut d = LinearInvariantDetector::default();
/// d.fit(&history)?;
/// assert!(d.observe(Point2::new(50.0, 101.0)) > 0.9);
/// assert!(d.observe(Point2::new(50.0, 500.0)) < 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearInvariantDetector {
    fitted: Option<Fit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Fit {
    slope: f64,
    intercept: f64,
    residual_sigma: f64,
    r_squared: f64,
}

impl LinearInvariantDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        LinearInvariantDetector::default()
    }

    /// The fitted slope `a`, if fitted.
    pub fn slope(&self) -> Option<f64> {
        self.fitted.map(|f| f.slope)
    }

    /// The fitted intercept `b`, if fitted.
    pub fn intercept(&self) -> Option<f64> {
        self.fitted.map(|f| f.intercept)
    }

    /// The training `R²`, if fitted.
    pub fn r_squared(&self) -> Option<f64> {
        self.fitted.map(|f| f.r_squared)
    }

    /// The training residual standard deviation, if fitted.
    pub fn residual_sigma(&self) -> Option<f64> {
        self.fitted.map(|f| f.residual_sigma)
    }
}

impl PairDetector for LinearInvariantDetector {
    fn name(&self) -> &'static str {
        "linear-invariant"
    }

    fn fit(&mut self, history: &PairSeries) -> Result<(), BaselineError> {
        if history.len() < 3 {
            return Err(BaselineError::InsufficientHistory {
                points: history.len(),
                required: 3,
            });
        }
        let (xs, ys) = history.columns();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(&ys) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
            syy += (y - my) * (y - my);
        }
        if sxx == 0.0 {
            return Err(BaselineError::DegenerateHistory {
                reason: "x dimension has zero variance".into(),
            });
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| {
                let r = y - (slope * x + intercept);
                r * r
            })
            .sum();
        let r_squared = if syy == 0.0 { 0.0 } else { 1.0 - ss_res / syy };
        // Floor σ at a tiny fraction of the y spread so a perfect fit
        // doesn't divide by zero.
        let spread = syy.sqrt().max(1e-12);
        let residual_sigma = (ss_res / n).sqrt().max(1e-9 * spread);
        self.fitted = Some(Fit {
            slope,
            intercept,
            residual_sigma,
            r_squared,
        });
        Ok(())
    }

    fn observe(&mut self, p: Point2) -> f64 {
        let Some(fit) = self.fitted else {
            return 0.0;
        };
        if !p.is_finite() {
            return 0.0;
        }
        let residual = p.y - (fit.slope * p.x + fit.intercept);
        let z = residual / (3.0 * fit.residual_sigma);
        (-0.5 * z * z).exp()
    }

    fn validity(&self) -> f64 {
        self.fitted
            .map(|f| f.r_squared.clamp(0.0, 1.0))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_history() -> PairSeries {
        PairSeries::from_samples((0..200u64).map(|k| {
            let x = (k % 100) as f64;
            (k, x, 2.0 * x + 5.0)
        }))
        .unwrap()
    }

    #[test]
    fn recovers_slope_and_intercept() {
        let mut d = LinearInvariantDetector::new();
        d.fit(&linear_history()).unwrap();
        assert!((d.slope().unwrap() - 2.0).abs() < 1e-9);
        assert!((d.intercept().unwrap() - 5.0).abs() < 1e-9);
        assert!(d.r_squared().unwrap() > 0.999);
        assert_eq!(d.name(), "linear-invariant");
    }

    #[test]
    fn on_line_scores_high_off_line_low() {
        let mut d = LinearInvariantDetector::new();
        d.fit(&linear_history()).unwrap();
        assert!(d.observe(Point2::new(50.0, 105.0)) > 0.99);
        assert!(d.observe(Point2::new(50.0, 300.0)) < 1e-6);
    }

    #[test]
    fn validity_is_low_for_nonlinear_pairs() {
        // A non-monotone, non-linear relation: y = sin(x).
        let history = PairSeries::from_samples((0..400u64).map(|k| {
            let x = k as f64 * 0.1;
            (k, x.sin(), (x * 1.7).sin())
        }))
        .unwrap();
        let mut d = LinearInvariantDetector::new();
        d.fit(&history).unwrap();
        assert!(
            d.validity() < 0.3,
            "nonlinear pair should yield a weak invariant, R² = {}",
            d.validity()
        );
    }

    #[test]
    fn degenerate_x_rejected() {
        let flat = PairSeries::from_samples((0..10u64).map(|k| (k, 1.0, k as f64))).unwrap();
        let err = LinearInvariantDetector::new().fit(&flat).unwrap_err();
        assert!(matches!(err, BaselineError::DegenerateHistory { .. }));
    }

    #[test]
    fn unfitted_detector_scores_zero() {
        let mut d = LinearInvariantDetector::new();
        assert_eq!(d.observe(Point2::new(1.0, 1.0)), 0.0);
        assert_eq!(d.validity(), 0.0);
    }

    #[test]
    fn too_short_history_rejected() {
        let short = PairSeries::from_samples([(0, 1.0, 1.0), (1, 2.0, 2.0)]).unwrap();
        let err = LinearInvariantDetector::new().fit(&short).unwrap_err();
        assert!(matches!(err, BaselineError::InsufficientHistory { .. }));
    }

    #[test]
    fn perfect_fit_does_not_divide_by_zero() {
        let exact =
            PairSeries::from_samples((0..50u64).map(|k| (k, k as f64, 3.0 * k as f64))).unwrap();
        let mut d = LinearInvariantDetector::new();
        d.fit(&exact).unwrap();
        let s = d.observe(Point2::new(10.0, 30.0));
        assert!(s > 0.99 && s.is_finite());
    }
}
