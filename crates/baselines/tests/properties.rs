//! Property-based tests for the baseline detectors.

use gridwatch_baselines::{
    GmmDetector, LinearInvariantDetector, MarkovDetector, PairDetector, ZScoreDetector,
};
use gridwatch_timeseries::{PairSeries, Point2};
use proptest::prelude::*;

proptest! {
    #[test]
    fn linreg_recovers_arbitrary_lines(
        slope in -50.0f64..50.0,
        intercept in -100.0f64..100.0,
        n in 10usize..200,
    ) {
        prop_assume!(slope.abs() > 1e-3);
        let history = PairSeries::from_samples((0..n as u64).map(|k| {
            let x = k as f64;
            (k, x, slope * x + intercept)
        }))
        .unwrap();
        let mut d = LinearInvariantDetector::default();
        d.fit(&history).unwrap();
        prop_assert!((d.slope().unwrap() - slope).abs() < 1e-6);
        prop_assert!((d.intercept().unwrap() - intercept).abs() < 1e-4);
        prop_assert!(d.validity() > 0.999);
        // A point on the line scores ~1.
        let x = n as f64 / 2.0;
        prop_assert!(d.observe(Point2::new(x, slope * x + intercept)) > 0.99);
    }

    #[test]
    fn linreg_scores_decrease_with_residual(
        slope in 0.5f64..5.0,
        offsets in prop::collection::vec(0.0f64..100.0, 2..10),
    ) {
        let history = PairSeries::from_samples((0..100u64).map(|k| {
            let x = k as f64;
            // Mild jitter so sigma > 0.
            (k, x, slope * x + ((k % 7) as f64 - 3.0) * 0.1)
        }))
        .unwrap();
        let mut d = LinearInvariantDetector::default();
        d.fit(&history).unwrap();
        let mut sorted = offsets.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::INFINITY;
        for off in sorted {
            let s = d.observe(Point2::new(50.0, slope * 50.0 + off));
            prop_assert!(s <= prev + 1e-12, "score must fall as residual grows");
            prev = s;
        }
    }

    #[test]
    fn zscore_scores_peak_at_training_mean(
        mean_x in -100.0f64..100.0,
        mean_y in -100.0f64..100.0,
        spread in 0.5f64..20.0,
    ) {
        let history = PairSeriesBuilder::sin_noise(mean_x, mean_y, spread);
        let mut d = ZScoreDetector::default();
        d.fit(&history).unwrap();
        let center = d.observe(Point2::new(mean_x, mean_y));
        prop_assert!(center > 0.8, "center scores {center}");
        let far = d.observe(Point2::new(mean_x + 20.0 * spread, mean_y));
        prop_assert!(far < center);
    }

    #[test]
    fn gmm_prefers_training_region(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
    ) {
        let history = PairSeriesBuilder::sin_noise(cx, cy, 2.0);
        let mut d = GmmDetector::default();
        if d.fit(&history).is_ok() {
            let inside = d.observe(Point2::new(cx, cy));
            let outside = d.observe(Point2::new(cx + 100.0, cy - 100.0));
            prop_assert!(inside > outside, "inside {inside} vs outside {outside}");
        }
    }

    #[test]
    fn all_detectors_return_unit_interval_scores(
        probes in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..30),
    ) {
        let history = PairSeriesBuilder::sin_noise(10.0, 20.0, 5.0);
        let mut detectors: Vec<Box<dyn PairDetector>> = vec![
            Box::new(LinearInvariantDetector::default()),
            Box::new(GmmDetector::default()),
            Box::new(ZScoreDetector::default()),
            Box::new(MarkovDetector::default()),
        ];
        for d in &mut detectors {
            d.fit(&history).unwrap();
            for &(x, y) in &probes {
                let s = d.observe(Point2::new(x, y));
                prop_assert!(
                    (0.0..=1.0 + 1e-9).contains(&s),
                    "{} returned {s}",
                    d.name()
                );
            }
            prop_assert!((0.0..=1.0).contains(&d.validity()));
        }
    }
}

/// Deterministic jittered series around a centre.
struct PairSeriesBuilder;

impl PairSeriesBuilder {
    fn sin_noise(cx: f64, cy: f64, spread: f64) -> PairSeries {
        PairSeries::from_samples((0..300u64).map(|k| {
            let t = k as f64 / 11.0;
            (k, cx + spread * t.sin(), cy + spread * (t * 1.3).cos())
        }))
        .unwrap()
    }
}
