//! Head-to-head comparison of the detectors on simulated pairs,
//! verifying the paper's qualitative claims about each baseline's
//! failure mode.

use gridwatch_baselines::{
    GmmDetector, LinearInvariantDetector, MarkovDetector, PairDetector, ZScoreDetector,
};
use gridwatch_sim::{FaultSchedule, Infrastructure, TraceGenerator, WorkloadConfig};
use gridwatch_timeseries::{GroupId, MachineId, MeasurementId, MetricKind, PairSeries, Timestamp};

/// Simulated pairs on one machine: the linear in/out traffic pair and
/// the nonlinear traffic-vs-saturating-utilization pair.
fn machine_pairs() -> ((PairSeries, PairSeries), (PairSeries, PairSeries)) {
    let infra = Infrastructure::standard_group(GroupId::A, 1, 3);
    let generator = TraceGenerator::new(infra, WorkloadConfig::default(), FaultSchedule::new(), 3);
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(10));
    let m = MachineId::new(0);
    let out_rate = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
    let in_rate = MeasurementId::new(m, MetricKind::IfInOctetsRate);
    let util = MeasurementId::new(m, MetricKind::PortUtilization);
    let linear = trace.pair(out_rate, in_rate).unwrap();
    let nonlinear = trace.pair(out_rate, util).unwrap();
    let split = Timestamp::from_days(8);
    (linear.split_at(split), nonlinear.split_at(split))
}

#[test]
fn linear_invariant_is_invalid_on_nonlinear_pair_but_markov_and_gmm_fit() {
    let ((lin_train, _), (train, test)) = machine_pairs();

    let mut linreg_lin = LinearInvariantDetector::default();
    linreg_lin.fit(&lin_train).unwrap();
    let mut linreg = LinearInvariantDetector::default();
    linreg.fit(&train).unwrap();
    // The saturating relation bends; least squares still captures much of
    // it over a narrow load range, but its R² must sit clearly below the
    // genuinely linear pair's.
    let (r2_lin, r2_sat) = (linreg_lin.validity(), linreg.validity());
    assert!(r2_lin > 0.99, "in/out pair is linear, R² = {r2_lin}");
    assert!(
        r2_sat < r2_lin - 0.01,
        "saturating pair should strain the invariant: R² {r2_sat} vs linear {r2_lin}"
    );

    let mut markov = MarkovDetector::default();
    markov.fit(&train).unwrap();
    let mut gmm = GmmDetector::default();
    gmm.fit(&train).unwrap();

    // Both model-based detectors consider the continuation normal on
    // average.
    let mean = |d: &mut dyn PairDetector, points: &PairSeries| {
        let scores: Vec<f64> = points.points().iter().map(|&p| d.observe(p)).collect();
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    let q_markov = mean(&mut markov, &test);
    let q_gmm = mean(&mut gmm, &test);
    assert!(q_markov > 0.8, "markov mean fitness {q_markov}");
    assert!(q_gmm > 0.4, "gmm mean score {q_gmm}");
}

#[test]
fn zscore_false_positives_on_correlated_surge_while_markov_stays_calm() {
    // Train on normal load; test on a correlation-preserving surge where
    // both metrics rise together along their learned relationship.
    let train = PairSeries::from_samples((0..800u64).map(|k| {
        let load = 0.4 + 0.3 * ((k as f64) / 40.0).sin();
        (k * 360, 100.0 * load, 200.0 * load + 5.0)
    }))
    .unwrap();
    // The surge reaches the top of the *trained* range simultaneously on
    // both metrics — correlated, so the pair model should stay calm.
    let surge: Vec<(u64, f64, f64)> = (0..20u64)
        .map(|k| {
            let load = 0.68;
            ((800 + k) * 360, 100.0 * load, 200.0 * load + 5.0)
        })
        .collect();

    let mut z = ZScoreDetector::default();
    z.fit(&train).unwrap();
    let mut markov = MarkovDetector::default();
    markov.fit(&train).unwrap();

    let mut z_scores = Vec::new();
    let mut m_scores = Vec::new();
    for &(_, x, y) in &surge {
        let p = gridwatch_timeseries::Point2::new(x, y);
        z_scores.push(z.observe(p));
        m_scores.push(markov.observe(p));
    }
    let z_mean = z_scores.iter().sum::<f64>() / z_scores.len() as f64;
    let m_mean = m_scores.iter().sum::<f64>() / m_scores.len() as f64;
    assert!(
        m_mean > z_mean,
        "correlation model must outscore the per-metric detector on a \
         correlated surge: markov {m_mean} vs zscore {z_mean}"
    );
    assert!(m_mean > 0.7, "markov stays calm: {m_mean}");
}

#[test]
fn all_detectors_catch_a_broken_relationship() {
    let train = PairSeries::from_samples((0..600u64).map(|k| {
        let x = 50.0 + 30.0 * ((k as f64) / 25.0).sin();
        (k * 360, x, 2.0 * x + 10.0)
    }))
    .unwrap();
    // y collapses while x stays mid-range: off the line, out of every
    // cluster, and a large grid jump.
    let broken = gridwatch_timeseries::Point2::new(50.0, 200.0);

    let mut detectors: Vec<Box<dyn PairDetector>> = vec![
        Box::new(LinearInvariantDetector::default()),
        Box::new(GmmDetector::default()),
        Box::new(MarkovDetector::default()),
    ];
    for d in &mut detectors {
        d.fit(&train).unwrap();
        // Establish trajectory context with a normal point first.
        d.observe(gridwatch_timeseries::Point2::new(50.0, 110.0));
        let s = d.observe(broken);
        assert!(s < 0.6, "{} should flag the break, scored {s}", d.name());
    }
}
