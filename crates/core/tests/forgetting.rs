//! Tests for the count-decay forgetting extension: old observations fade
//! so the model tracks slowly drifting systems.

use gridwatch_core::{DecayKernel, ModelConfig, TransitionMatrix, TransitionModel};
use gridwatch_grid::{CellId, GridStructure};
use gridwatch_timeseries::{PairSeries, Point2};

#[test]
fn decay_shrinks_counts_and_totals() {
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    for _ in 0..100 {
        v.observe(CellId(0), CellId(1));
    }
    v.observe(CellId(0), CellId(2)); // a rare transition
    assert_eq!(v.total_observations(), 101);
    v.decay_counts(0.5);
    assert_eq!(v.count(CellId(0), CellId(1)), 50);
    // The single rare observation rounds to 1 at factor 0.5.
    assert_eq!(v.count(CellId(0), CellId(2)), 1);
    assert_eq!(v.total_observations(), 51);
}

#[test]
fn decay_drops_rare_entries_entirely() {
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    v.observe(CellId(3), CellId(4));
    v.decay_counts(0.25); // 1 * 0.25 rounds to 0
    assert_eq!(v.count(CellId(3), CellId(4)), 0);
    assert_eq!(v.total_observations(), 0);
    assert_eq!(v.observed_rows(), 0);
}

#[test]
fn factor_one_is_a_noop() {
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    v.observe(CellId(0), CellId(1));
    let before = v.clone();
    v.decay_counts(1.0);
    assert_eq!(v, before);
}

#[test]
#[should_panic(expected = "forgetting factor")]
fn invalid_factor_panics() {
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    v.decay_counts(0.0);
}

#[test]
fn decay_renormalizes_rows_toward_prior() {
    let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    for _ in 0..50 {
        v.observe(CellId(4), CellId(0));
    }
    let peaked = v.row(&grid, CellId(4))[0];
    v.decay_counts(0.1); // 50 -> 5
    let softened = v.row(&grid, CellId(4))[0];
    assert!(
        softened < peaked,
        "decayed evidence must soften the posterior: {softened} < {peaked}"
    );
    let sum: f64 = v.row(&grid, CellId(4)).iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn model_applies_forgetting_on_schedule() {
    let history = PairSeries::from_samples((0..200u64).map(|k| {
        let x = (k % 40) as f64;
        (k * 360, x, 2.0 * x)
    }))
    .unwrap();
    let config = ModelConfig::builder()
        .forgetting_factor(0.5)
        .forgetting_period(10)
        .build()
        .unwrap();
    let mut model = TransitionModel::fit(&history, config).unwrap();
    let before = model.matrix().total_observations();
    // Nine observations: no decay yet (total grows by 9).
    for k in 0..9u64 {
        model.observe(Point2::new((k % 40) as f64, 2.0 * (k % 40) as f64));
    }
    assert_eq!(model.matrix().total_observations(), before + 9);
    // The tenth observation triggers the decay pass.
    model.observe(Point2::new(9.0, 18.0));
    assert!(
        model.matrix().total_observations() < before,
        "decay should roughly halve {} learned transitions, got {}",
        before,
        model.matrix().total_observations()
    );
}

#[test]
fn forgetting_resolves_conflicting_evidence_in_a_row() {
    // The situation forgetting exists for: a row holds heavy *old*
    // evidence toward destination A; the regime changes and fresh
    // evidence points to destination B. Without decay the stale counts
    // keep winning; with periodic decay the fresh counts take over.
    let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
    let (from, dest_a, dest_b) = (CellId(4), CellId(1), CellId(7));

    let mut with_decay = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    let mut without = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    for _ in 0..200 {
        with_decay.observe(from, dest_a);
        without.observe(from, dest_a);
    }
    // Time passes: four daily forgetting passes at factor 0.5 shrink the
    // stale evidence 200 -> 12 in the decaying matrix only.
    for _ in 0..4 {
        with_decay.decay_counts(0.5);
    }
    // The new regime produces fresh evidence toward B.
    for _ in 0..50 {
        with_decay.observe(from, dest_b);
        without.observe(from, dest_b);
    }
    let decayed_row = with_decay.row(&grid, from).to_vec();
    let stale_row = without.row(&grid, from).to_vec();
    assert!(
        decayed_row[dest_b.index()] > decayed_row[dest_a.index()],
        "with forgetting, fresh evidence wins: {decayed_row:?}"
    );
    assert!(
        stale_row[dest_a.index()] > stale_row[dest_b.index()],
        "without forgetting, stale evidence still wins: {stale_row:?}"
    );
}

#[test]
fn forgetting_bounds_total_evidence() {
    // With decay factor f every period P, total counts converge instead
    // of growing without bound — the model's memory footprint is capped.
    let history = PairSeries::from_samples((0..200u64).map(|k| {
        let x = (k % 40) as f64;
        (k * 360, x, 2.0 * x)
    }))
    .unwrap();
    let config = ModelConfig::builder()
        .forgetting_factor(0.5)
        .forgetting_period(100)
        .build()
        .unwrap();
    let mut model = TransitionModel::fit(&history, config).unwrap();
    let mut peak = 0u64;
    for k in 0..2000u64 {
        let x = (k % 40) as f64;
        model.observe(Point2::new(x, 2.0 * x));
        peak = peak.max(model.matrix().total_observations());
    }
    // Steady state: at most initial + P/(1-f) + slack.
    let bound = 199 + 200 + 50;
    assert!(
        peak < bound,
        "evidence must stay bounded: peak {peak} vs bound {bound}"
    );
}

#[test]
fn config_rejects_bad_forgetting_parameters() {
    assert!(ModelConfig::builder()
        .forgetting_factor(0.0)
        .build()
        .is_err());
    assert!(ModelConfig::builder()
        .forgetting_factor(1.5)
        .build()
        .is_err());
    assert!(ModelConfig::builder().forgetting_period(0).build().is_err());
    assert!(ModelConfig::builder()
        .forgetting_factor(0.9)
        .forgetting_period(100)
        .build()
        .is_ok());
}
