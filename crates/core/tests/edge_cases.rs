//! Edge-case tests for the transition model beyond the happy path:
//! degenerate grids, extreme thresholds, kernel variants, and cache
//! behaviour.

use gridwatch_core::{
    fitness_from_rank, DecayKernel, ModelConfig, TransitionMatrix, TransitionModel,
};
use gridwatch_grid::{CellId, GridStructure, GrowthPolicy};
use gridwatch_timeseries::{PairSeries, Point2};

fn linear_history(n: u64) -> PairSeries {
    PairSeries::from_samples((0..n).map(|k| {
        let x = (k % 100) as f64;
        (k * 360, x, 2.0 * x)
    }))
    .unwrap()
}

#[test]
fn single_cell_grid_always_scores_one() {
    let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 1, 1);
    let mut model = TransitionModel::from_grid(grid, ModelConfig::default()).unwrap();
    model.observe(Point2::new(0.5, 0.5));
    let out = model.observe(Point2::new(0.2, 0.8));
    let score = out.score.unwrap();
    assert_eq!(score.fitness(), 1.0);
    assert_eq!(score.rank(), Some(1));
    assert_eq!(score.cell_count(), 1);
}

#[test]
fn update_threshold_one_never_learns() {
    let config = ModelConfig::builder()
        .update_threshold(1.0)
        .build()
        .unwrap();
    let mut model = TransitionModel::fit(&linear_history(200), config).unwrap();
    let before = model.matrix().total_observations();
    for k in 0..20 {
        model.observe(Point2::new((k % 100) as f64, 2.0 * (k % 100) as f64));
    }
    // A probability of exactly 1.0 is only achievable in a 1-cell grid,
    // so every update is skipped.
    assert_eq!(model.matrix().total_observations(), before);
    assert_eq!(model.updates_skipped(), 20);
}

#[test]
fn every_kernel_fits_and_scores() {
    let history = linear_history(300);
    for kernel in DecayKernel::ALL {
        let config = ModelConfig::builder().kernel(kernel).build().unwrap();
        let model = TransitionModel::fit(&history, config).unwrap();
        let s = model
            .score_transition(Point2::new(50.0, 100.0), Point2::new(51.0, 102.0))
            .unwrap();
        assert!(
            s.fitness() > 0.5,
            "{kernel:?} scores an in-pattern transition at {}",
            s.fitness()
        );
    }
}

#[test]
fn score_transition_from_outside_grid_is_none() {
    let model = TransitionModel::fit(&linear_history(100), ModelConfig::default()).unwrap();
    assert!(model
        .score_transition(Point2::new(1e9, 1e9), Point2::new(0.0, 0.0))
        .is_none());
}

#[test]
fn transition_probability_handles_all_membership_cases() {
    let model = TransitionModel::fit(&linear_history(100), ModelConfig::default()).unwrap();
    let inside = Point2::new(50.0, 100.0);
    let outside = Point2::new(-1e6, 1e6);
    assert!(model.transition_probability(inside, inside) > 0.0);
    assert_eq!(model.transition_probability(inside, outside), 0.0);
    assert_eq!(model.transition_probability(outside, inside), 0.0);
    assert_eq!(model.transition_probability(outside, outside), 0.0);
}

#[test]
fn growth_disabled_marks_boundary_points_outliers() {
    let config = ModelConfig::builder()
        .growth(GrowthPolicy::FROZEN)
        .build()
        .unwrap();
    let mut model = TransitionModel::fit(&linear_history(200), config).unwrap();
    let x_hi = model.grid().x_partition().upper();
    let out = model.observe(Point2::new(x_hi + 1e-6, 100.0));
    assert!(out.score.unwrap().is_outlier());
    assert!(!out.extended);
}

#[test]
fn matrix_cache_survives_clear() {
    let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
    let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    v.observe(CellId(0), CellId(4));
    let row1 = v.row(&grid, CellId(0)).to_vec();
    v.clear_cache();
    let row2 = v.row(&grid, CellId(0)).to_vec();
    assert_eq!(row1, row2);
}

#[test]
fn rectangular_grids_have_valid_priors() {
    // Tall-narrow and wide-short grids.
    for (cols, rows) in [(1usize, 12usize), (12, 1), (2, 9), (9, 2)] {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), cols, rows);
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        for from in grid.cells() {
            let sum: f64 = v.row(&grid, from).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{cols}x{rows} from {from}");
        }
    }
}

#[test]
fn fitness_covers_full_range_exactly() {
    let s = 17;
    let best = fitness_from_rank(1, s);
    let worst = fitness_from_rank(s, s);
    assert_eq!(best, 1.0);
    assert!((worst - 1.0 / s as f64).abs() < 1e-12);
}

#[test]
fn model_equality_is_semantic_not_cache_based() {
    let history = linear_history(150);
    let a = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
    let b = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
    // Materialize some rows in b only; equality must not care.
    let _ = b.score_point(Point2::new(10.0, 20.0));
    assert_eq!(a, b);
}

#[test]
fn insufficient_and_degenerate_histories_are_distinct_errors() {
    let one = PairSeries::from_samples([(0, 1.0, 1.0)]).unwrap();
    let flat = PairSeries::from_samples((0..50u64).map(|k| (k, 1.0, k as f64))).unwrap();
    let e1 = TransitionModel::fit(&one, ModelConfig::default()).unwrap_err();
    let e2 = TransitionModel::fit(&flat, ModelConfig::default()).unwrap_err();
    assert!(format!("{e1}").contains("at least 2"));
    assert!(format!("{e2}").contains("dimension 0"));
}
