//! Property-based tests for the transition model: distributions stay
//! normalized, fitness is rank-consistent, updates move mass toward
//! observations, and online growth never corrupts indices.

use gridwatch_core::{
    fitness_from_rank, rank_of_destination, DecayKernel, ModelConfig, TransitionMatrix,
    TransitionModel,
};
use gridwatch_grid::{CellId, GridStructure, GrowthPolicy};
use gridwatch_timeseries::{PairSeries, Point2};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = GridStructure> {
    (1usize..8, 1usize..8).prop_map(|(cols, rows)| {
        GridStructure::uniform((0.0, cols as f64), (0.0, rows as f64), cols, rows)
    })
}

proptest! {
    #[test]
    fn posterior_rows_are_distributions(
        grid in arb_grid(),
        observations in prop::collection::vec((0usize..64, 0usize..64), 0..100),
        w in 1.1f64..5.0,
    ) {
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, w);
        let s = grid.cell_count();
        for (from, to) in observations {
            v.observe(CellId(from % s), CellId(to % s));
        }
        for from in grid.cells() {
            let row = v.row(&grid, from).to_vec();
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "row {from} sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn observing_a_destination_raises_its_probability(
        grid in arb_grid(),
        from_idx in 0usize..64,
        to_idx in 0usize..64,
    ) {
        let s = grid.cell_count();
        let from = CellId(from_idx % s);
        let to = CellId(to_idx % s);
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        let before = v.compute_row(&grid, from)[to.index()];
        v.observe(from, to);
        let after = v.row(&grid, from)[to.index()];
        if s > 1 {
            prop_assert!(after > before, "observation must raise probability: {before} -> {after}");
        } else {
            prop_assert_eq!(after, 1.0);
        }
    }

    #[test]
    fn fitness_is_monotone_in_rank(s in 1usize..200, r1 in 1usize..200, r2 in 1usize..200) {
        let r1 = r1.min(s);
        let r2 = r2.min(s);
        let f1 = fitness_from_rank(r1, s);
        let f2 = fitness_from_rank(r2, s);
        prop_assert_eq!(r1 < r2, f1 > f2);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn rank_counts_strictly_greater(probs in prop::collection::vec(0.0f64..1.0, 1..50), pick in 0usize..50) {
        let dest = CellId(pick % probs.len());
        let rank = rank_of_destination(&probs, dest);
        prop_assert!(rank >= 1 && rank <= probs.len());
        let greater = probs.iter().filter(|&&q| q > probs[dest.index()]).count();
        prop_assert_eq!(rank, greater + 1);
    }

    #[test]
    fn fitted_model_scores_history_like_transitions_well(
        seed_vals in prop::collection::vec(0.0f64..100.0, 50..150),
    ) {
        // History walks a diagonal band; model should score in-band
        // transitions at least as well as orthogonal jumps on average.
        let history = PairSeries::from_samples(
            seed_vals
                .iter()
                .enumerate()
                .map(|(k, &x)| (k as u64 * 360, x, x + 1000.0)),
        )
        .unwrap();
        if let Ok(model) = TransitionModel::fit(&history, ModelConfig::default()) {
            let mid = 50.0;
            let good = model
                .score_transition(Point2::new(mid, mid + 1000.0), Point2::new(mid, mid + 1000.0));
            if let Some(g) = good {
                prop_assert!(!g.is_outlier());
                prop_assert!(g.fitness() > 0.0);
            }
        }
    }

    #[test]
    fn online_stream_never_panics_and_scores_stay_bounded(
        stream in prop::collection::vec((-50.0f64..150.0, -50.0f64..150.0), 1..200),
        lambda in 0.0f64..4.0,
    ) {
        let history = PairSeries::from_samples(
            (0..100u64).map(|k| (k * 360, (k % 50) as f64, ((k % 50) * 2) as f64)),
        )
        .unwrap();
        let config = ModelConfig::builder()
            .growth(GrowthPolicy { lambda })
            .build()
            .unwrap();
        let mut model = TransitionModel::fit(&history, config).unwrap();
        for (x, y) in stream {
            let out = model.observe(Point2::new(x, y));
            if let Some(s) = out.score {
                prop_assert!((0.0..=1.0).contains(&s.fitness()));
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s.probability()));
            }
        }
    }

    #[test]
    fn adaptive_learning_is_conservative_about_totals(
        n_extra in 1usize..50,
    ) {
        let history = PairSeries::from_samples(
            (0..100u64).map(|k| (k * 360, (k % 50) as f64, ((k % 50) * 2) as f64)),
        )
        .unwrap();
        let mut model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        let base = model.matrix().total_observations();
        for k in 0..n_extra {
            model.observe(Point2::new((k % 50) as f64, ((k % 50) * 2) as f64));
        }
        // Every in-grid observation with default threshold 0 is learned.
        prop_assert_eq!(model.matrix().total_observations(), base + n_extra as u64);
    }
}
