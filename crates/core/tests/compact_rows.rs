//! Property tests for the compact probability-row formats: quantized and
//! sparse rows must score **bit-identically** to dense scoring of their
//! dequantized rows, stay within the pinned quantization epsilon of the
//! exact `f64` rows, and round-trip exactly through checkpoint
//! save/restore.

use gridwatch_core::{
    score_quantized_row, score_row, score_sparse_row, DecayKernel, ModelConfig, TransitionMatrix,
    TransitionModel,
};
use gridwatch_grid::float::ROW_QUANT_EPSILON;
use gridwatch_grid::rows::{materialize_levels, quantize_row};
use gridwatch_grid::{CellId, GridStructure, RowFormat, SparseRow};
use gridwatch_timeseries::{PairSeries, Point2};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = GridStructure> {
    (1usize..8, 1usize..8).prop_map(|(cols, rows)| {
        GridStructure::uniform((0.0, cols as f64), (0.0, rows as f64), cols, rows)
    })
}

proptest! {
    /// Quantized and sparse scoring equal `score_row` over the
    /// dequantized row — not approximately, bit for bit.
    #[test]
    fn compact_scoring_is_bit_identical_to_dequantized_dense(
        grid in arb_grid(),
        observations in prop::collection::vec((0usize..64, 0usize..64), 0..120),
        w in 1.1f64..5.0,
    ) {
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, w);
        let s = grid.cell_count();
        for (from, to) in observations {
            v.observe(CellId(from % s), CellId(to % s));
        }
        for from in grid.cells() {
            let dense = v.compute_row(&grid, from);
            let (levels, denom) = quantize_row(&dense);
            let recovered = materialize_levels(&levels, denom);
            let sparse = SparseRow::from_dense(&dense);
            for to in grid.cells() {
                let expected = score_row(&recovered, to);
                prop_assert_eq!(score_quantized_row(&levels, denom, to), expected);
                prop_assert_eq!(score_sparse_row(&sparse, to), expected);
            }
        }
    }

    /// Dequantized probabilities stay within the pinned epsilon of the
    /// exact dense row, and the rank error that quantization can
    /// introduce never moves a destination across a gap wider than the
    /// epsilon.
    #[test]
    fn quantization_error_is_within_the_pinned_epsilon(
        grid in arb_grid(),
        observations in prop::collection::vec((0usize..64, 0usize..64), 0..120),
    ) {
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        let s = grid.cell_count();
        for (from, to) in observations {
            v.observe(CellId(from % s), CellId(to % s));
        }
        for from in grid.cells() {
            let dense = v.compute_row(&grid, from);
            let (levels, denom) = quantize_row(&dense);
            let recovered = materialize_levels(&levels, denom);
            for (j, (&exact, &approx)) in dense.iter().zip(&recovered).enumerate() {
                prop_assert!(
                    (exact - approx).abs() < ROW_QUANT_EPSILON,
                    "row {from} cell {j}: exact {exact} vs dequantized {approx}"
                );
            }
        }
    }

    /// A compact-format matrix round-trips through serialization with a
    /// bit-identical score stream: the caches are rebuilt
    /// deterministically from the integer counts.
    #[test]
    fn compact_matrix_checkpoint_roundtrip_scores_identically(
        grid in arb_grid(),
        observations in prop::collection::vec((0usize..64, 0usize..64), 0..80),
        format_pick in 0usize..2,
    ) {
        let format = [RowFormat::Quantized, RowFormat::Sparse][format_pick];
        let mut v = TransitionMatrix::with_format(DecayKernel::MeanAxis, 2.0, format);
        let s = grid.cell_count();
        for (from, to) in observations {
            v.observe(CellId(from % s), CellId(to % s));
        }
        let json = serde_json::to_string(&v).unwrap();
        let mut back: TransitionMatrix = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&v, &back);
        prop_assert_eq!(back.row_format(), format);
        for from in grid.cells() {
            for to in grid.cells() {
                prop_assert_eq!(v.score(&grid, from, to), back.score(&grid, from, to));
            }
        }
    }

    /// A full model fitted with a compact format round-trips through
    /// checkpoint save/restore and then produces a bit-identical online
    /// score stream.
    #[test]
    fn compact_model_roundtrip_produces_identical_score_stream(
        stream in prop::collection::vec((0.0f64..50.0, 0.0f64..110.0), 1..60),
        format_pick in 0usize..2,
    ) {
        let format = [RowFormat::Quantized, RowFormat::Sparse][format_pick];
        let history = PairSeries::from_samples(
            (0..120u64).map(|k| (k * 360, (k % 50) as f64, ((k % 50) * 2) as f64)),
        )
        .unwrap();
        let config = ModelConfig::builder().row_format(format).build().unwrap();
        let mut model = TransitionModel::fit(&history, config).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let mut restored: TransitionModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&model, &restored);
        for (x, y) in stream {
            let p = Point2::new(x, y);
            prop_assert_eq!(model.observe(p), restored.observe(p));
        }
        prop_assert_eq!(&model, &restored);
    }
}

/// The compact formats are opt-in: a default-config model stays dense and
/// scores exactly as before.
#[test]
fn default_config_stays_dense() {
    let config = ModelConfig::default();
    assert_eq!(config.row_format, RowFormat::Dense);
    let history = PairSeries::from_samples(
        (0..60u64).map(|k| (k * 360, (k % 20) as f64, ((k % 20) * 3) as f64)),
    )
    .unwrap();
    let model = TransitionModel::fit(&history, config).unwrap();
    assert_eq!(model.matrix().row_format(), RowFormat::Dense);
}
