use gridwatch_grid::{CellId, Extension, GridBuilder, GridStructure};
use gridwatch_timeseries::{PairSeries, Point2};
use serde::{Deserialize, Serialize};

use crate::fitness::{score_row, TransitionScore};
use crate::{CellRanges, ModelConfig, ModelError, TransitionMatrix};

/// The outcome of one online observation step
/// ([`TransitionModel::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The score of the observed transition, or `None` when there was no
    /// previous in-grid point to transition from (the very first
    /// observation, or every observation since the model was reset).
    pub score: Option<TransitionScore>,
    /// Whether the transition was incorporated into the matrix.
    pub updated: bool,
    /// Whether the grid was extended to contain this observation.
    pub extended: bool,
}

/// The pairwise correlation model `M = (G, V)`: a grid structure plus a
/// transition probability matrix, with the paper's full lifecycle —
/// offline initialization from history data, online scoring, and adaptive
/// updates (Figure 6).
///
/// # Example
///
/// ```
/// use gridwatch_core::{ModelConfig, TransitionModel};
/// use gridwatch_timeseries::{PairSeries, Point2};
///
/// let history = PairSeries::from_samples(
///     (0..300u64).map(|k| {
///         let x = (k % 60) as f64;
///         (k * 360, x, x + 5.0)
///     }),
/// )?;
/// let mut model = TransitionModel::fit(&history, ModelConfig::default())?;
/// let outcome = model.observe(Point2::new(30.0, 35.0));
/// assert!(outcome.score.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    grid: GridStructure,
    matrix: TransitionMatrix,
    config: ModelConfig,
    /// The cell of the most recent *in-grid* observation: the source of
    /// the next transition. Outliers do not replace it, so a lone spike
    /// outside the grid does not blind the score of the next sample.
    last_cell: Option<CellId>,
    observations: u64,
    outliers: u64,
    extensions: u64,
    updates_skipped: u64,
    /// Online observations since the last forgetting pass.
    #[serde(default)]
    since_forgetting: u64,
}

impl TransitionModel {
    /// Initializes a model from history data: builds the grid structure
    /// over the history snapshot, then replays every consecutive
    /// transition through the Bayesian update (Section 4.2), starting
    /// from the spatial-closeness prior.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidConfig`] for bad parameters.
    /// * [`ModelError::InsufficientHistory`] if `history` has fewer than
    ///   two points.
    /// * [`ModelError::Grid`] if the grid cannot be built (degenerate
    ///   data).
    pub fn fit(history: &PairSeries, config: ModelConfig) -> Result<Self, ModelError> {
        config.validate()?;
        if history.len() < 2 {
            return Err(ModelError::InsufficientHistory {
                points: history.len(),
            });
        }
        let grid = GridBuilder::new(config.grid).build(history.points())?;
        let mut matrix =
            TransitionMatrix::with_format(config.kernel, config.decay_rate, config.row_format);
        let mut last_cell = None;
        for (_, from, to) in history.transitions() {
            let ci = grid
                .locate(from)
                .expect("history points are inside the grid by construction");
            let cj = grid
                .locate(to)
                .expect("history points are inside the grid by construction");
            matrix.observe(ci, cj);
            last_cell = Some(cj);
        }
        Ok(TransitionModel {
            grid,
            matrix,
            config,
            last_cell,
            observations: history.len() as u64,
            outliers: 0,
            extensions: 0,
            updates_skipped: 0,
            since_forgetting: 0,
        })
    }

    /// Creates a model with an explicit grid and a pure-prior matrix (no
    /// observations yet). Useful for experiments that start from the
    /// prior, such as the paper's Figures 9/10.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for bad parameters.
    pub fn from_grid(grid: GridStructure, config: ModelConfig) -> Result<Self, ModelError> {
        config.validate()?;
        let matrix =
            TransitionMatrix::with_format(config.kernel, config.decay_rate, config.row_format);
        Ok(TransitionModel {
            grid,
            matrix,
            config,
            last_cell: None,
            observations: 0,
            outliers: 0,
            extensions: 0,
            updates_skipped: 0,
            since_forgetting: 0,
        })
    }

    /// The grid structure `G`.
    pub fn grid(&self) -> &GridStructure {
        &self.grid
    }

    /// The transition matrix `V`.
    pub fn matrix(&self) -> &TransitionMatrix {
        &self.matrix
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The cell of the most recent in-grid observation.
    pub fn last_cell(&self) -> Option<CellId> {
        self.last_cell
    }

    /// Total points offered via [`TransitionModel::fit`] and
    /// [`TransitionModel::observe`].
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Points that fell outside the grid (and its growth reach).
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Number of grid extensions performed online.
    pub fn extensions(&self) -> u64 {
        self.extensions
    }

    /// Updates skipped because the transition probability was below the
    /// `update_threshold` `δ` (flagged anomalous, not learned).
    pub fn updates_skipped(&self) -> u64 {
        self.updates_skipped
    }

    /// Processes one online observation: scores the transition from the
    /// previous in-grid point, then (in adaptive mode) updates the grid
    /// and matrix per the paper's Figure 6 flow.
    ///
    /// Outliers score 0 and never update the model; near-boundary points
    /// extend the grid when the growth policy allows; normal transitions
    /// (probability ≥ `δ`) are learned.
    pub fn observe(&mut self, p: Point2) -> StepOutcome {
        self.observations += 1;
        // Resolve the destination cell, possibly growing the grid.
        let old_columns = self.grid.columns();
        let (dest, extended) = if self.config.adaptive {
            match self.grid.locate_or_extend(p, self.config.growth) {
                Extension::Contained(c) => (Some(c), false),
                Extension::Extended {
                    cell,
                    prepended_cols,
                    appended_cols,
                    prepended_rows,
                    ..
                } => {
                    self.extensions += 1;
                    self.matrix.remap_after_growth(
                        old_columns,
                        prepended_cols,
                        appended_cols,
                        prepended_rows,
                    );
                    if let Some(last) = self.last_cell {
                        self.last_cell = Some(remap_cell(
                            last,
                            old_columns,
                            prepended_cols,
                            appended_cols,
                            prepended_rows,
                        ));
                    }
                    (Some(cell), true)
                }
                Extension::Outlier => (None, false),
            }
        } else {
            (self.grid.locate(p), false)
        };

        let score = match (self.last_cell, dest) {
            // Scores through the configured row representation: exact for
            // Dense, bit-identical-to-dequantized for Quantized/Sparse.
            (Some(from), Some(to)) => Some(self.matrix.score(&self.grid, from, to)),
            (Some(_), None) => Some(TransitionScore::outlier(self.grid.cell_count())),
            (None, _) => None,
        };

        // Learn the transition if it is normal (Figure 6: "N → Update").
        let mut updated = false;
        if let (Some(from), Some(to), Some(s)) = (self.last_cell, dest, score) {
            if self.config.adaptive {
                if s.probability() >= self.config.update_threshold {
                    self.matrix.observe(from, to);
                    updated = true;
                } else {
                    self.updates_skipped += 1;
                }
            }
        }

        match dest {
            Some(c) => self.last_cell = Some(c),
            None => self.outliers += 1,
        }

        // Periodic forgetting (extension; no-op at factor 1.0).
        if self.config.adaptive && self.config.forgetting_factor < 1.0 {
            self.since_forgetting += 1;
            if self.since_forgetting >= self.config.forgetting_period {
                self.matrix.decay_counts(self.config.forgetting_factor);
                self.since_forgetting = 0;
            }
        }

        StepOutcome {
            score,
            updated,
            extended,
        }
    }

    /// Scores a hypothetical next observation without mutating the model.
    ///
    /// Returns the outlier score when the model has no previous in-grid
    /// point or `p` falls outside the grid.
    pub fn score_point(&self, p: Point2) -> TransitionScore {
        let Some(from) = self.last_cell else {
            return TransitionScore::outlier(self.grid.cell_count());
        };
        match self.grid.locate(p) {
            Some(to) => {
                let row = self.matrix.compute_row(&self.grid, from);
                score_row(&row, to)
            }
            None => TransitionScore::outlier(self.grid.cell_count()),
        }
    }

    /// Scores the transition between two explicit points without mutating
    /// the model. Returns `None` if `from` is outside the grid.
    pub fn score_transition(&self, from: Point2, to: Point2) -> Option<TransitionScore> {
        let ci = self.grid.locate(from)?;
        Some(match self.grid.locate(to) {
            Some(cj) => {
                let row = self.matrix.compute_row(&self.grid, ci);
                score_row(&row, cj)
            }
            None => TransitionScore::outlier(self.grid.cell_count()),
        })
    }

    /// The model's `P(x_t → x_{t+1})` for two explicit points; 0 if
    /// either is outside the grid.
    pub fn transition_probability(&self, from: Point2, to: Point2) -> f64 {
        match (self.grid.locate(from), self.grid.locate(to)) {
            (Some(ci), Some(cj)) => self.matrix.compute_row(&self.grid, ci)[cj.index()],
            _ => 0.0,
        }
    }

    /// Human-readable value ranges of a cell, for the problem reports the
    /// paper highlights ("the model can output the problematic measurement
    /// ranges").
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_ranges(&self, cell: CellId) -> CellRanges {
        CellRanges::new(&self.grid, cell)
    }

    /// Forgets the last observed point (e.g. across a data gap) so the
    /// next observation starts a fresh trajectory.
    pub fn reset_trajectory(&mut self) {
        self.last_cell = None;
    }
}

/// Remaps a flat cell id after grid growth; mirrors
/// [`TransitionMatrix::remap_after_growth`].
fn remap_cell(
    cell: CellId,
    old_columns: usize,
    prepended_cols: usize,
    appended_cols: usize,
    prepended_rows: usize,
) -> CellId {
    let new_columns = old_columns + prepended_cols + appended_cols;
    let row = cell.index() / old_columns;
    let col = cell.index() % old_columns;
    CellId((row + prepended_rows) * new_columns + (col + prepended_cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_grid::GrowthPolicy;

    /// A tight linear pair: y = 2x with x cycling over 0..100.
    fn linear_history(n: u64) -> PairSeries {
        PairSeries::from_samples((0..n).map(|k| {
            let x = (k % 100) as f64;
            (k * 360, x, 2.0 * x)
        }))
        .unwrap()
    }

    #[test]
    fn fit_requires_two_points() {
        let single = PairSeries::from_samples([(0, 1.0, 1.0)]).unwrap();
        let err = TransitionModel::fit(&single, ModelConfig::default()).unwrap_err();
        assert!(matches!(err, ModelError::InsufficientHistory { points: 1 }));
    }

    #[test]
    fn fit_learns_all_transitions() {
        let history = linear_history(200);
        let model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        assert_eq!(model.matrix().total_observations(), 199);
        assert!(model.last_cell().is_some());
        assert_eq!(model.observations(), 200);
    }

    #[test]
    fn correlated_points_outscore_broken_ones() {
        let history = linear_history(500);
        let model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        let good = model.score_transition(Point2::new(50.0, 100.0), Point2::new(51.0, 102.0));
        let bad = model.score_transition(Point2::new(50.0, 100.0), Point2::new(50.0, 1.0));
        let (good, bad) = (good.unwrap(), bad.unwrap());
        assert!(
            good.fitness() > bad.fitness(),
            "good {} vs bad {}",
            good.fitness(),
            bad.fitness()
        );
    }

    #[test]
    fn observe_scores_and_updates() {
        let history = linear_history(300);
        let mut model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        let before = model.matrix().total_observations();
        let out = model.observe(Point2::new(10.0, 20.0));
        assert!(out.score.is_some());
        assert!(out.updated);
        assert_eq!(model.matrix().total_observations(), before + 1);
    }

    #[test]
    fn frozen_model_never_updates() {
        let history = linear_history(300);
        let config = ModelConfig::default().frozen();
        let mut model = TransitionModel::fit(&history, config).unwrap();
        let before = model.matrix().total_observations();
        let out = model.observe(Point2::new(10.0, 20.0));
        assert!(!out.updated);
        assert!(!out.extended);
        assert_eq!(model.matrix().total_observations(), before);
    }

    #[test]
    fn outlier_scores_zero_and_preserves_model() {
        let history = linear_history(300);
        let mut model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        let before = model.matrix().clone();
        let far = Point2::new(1e7, -1e7);
        let out = model.observe(far);
        let score = out.score.unwrap();
        assert!(score.is_outlier());
        assert_eq!(score.fitness(), 0.0);
        assert!(!out.updated);
        assert_eq!(model.matrix(), &before);
        assert_eq!(model.outliers(), 1);
    }

    #[test]
    fn outlier_does_not_blind_next_score() {
        let history = linear_history(300);
        let mut model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        model.observe(Point2::new(1e7, -1e7)); // outlier
        let out = model.observe(Point2::new(10.0, 20.0));
        // The next in-grid point still gets a score relative to the last
        // in-grid cell.
        assert!(out.score.is_some());
        assert!(!out.score.unwrap().is_outlier());
    }

    #[test]
    fn near_boundary_point_extends_grid_in_adaptive_mode() {
        let history = linear_history(300);
        let config = ModelConfig::builder()
            .growth(GrowthPolicy { lambda: 3.0 })
            .build()
            .unwrap();
        let mut model = TransitionModel::fit(&history, config).unwrap();
        let (x_hi, y_hi) = (
            model.grid().x_partition().upper(),
            model.grid().y_partition().upper(),
        );
        let cells_before = model.grid().cell_count();
        // Slightly past the boundary on both dims.
        let p = Point2::new(x_hi + 0.1, y_hi + 0.1);
        let out = model.observe(p);
        assert!(out.extended);
        assert!(model.grid().cell_count() > cells_before);
        assert_eq!(model.extensions(), 1);
        // The point is now in-grid and scored.
        assert!(!out.score.unwrap().is_outlier());
        // A subsequent normal point still scores fine (remap correctness).
        let out2 = model.observe(Point2::new(50.0, 100.0));
        assert!(out2.score.is_some());
    }

    #[test]
    fn update_threshold_skips_anomalous_transitions() {
        let history = linear_history(500);
        let config = ModelConfig::builder()
            .update_threshold(0.05)
            .build()
            .unwrap();
        let mut model = TransitionModel::fit(&history, config).unwrap();
        let before = model.matrix().total_observations();
        // A wildly improbable (but in-grid) jump.
        model.observe(Point2::new(0.5, 1.0));
        model.observe(Point2::new(99.0, 1.0));
        assert!(model.updates_skipped() >= 1);
        assert!(model.matrix().total_observations() <= before + 2);
    }

    #[test]
    fn score_point_without_context_is_outlier() {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 3, 3);
        let model = TransitionModel::from_grid(grid, ModelConfig::default()).unwrap();
        assert!(model.score_point(Point2::new(0.5, 0.5)).is_outlier());
    }

    #[test]
    fn reset_trajectory_clears_context() {
        let history = linear_history(100);
        let mut model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        model.reset_trajectory();
        assert_eq!(model.last_cell(), None);
        let out = model.observe(Point2::new(10.0, 20.0));
        assert!(
            out.score.is_none(),
            "first point after reset has no transition"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let history = linear_history(100);
        let model = TransitionModel::fit(&history, ModelConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: TransitionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn remap_cell_matches_matrix_remap() {
        // Old 3-column grid, prepend 1 col and 1 row, append 1 col.
        let c = remap_cell(CellId(4), 3, 1, 1, 1);
        // Old (row 1, col 1) -> new (row 2, col 2) with 5 columns = 12.
        assert_eq!(c, CellId(12));
    }
}
