use gridwatch_grid::{DecayKernel, GridConfig, GrowthPolicy, RowFormat};
use serde::{Deserialize, Serialize};

use crate::ModelError;

/// Configuration of a [`crate::TransitionModel`].
///
/// # Example
///
/// ```
/// use gridwatch_core::{DecayKernel, ModelConfig};
///
/// let config = ModelConfig::builder()
///     .decay_rate(2.0)
///     .kernel(DecayKernel::MeanAxis)
///     .update_threshold(0.001)
///     .build()?;
/// assert_eq!(config.decay_rate, 2.0);
/// # Ok::<(), gridwatch_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Grid construction parameters (Section 4.1).
    pub grid: GridConfig,
    /// The spatial-closeness decay kernel; the default reproduces the
    /// paper's Figure 5 matrix.
    pub kernel: DecayKernel,
    /// The decay rate `w` ("the rate of probability decrease"); the
    /// paper's example uses 2.
    pub decay_rate: f64,
    /// Online grid growth policy (`λ`; Section 4.1, "Update").
    pub growth: GrowthPolicy,
    /// The threshold `δ` on the transition probability below which an
    /// observation is considered anomalous and **excluded from model
    /// updates** ("we update the transition probability only on normal
    /// points"). `0.0` updates on every in-grid observation.
    pub update_threshold: f64,
    /// Whether [`crate::TransitionModel::observe`] adapts the model at
    /// all (the paper's *Adaptive* mode) or scores without learning
    /// (*Offline* mode, Figure 13a).
    pub adaptive: bool,
    /// Forgetting factor in `(0, 1]` applied to all observation counts
    /// every [`ModelConfig::forgetting_period`] online observations
    /// (adaptive mode only). `1.0` disables forgetting. An extension of
    /// the paper's online adaptation for slowly drifting systems.
    pub forgetting_factor: f64,
    /// How many online observations between forgetting passes (default:
    /// one day of 6-minute samples).
    pub forgetting_period: u64,
    /// In-memory representation of materialized probability rows (the
    /// memory diet for `V` at million-measurement scale; see
    /// [`gridwatch_grid::rows`]). `Dense` keeps the exact `f64` rows;
    /// `Quantized` and `Sparse` store u16 fixed-point levels whose
    /// scoring is bit-identical to scoring their dequantized rows.
    /// Defaults to `Dense`, and checkpoints written before this field
    /// existed deserialize to `Dense`.
    #[serde(default)]
    pub row_format: RowFormat,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            grid: GridConfig::default(),
            kernel: DecayKernel::default(),
            decay_rate: 2.0,
            growth: GrowthPolicy::default(),
            update_threshold: 0.0,
            adaptive: true,
            forgetting_factor: 1.0,
            forgetting_period: 240,
            row_format: RowFormat::Dense,
        }
    }
}

impl ModelConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ModelConfigBuilder {
        ModelConfigBuilder {
            config: ModelConfig::default(),
        }
    }

    /// An offline (non-adaptive) variant of this configuration.
    pub fn frozen(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for an out-of-range
    /// parameter, or the underlying grid-config error.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.grid.validate()?;
        if self.decay_rate <= 1.0 {
            return Err(ModelError::InvalidConfig {
                reason: format!("decay_rate must exceed 1, got {}", self.decay_rate),
            });
        }
        if !(0.0..=1.0).contains(&self.update_threshold) {
            return Err(ModelError::InvalidConfig {
                reason: format!(
                    "update_threshold must be in [0, 1], got {}",
                    self.update_threshold
                ),
            });
        }
        if self.growth.lambda < 0.0 {
            return Err(ModelError::InvalidConfig {
                reason: format!(
                    "growth lambda must be non-negative, got {}",
                    self.growth.lambda
                ),
            });
        }
        if !(self.forgetting_factor > 0.0 && self.forgetting_factor <= 1.0) {
            return Err(ModelError::InvalidConfig {
                reason: format!(
                    "forgetting_factor must be in (0, 1], got {}",
                    self.forgetting_factor
                ),
            });
        }
        if self.forgetting_period == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "forgetting_period must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Builder for [`ModelConfig`]; see [`ModelConfig::builder`].
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    config: ModelConfig,
}

impl ModelConfigBuilder {
    /// Sets the grid construction parameters.
    pub fn grid(mut self, grid: GridConfig) -> Self {
        self.config.grid = grid;
        self
    }

    /// Sets the decay kernel.
    pub fn kernel(mut self, kernel: DecayKernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Sets the decay rate `w`.
    pub fn decay_rate(mut self, w: f64) -> Self {
        self.config.decay_rate = w;
        self
    }

    /// Sets the growth policy.
    pub fn growth(mut self, growth: GrowthPolicy) -> Self {
        self.config.growth = growth;
        self
    }

    /// Sets the update threshold `δ`.
    pub fn update_threshold(mut self, delta: f64) -> Self {
        self.config.update_threshold = delta;
        self
    }

    /// Sets adaptive (online-learning) mode on or off.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.config.adaptive = adaptive;
        self
    }

    /// Sets the forgetting factor (see
    /// [`ModelConfig::forgetting_factor`]).
    pub fn forgetting_factor(mut self, factor: f64) -> Self {
        self.config.forgetting_factor = factor;
        self
    }

    /// Sets the forgetting period, in online observations.
    pub fn forgetting_period(mut self, period: u64) -> Self {
        self.config.forgetting_period = period;
        self
    }

    /// Sets the probability-row representation (see
    /// [`ModelConfig::row_format`]).
    pub fn row_format(mut self, format: RowFormat) -> Self {
        self.config.row_format = format;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for out-of-range parameters.
    pub fn build(self) -> Result<ModelConfig, ModelError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ModelConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let c = ModelConfig::builder()
            .decay_rate(3.0)
            .update_threshold(0.01)
            .adaptive(false)
            .build()
            .unwrap();
        assert_eq!(c.decay_rate, 3.0);
        assert_eq!(c.update_threshold, 0.01);
        assert!(!c.adaptive);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ModelConfig::builder().decay_rate(1.0).build().is_err());
        assert!(ModelConfig::builder()
            .update_threshold(2.0)
            .build()
            .is_err());
        assert!(ModelConfig::builder()
            .growth(GrowthPolicy { lambda: -1.0 })
            .build()
            .is_err());
    }

    #[test]
    fn frozen_clears_adaptive() {
        let c = ModelConfig::default().frozen();
        assert!(!c.adaptive);
    }

    #[test]
    fn row_format_defaults_to_dense_and_is_buildable() {
        assert_eq!(ModelConfig::default().row_format, RowFormat::Dense);
        let c = ModelConfig::builder()
            .row_format(RowFormat::Quantized)
            .build()
            .unwrap();
        assert_eq!(c.row_format, RowFormat::Quantized);
    }

    #[test]
    fn config_without_row_format_key_deserializes_to_dense() {
        // A checkpoint written before the compact-row formats existed has
        // no `row_format` key; it must load as Dense, not fail.
        let json = serde_json::to_string(&ModelConfig::default()).unwrap();
        let stripped = json.replace(",\"row_format\":\"Dense\"", "");
        assert_ne!(json, stripped, "test must actually strip the key");
        let back: ModelConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.row_format, RowFormat::Dense);
        assert_eq!(back, ModelConfig::default());
    }
}
