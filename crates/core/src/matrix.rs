use std::collections::{BTreeMap, HashMap};

use gridwatch_grid::rows::quantize_row;
use gridwatch_grid::{CellId, DecayKernel, GridStructure, RowArena, RowFormat, RowSlot, SparseRow};
use serde::{Deserialize, Serialize};

use crate::fitness::{score_quantized_row, score_row, score_sparse_row, TransitionScore};
use crate::prior::{log_prior_row, normalize_log_row};

/// The transition probability matrix `V` with `V[i][j] = P(c_i → c_j)`,
/// stored sparsely.
///
/// # Representation
///
/// A dense `s × s` matrix per pair is prohibitive when thousands of pairs
/// are watched (the paper monitors `3 × C(100, 2)` models). Instead we
/// exploit the structure of the Bayesian update: the posterior of row `i`
/// after observing destinations `h_1, …, h_k` is
///
/// ```text
/// log V[i][j] = −ln K(c_i, c_j) − Σ_m  ln K(c_{h_m}, c_j)  (+ normalizer)
/// ```
///
/// where `K` is the decay kernel (prior term from the spatial-closeness
/// prior, one likelihood term per observation — Eq. 1 and Eq. 2 of the
/// paper in log space). So it suffices to store, per visited row, the
/// *count of observations per destination cell*; full rows are
/// materialized lazily in `O(s · distinct_destinations)` and memoized
/// until the row changes.
///
/// # Example
///
/// ```
/// use gridwatch_core::TransitionMatrix;
/// use gridwatch_grid::{CellId, DecayKernel, GridStructure};
///
/// let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
/// let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
/// // Repeatedly observe c5 → c2.
/// for _ in 0..20 {
///     v.observe(CellId(4), CellId(1));
/// }
/// let row = v.row(&grid, CellId(4));
/// let best = row
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .unwrap()
///     .0;
/// assert_eq!(best, 1, "mass concentrates on the observed destination");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionMatrix {
    kernel: DecayKernel,
    decay_rate: f64,
    /// Per-row observation counts: `counts[i][h]` = number of observed
    /// transitions from cell `i` to cell `h`. Rows never observed are
    /// absent and equal to the prior.
    counts: BTreeMap<usize, BTreeMap<usize, u64>>,
    /// In-memory representation used for memoized rows (the memory diet
    /// for `V`; see [`gridwatch_grid::rows`]). Checkpoints written before
    /// this field existed deserialize to [`RowFormat::Dense`].
    #[serde(default)]
    row_format: RowFormat,
    /// Memoized materialized rows, invalidated on update/remap
    /// ([`RowFormat::Dense`] only).
    #[serde(skip)]
    row_cache: HashMap<usize, Vec<f64>>,
    /// Memoized quantized rows ([`RowFormat::Quantized`]): arena slot and
    /// dequantization denominator per source cell.
    #[serde(skip)]
    quant_cache: HashMap<usize, (RowSlot, f64)>,
    /// Arena backing the quantized row levels; its width tracks the
    /// grid's cell count and is reset when the grid grows.
    #[serde(skip)]
    arena: RowArena,
    /// Memoized sparse rows ([`RowFormat::Sparse`]).
    #[serde(skip)]
    sparse_cache: HashMap<usize, SparseRow>,
    total_observations: u64,
}

impl TransitionMatrix {
    /// Creates an empty (pure-prior) matrix.
    ///
    /// # Panics
    ///
    /// Panics if `decay_rate <= 1`.
    pub fn new(kernel: DecayKernel, decay_rate: f64) -> Self {
        TransitionMatrix::with_format(kernel, decay_rate, RowFormat::Dense)
    }

    /// Creates an empty matrix with an explicit memoized-row
    /// representation (see [`gridwatch_grid::rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `decay_rate <= 1`.
    pub fn with_format(kernel: DecayKernel, decay_rate: f64, format: RowFormat) -> Self {
        assert!(decay_rate > 1.0, "decay rate must exceed 1");
        TransitionMatrix {
            kernel,
            decay_rate,
            counts: BTreeMap::new(),
            row_format: format,
            row_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            arena: RowArena::new(),
            sparse_cache: HashMap::new(),
            total_observations: 0,
        }
    }

    /// The decay kernel in use.
    pub fn kernel(&self) -> DecayKernel {
        self.kernel
    }

    /// The memoized-row representation in use.
    pub fn row_format(&self) -> RowFormat {
        self.row_format
    }

    /// Switches the memoized-row representation, dropping all memoized
    /// rows (the integer counts — the persisted state — are untouched).
    pub fn set_row_format(&mut self, format: RowFormat) {
        self.row_format = format;
        self.clear_cache();
    }

    /// The decay rate `w`.
    pub fn decay_rate(&self) -> f64 {
        self.decay_rate
    }

    /// Total number of observed transitions.
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// Number of rows with at least one observation.
    pub fn observed_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct `(source, destination)` entries stored — the
    /// sparse representation's actual memory footprint, versus the `s²`
    /// entries a dense matrix would hold.
    pub fn distinct_entries(&self) -> usize {
        self.counts.values().map(|row| row.len()).sum()
    }

    /// The source cells with at least one observed transition, in
    /// increasing order. Used by the invariant checkers to sample real
    /// (non-prior) rows for the row-stochastic property.
    pub fn observed_sources(&self) -> impl Iterator<Item = CellId> + '_ {
        self.counts.keys().copied().map(CellId)
    }

    /// The maximum cell index referenced by any stored transition count
    /// (source or destination), or `None` if no transitions were observed.
    /// A value `>= grid.cell_count()` means the matrix references cells
    /// outside its grid — a corrupted or mismatched checkpoint.
    pub fn max_referenced_cell(&self) -> Option<usize> {
        self.counts
            .iter()
            .flat_map(|(&from, row)| row.keys().copied().chain(std::iter::once(from)))
            .max()
    }

    /// Records an observed transition `from → to` (the Bayesian update of
    /// Eq. 2, deferred until the row is materialized).
    pub fn observe(&mut self, from: CellId, to: CellId) {
        *self
            .counts
            .entry(from.index())
            .or_default()
            .entry(to.index())
            .or_insert(0) += 1;
        self.total_observations += 1;
        self.invalidate_row(from.index());
    }

    /// Drops the memoized representations of one row (after its counts
    /// changed).
    fn invalidate_row(&mut self, from: usize) {
        self.row_cache.remove(&from);
        if let Some((slot, _)) = self.quant_cache.remove(&from) {
            self.arena.free(slot);
        }
        self.sparse_cache.remove(&from);
    }

    /// Number of observed transitions from `from` to `to`.
    pub fn count(&self, from: CellId, to: CellId) -> u64 {
        self.counts
            .get(&from.index())
            .and_then(|r| r.get(&to.index()))
            .copied()
            .unwrap_or(0)
    }

    /// The posterior distribution `P(from → ·)` over all cells of `grid`,
    /// in flat cell order, computed lazily and memoized.
    ///
    /// # Panics
    ///
    /// Panics if `from` is outside the grid's cell range.
    pub fn row(&mut self, grid: &GridStructure, from: CellId) -> &[f64] {
        assert!(from.index() < grid.cell_count(), "row out of range");
        if !self.row_cache.contains_key(&from.index()) {
            let row = self.compute_row(grid, from);
            self.row_cache.insert(from.index(), row);
        }
        self.row_cache
            .get(&from.index())
            .expect("row inserted above")
    }

    /// Computes the posterior row without touching the cache (`&self`
    /// variant of [`TransitionMatrix::row`]).
    pub fn compute_row(&self, grid: &GridStructure, from: CellId) -> Vec<f64> {
        let mut log_row = log_prior_row(grid, self.kernel, self.decay_rate, from);
        if let Some(obs) = self.counts.get(&from.index()) {
            for (&h, &n) in obs {
                let h_cell = CellId(h);
                // Guard against stale indices (can only happen on misuse;
                // remap keeps indices in range).
                if h >= grid.cell_count() {
                    continue;
                }
                let n = n as f64;
                for (j, l) in log_row.iter_mut().enumerate() {
                    let (dx, dy) = grid.offset(h_cell, CellId(j));
                    *l -= n * self.kernel.log_weight(self.decay_rate, dx, dy);
                }
            }
        }
        normalize_log_row(&log_row)
    }

    /// The probability `P(from → to)`.
    pub fn probability(&mut self, grid: &GridStructure, from: CellId, to: CellId) -> f64 {
        self.row(grid, from)[to.index()]
    }

    /// Scores the transition `from → to` using the configured
    /// memoized-row representation.
    ///
    /// For [`RowFormat::Dense`] this is exactly
    /// `score_row(self.row(grid, from), to)`. The compact formats score
    /// straight off the u16 levels; the result is bit-identical to
    /// scoring their dequantized rows (see
    /// [`crate::fitness::score_quantized_row`]), which approximate the
    /// dense row within [`gridwatch_grid::float::ROW_QUANT_EPSILON`].
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is outside the grid's cell range.
    pub fn score(&mut self, grid: &GridStructure, from: CellId, to: CellId) -> TransitionScore {
        assert!(to.index() < grid.cell_count(), "destination out of range");
        match self.row_format {
            RowFormat::Dense => score_row(self.row(grid, from), to),
            RowFormat::Quantized => {
                assert!(from.index() < grid.cell_count(), "row out of range");
                if self.arena.width() != grid.cell_count() {
                    // The grid grew (or the arena is fresh): every cached
                    // slot has the wrong width.
                    self.arena.reset(grid.cell_count());
                    self.quant_cache.clear();
                }
                if !self.quant_cache.contains_key(&from.index()) {
                    let dense = self.compute_row(grid, from);
                    let (levels, denom) = quantize_row(&dense);
                    let slot = self.arena.alloc(&levels);
                    self.quant_cache.insert(from.index(), (slot, denom));
                }
                let &(slot, denom) = self
                    .quant_cache
                    .get(&from.index())
                    .expect("row quantized above");
                score_quantized_row(self.arena.get(slot), denom, to)
            }
            RowFormat::Sparse => {
                assert!(from.index() < grid.cell_count(), "row out of range");
                let fresh = match self.sparse_cache.get(&from.index()) {
                    // Width mismatch: stale after growth, recompute.
                    Some(row) => row.len() == grid.cell_count(),
                    None => false,
                };
                if !fresh {
                    let dense = self.compute_row(grid, from);
                    self.sparse_cache
                        .insert(from.index(), SparseRow::from_dense(&dense));
                }
                let row = self
                    .sparse_cache
                    .get(&from.index())
                    .expect("row sparsified above");
                score_sparse_row(row, to)
            }
        }
    }

    /// Approximate bytes held by the memoized-row caches (the part of the
    /// footprint the compact formats shrink; the integer counts are shared
    /// by all formats). Used by the `model_rss` benchmark.
    pub fn approx_row_cache_bytes(&self) -> usize {
        let dense: usize = self
            .row_cache
            .values()
            .map(|r| r.capacity() * std::mem::size_of::<f64>())
            .sum();
        let sparse: usize = self.sparse_cache.values().map(SparseRow::bytes).sum();
        let quant_index = self.quant_cache.len() * std::mem::size_of::<(usize, (RowSlot, f64))>();
        dense + sparse + self.arena.bytes() + quant_index
    }

    /// Bytes of memoized row *payload* only — the per-cell storage the
    /// compact formats shrink (dense `f64` cells, live arena rows,
    /// sparse entries). Cache-index bookkeeping, which every format
    /// pays a constant of per cached row, is excluded; see
    /// [`TransitionMatrix::approx_row_cache_bytes`] for the full
    /// footprint.
    pub fn row_payload_bytes(&self) -> usize {
        let dense: usize = self
            .row_cache
            .values()
            .map(|r| r.capacity() * std::mem::size_of::<f64>())
            .sum();
        let sparse: usize = self.sparse_cache.values().map(SparseRow::bytes).sum();
        dense + sparse + self.arena.live_bytes()
    }

    /// Exports the full dense matrix (row-major); intended for small
    /// grids, reporting, and tests.
    pub fn to_dense(&self, grid: &GridStructure) -> Vec<Vec<f64>> {
        grid.cells()
            .map(|from| self.compute_row(grid, from))
            .collect()
    }

    /// Remaps all stored cell indices after the grid grew.
    ///
    /// `old_columns` is the column count before growth; the other
    /// arguments are the prepend/append counts reported by
    /// [`gridwatch_grid::Extension::Extended`]. A cell formerly at
    /// `(col, row)` moves to `(col + prepended_cols, row + prepended_rows)`
    /// in a grid with `old_columns + prepended_cols + appended_cols`
    /// columns.
    pub fn remap_after_growth(
        &mut self,
        old_columns: usize,
        prepended_cols: usize,
        appended_cols: usize,
        prepended_rows: usize,
    ) {
        if prepended_cols == 0 && appended_cols == 0 && prepended_rows == 0 {
            // Rows appended above do not change flat indices, but the
            // cell count did change, so every memoized row is stale.
            self.clear_cache();
            return;
        }
        let new_columns = old_columns + prepended_cols + appended_cols;
        let remap = |flat: usize| -> usize {
            let row = flat / old_columns;
            let col = flat % old_columns;
            (row + prepended_rows) * new_columns + (col + prepended_cols)
        };
        let old = std::mem::take(&mut self.counts);
        for (from, row) in old {
            let new_row: BTreeMap<usize, u64> =
                row.into_iter().map(|(to, n)| (remap(to), n)).collect();
            self.counts.insert(remap(from), new_row);
        }
        self.clear_cache();
    }

    /// Drops all memoized rows (e.g. after deserialization).
    pub fn clear_cache(&mut self) {
        self.row_cache.clear();
        self.quant_cache.clear();
        let width = self.arena.width();
        self.arena.reset(width);
        self.sparse_cache.clear();
    }

    /// Exponentially decays all observation counts by `factor` in
    /// `(0, 1]`, dropping entries that fall below one half observation.
    ///
    /// This implements *forgetting*: the paper adapts the model "online
    /// to the distribution changes", and on slowly drifting systems old
    /// transitions should stop dominating the posterior. Calling this
    /// once per day with, say, `factor = 0.98` halves the weight of
    /// month-old observations. A factor of `1.0` is a no-op. Counts decay
    /// by integer rounding, so rare old transitions vanish entirely while
    /// frequent ones shrink proportionally.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn decay_counts(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "forgetting factor must be in (0, 1], got {factor}"
        );
        if gridwatch_grid::float::approx_one(factor) {
            return;
        }
        let mut removed = 0u64;
        for row in self.counts.values_mut() {
            row.retain(|_, n| {
                let decayed = (*n as f64 * factor).round() as u64;
                if decayed == 0 {
                    removed += *n;
                    false
                } else {
                    removed += *n - decayed;
                    *n = decayed;
                    true
                }
            });
        }
        self.counts.retain(|_, row| !row.is_empty());
        self.total_observations = self.total_observations.saturating_sub(removed);
        self.clear_cache();
    }
}

impl PartialEq for TransitionMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise comparison: equality here means "same persisted model",
        // so two NaN decay rates (never valid, but conceivable after a
        // corrupted checkpoint) must still compare equal to themselves.
        self.kernel == other.kernel
            && self.decay_rate.to_bits() == other.decay_rate.to_bits()
            && self.counts == other.counts
            && self.row_format == other.row_format
            && self.total_observations == other.total_observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3x3() -> GridStructure {
        GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3)
    }

    #[test]
    fn fresh_matrix_equals_prior() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        let row = v.row(&grid, CellId(4)).to_vec();
        let prior = crate::prior::prior_row(&grid, DecayKernel::MeanAxis, 2.0, CellId(4));
        for (a, b) in row.iter().zip(&prior) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rows_always_sum_to_one() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        for k in 0..50 {
            v.observe(CellId(k % 9), CellId((k * 3) % 9));
        }
        for from in grid.cells() {
            let sum: f64 = v.row(&grid, from).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {from} sums to {sum}");
        }
    }

    #[test]
    fn repeated_observation_dominates_prior() {
        // Figures 9/10 of the paper: the prior peaks at the source cell,
        // but after many observed transitions to another cell the
        // posterior peaks at the observed destination.
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        let from = CellId(4);
        let to = CellId(2);
        let prior_peak = {
            let row = v.compute_row(&grid, from);
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(prior_peak, from.index());
        for _ in 0..10 {
            v.observe(from, to);
        }
        let row = v.row(&grid, from);
        let post_peak = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(post_peak, to.index());
    }

    #[test]
    fn observation_counts_tracked() {
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        v.observe(CellId(0), CellId(1));
        v.observe(CellId(0), CellId(1));
        v.observe(CellId(0), CellId(2));
        assert_eq!(v.count(CellId(0), CellId(1)), 2);
        assert_eq!(v.count(CellId(0), CellId(2)), 1);
        assert_eq!(v.count(CellId(1), CellId(0)), 0);
        assert_eq!(v.total_observations(), 3);
        assert_eq!(v.observed_rows(), 1);
    }

    #[test]
    fn cache_is_invalidated_by_observe() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        let before = v.row(&grid, CellId(0)).to_vec();
        v.observe(CellId(0), CellId(8));
        let after = v.row(&grid, CellId(0)).to_vec();
        assert!(after[8] > before[8]);
    }

    #[test]
    fn remap_preserves_counts_under_growth() {
        // 3x3 grid grows by one prepended column and one prepended row.
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        // Transition c1 (0,0) -> c5 (1,1) in the old 3x3 grid.
        v.observe(CellId(0), CellId(4));
        v.remap_after_growth(3, 1, 0, 1);
        // New grid is 4x4: old (0,0) is now (1,1) = flat 5; old (1,1) is
        // now (2,2) = flat 10.
        assert_eq!(v.count(CellId(5), CellId(10)), 1);
        assert_eq!(v.count(CellId(0), CellId(4)), 0);
        assert_eq!(v.total_observations(), 1);
    }

    #[test]
    fn remap_with_append_only_keeps_indices() {
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        v.observe(CellId(3), CellId(7));
        // Rows appended at the top (higher y) and columns appended right
        // with no prepends: flat indices change only via column count.
        v.remap_after_growth(3, 0, 1, 0);
        // Old (row 1, col 0) -> new flat = 1 * 4 + 0 = 4.
        // Old (row 2, col 1) -> new flat = 2 * 4 + 1 = 9.
        assert_eq!(v.count(CellId(4), CellId(9)), 1);
    }

    #[test]
    fn dense_export_matches_rows() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        v.observe(CellId(1), CellId(2));
        let dense = v.to_dense(&grid);
        assert_eq!(dense.len(), 9);
        for (i, row) in dense.iter().enumerate() {
            let live = v.row(&grid, CellId(i));
            for (a, b) in row.iter().zip(live) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn serde_roundtrip_preserves_distribution() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
        for _ in 0..5 {
            v.observe(CellId(0), CellId(3));
        }
        let json = serde_json::to_string(&v).unwrap();
        let mut back: TransitionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
        let a = v.row(&grid, CellId(0)).to_vec();
        let b = back.row(&grid, CellId(0)).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "decay rate")]
    fn rejects_non_decaying_rate() {
        TransitionMatrix::new(DecayKernel::MeanAxis, 1.0);
    }

    /// A matrix with mixed observations (some rows heavy, some light).
    fn observed(format: RowFormat) -> TransitionMatrix {
        let mut v = TransitionMatrix::with_format(DecayKernel::MeanAxis, 2.0, format);
        for k in 0..60 {
            v.observe(CellId(k % 9), CellId((k * 5 + 2) % 9));
        }
        v
    }

    #[test]
    fn dense_score_matches_score_row() {
        let grid = grid3x3();
        let mut v = observed(RowFormat::Dense);
        for from in grid.cells() {
            for to in grid.cells() {
                let expected = score_row(&v.compute_row(&grid, from), to);
                assert_eq!(v.score(&grid, from, to), expected);
            }
        }
    }

    #[test]
    fn compact_scores_match_their_dequantized_rows_bit_for_bit() {
        let grid = grid3x3();
        for format in [RowFormat::Quantized, RowFormat::Sparse] {
            let mut v = observed(format);
            for from in grid.cells() {
                // Materialize the compact row exactly as the cache holds it.
                let dense = v.compute_row(&grid, from);
                let (levels, denom) = quantize_row(&dense);
                let recovered = gridwatch_grid::rows::materialize_levels(&levels, denom);
                for to in grid.cells() {
                    let got = v.score(&grid, from, to);
                    let expected = score_row(&recovered, to);
                    assert_eq!(got, expected, "{format:?} {from}→{to}");
                    // And the dequantized probability is close to the
                    // exact dense one.
                    assert!(
                        (got.probability() - dense[to.index()]).abs()
                            < gridwatch_grid::float::ROW_QUANT_EPSILON,
                        "{format:?} {from}→{to}"
                    );
                }
            }
        }
    }

    #[test]
    fn compact_caches_are_invalidated_by_observe() {
        let grid = grid3x3();
        for format in [RowFormat::Quantized, RowFormat::Sparse] {
            let mut v = TransitionMatrix::with_format(DecayKernel::MeanAxis, 2.0, format);
            let before = v.score(&grid, CellId(0), CellId(8));
            for _ in 0..20 {
                v.observe(CellId(0), CellId(8));
            }
            let after = v.score(&grid, CellId(0), CellId(8));
            assert!(after.probability() > before.probability(), "{format:?}");
        }
    }

    #[test]
    fn quantized_arena_reuses_slots_across_invalidation() {
        let grid = grid3x3();
        let mut v = TransitionMatrix::with_format(DecayKernel::MeanAxis, 2.0, RowFormat::Quantized);
        for from in grid.cells() {
            v.score(&grid, from, CellId(0));
        }
        let bytes = v.approx_row_cache_bytes();
        // Re-observing a row frees and re-allocates its slot; the arena
        // must not grow.
        for _ in 0..5 {
            v.observe(CellId(3), CellId(4));
            v.score(&grid, CellId(3), CellId(0));
        }
        assert_eq!(v.approx_row_cache_bytes(), bytes);
    }

    #[test]
    fn matrix_without_row_format_key_deserializes_to_dense() {
        let v = observed(RowFormat::Dense);
        let json = serde_json::to_string(&v).unwrap();
        let stripped = json.replace(",\"row_format\":\"Dense\"", "");
        assert_ne!(json, stripped, "test must actually strip the key");
        let back: TransitionMatrix = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.row_format(), RowFormat::Dense);
        assert_eq!(back, v);
    }

    #[test]
    fn compact_matrix_roundtrips_with_identical_scores() {
        let grid = grid3x3();
        for format in [RowFormat::Quantized, RowFormat::Sparse] {
            let mut v = observed(format);
            let json = serde_json::to_string(&v).unwrap();
            let mut back: TransitionMatrix = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back);
            assert_eq!(back.row_format(), format);
            for from in grid.cells() {
                for to in grid.cells() {
                    assert_eq!(
                        v.score(&grid, from, to),
                        back.score(&grid, from, to),
                        "{format:?} {from}→{to}"
                    );
                }
            }
        }
    }
}
