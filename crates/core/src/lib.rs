//! The grid-based transition probability model `M = (G, V)` of the ICDCS
//! 2009 paper, together with its Bayesian learning rule and the rank-based
//! fitness score used for problem determination.
//!
//! # Model
//!
//! For a pair of measurements, each observation is a two-dimensional point
//! `x_t = (m1_t, m2_t)`. Under the first-order Markov assumption
//! `P(x_{t+1} | x_t, …, x_1) = P(x_{t+1} | x_t)`, the model approximates
//! `P(x_{t+1} | x_t)` by the cell-level transition probability
//! `P(c_i → c_j)` where `x_t ∈ c_i` and `x_{t+1} ∈ c_j` over the grid
//! structure `G` built by [`gridwatch_grid`].
//!
//! # Learning
//!
//! * **Prior** — the *spatial closeness tendency*: transitions to nearby
//!   cells are a-priori more probable, `P(c_i → c_j) ∝ 1 / K(c_i, c_j)`
//!   where `K` is a [`DecayKernel`] weight with decay rate `w`
//!   ([`prior`]). With the default kernel and `w = 2` this reproduces the
//!   paper's printed Figure 5 matrix exactly.
//! * **Posterior** — each observed transition `x_t → x_{t+1}` with
//!   `x_{t+1} ∈ c_h` multiplies row `i` by the likelihood
//!   `P(x_t → x_{t+1} | c_i → c_j) ∝ 1 / K(c_h, c_j)` (Eq. 2) and
//!   renormalizes; performed additively in log space
//!   ([`TransitionMatrix`]).
//!
//! # Scoring
//!
//! For the observed destination cell `c_h`, cells are ranked by
//! `P(c_i → ·)` descending and the fitness score is
//! `Q = 1 − (π(c_h) − 1)/s` ([`fitness`]); out-of-grid points score 0.
//!
//! # Example
//!
//! ```
//! use gridwatch_core::{ModelConfig, TransitionModel};
//! use gridwatch_timeseries::{PairSeries, Point2};
//!
//! // History: a tight linear correlation y = 2x.
//! let history = PairSeries::from_samples(
//!     (0..500u64).map(|k| {
//!         let x = ((k % 100) as f64) + 1.0;
//!         (k * 360, x, 2.0 * x)
//!     }),
//! )?;
//! let mut model = TransitionModel::fit(&history, ModelConfig::default())?;
//!
//! // A correlated observation scores better than a broken one.
//! let good = model.score_point(Point2::new(50.0, 100.0));
//! let bad = model.score_point(Point2::new(50.0, 2.0));
//! assert!(good.fitness() > bad.fitness());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
pub mod fitness;
mod matrix;
mod model;
pub mod prior;
mod report;

pub use config::{ModelConfig, ModelConfigBuilder};
pub use error::ModelError;
pub use fitness::{
    fitness_from_rank, rank_of_destination, score_quantized_row, score_row, score_sparse_row,
    TransitionScore,
};
pub use gridwatch_grid::{DecayKernel, RowFormat};
pub use matrix::TransitionMatrix;
pub use model::{StepOutcome, TransitionModel};
pub use report::CellRanges;
