use std::error::Error;
use std::fmt;

use gridwatch_grid::GridError;

/// Errors produced while fitting or updating a transition model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The underlying grid could not be built.
    Grid(GridError),
    /// The history pair series had fewer than two points, so no transition
    /// could be observed.
    InsufficientHistory {
        /// How many points were provided.
        points: usize,
    },
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Description of the offending parameter.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Grid(e) => write!(f, "grid construction failed: {e}"),
            ModelError::InsufficientHistory { points } => write!(
                f,
                "history must contain at least 2 points to observe a transition, got {points}"
            ),
            ModelError::InvalidConfig { reason } => {
                write!(f, "invalid model configuration: {reason}")
            }
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for ModelError {
    fn from(e: GridError) -> Self {
        ModelError::Grid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::from(GridError::EmptyHistory);
        assert!(e.to_string().contains("grid construction failed"));
        assert!(e.source().is_some());
        let e = ModelError::InsufficientHistory { points: 1 };
        assert!(e.to_string().contains("at least 2"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<ModelError>();
    }
}
