//! The spatial-closeness prior over cell transitions.
//!
//! Given `x_t ∈ c_i`, the paper's prior makes `P(c_i → c_i)` the highest
//! and decays the probability exponentially as `c_j` departs from `c_i`:
//! `P(c_i → c_j) ∝ P(c_i → c_i) / w^{d(c_i, c_j)}`. The exact decay
//! weight is a [`DecayKernel`]; the default [`DecayKernel::MeanAxis`] with
//! `w = 2` reproduces the paper's Figure 5 example matrix digit for digit
//! (see the tests in this module).

use gridwatch_grid::{CellId, DecayKernel, GridStructure};

/// The unnormalized log-prior of transitioning from `from` to every cell
/// of the grid, in flat cell order: `-ln K(from, c_j)`.
///
/// Adding per-observation log-likelihood terms to this vector and
/// normalizing yields the posterior row (Eq. 1 of the paper, in log
/// space).
pub fn log_prior_row(
    grid: &GridStructure,
    kernel: DecayKernel,
    decay_rate: f64,
    from: CellId,
) -> Vec<f64> {
    grid.cells()
        .map(|to| {
            let (dx, dy) = grid.offset(from, to);
            -kernel.log_weight(decay_rate, dx, dy)
        })
        .collect()
}

/// The normalized prior distribution `P(from → ·)` over all cells, in
/// flat cell order. Each row sums to 1.
///
/// # Example
///
/// ```
/// use gridwatch_core::prior::prior_row;
/// use gridwatch_grid::{CellId, DecayKernel, GridStructure};
///
/// let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
/// // Row of the centre cell c5 (flat index 4) with the paper's w = 2:
/// let row = prior_row(&grid, DecayKernel::MeanAxis, 2.0, CellId(4));
/// assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// // Figure 5 prints P(c5 → c5) = 17.65%.
/// assert!((row[4] - 0.1765).abs() < 5e-4);
/// ```
pub fn prior_row(
    grid: &GridStructure,
    kernel: DecayKernel,
    decay_rate: f64,
    from: CellId,
) -> Vec<f64> {
    let log_row = log_prior_row(grid, kernel, decay_rate, from);
    normalize_log_row(&log_row)
}

/// The full `s × s` prior matrix, row `i` being `P(c_i → ·)`.
pub fn prior_matrix(grid: &GridStructure, kernel: DecayKernel, decay_rate: f64) -> Vec<Vec<f64>> {
    grid.cells()
        .map(|from| prior_row(grid, kernel, decay_rate, from))
        .collect()
}

/// Converts an unnormalized log-probability row into a normalized
/// probability row using the log-sum-exp trick.
pub fn normalize_log_row(log_row: &[f64]) -> Vec<f64> {
    let max = log_row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // All mass vanished; fall back to uniform to stay a distribution.
        let u = 1.0 / log_row.len() as f64;
        return vec![u; log_row.len()];
    }
    let sum: f64 = log_row.iter().map(|&l| (l - max).exp()).sum();
    let log_z = max + sum.ln();
    log_row.iter().map(|&l| (l - log_z).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3x3() -> GridStructure {
        GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3)
    }

    /// The paper's Figure 5: the full 9×9 prior matrix for a 3×3 grid,
    /// printed to two decimal places (percentages). Our default kernel
    /// must reproduce every entry.
    #[test]
    fn figure5_matrix_reproduced_exactly() {
        #[rustfmt::skip]
        let expected: [[f64; 9]; 9] = [
            [21.98, 14.65,  8.79, 14.65, 10.99,  7.33,  8.79,  7.33,  5.49],
            [13.16, 19.74, 13.16,  9.87, 13.16,  9.87,  6.58,  7.89,  6.58],
            [ 8.79, 14.65, 21.98,  7.33, 10.99, 14.65,  5.49,  7.33,  8.79],
            [13.16,  9.87,  6.58, 19.74, 13.16,  7.89, 13.16,  9.87,  6.58],
            [ 8.82, 11.76,  8.82, 11.76, 17.65, 11.76,  8.82, 11.76,  8.82],
            [ 6.58,  9.87, 13.16,  7.89, 13.16, 19.74,  6.58,  9.87, 13.16],
            [ 8.79,  7.33,  5.49, 14.65, 10.99,  7.33, 21.98, 14.65,  8.79],
            [ 6.58,  7.89,  6.58,  9.87, 13.16,  9.87, 13.16, 19.74, 13.16],
            [ 5.49,  7.33,  8.79,  7.33, 10.99, 14.65,  8.79, 14.65, 21.98],
        ];
        let grid = grid3x3();
        let matrix = prior_matrix(&grid, DecayKernel::MeanAxis, 2.0);
        for (i, row) in matrix.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                let want = expected[i][j] / 100.0;
                assert!(
                    (p - want).abs() < 5e-5,
                    "V[{}][{}] = {:.4}%, paper prints {:.2}%",
                    i + 1,
                    j + 1,
                    p * 100.0,
                    expected[i][j]
                );
            }
        }
    }

    #[test]
    fn rows_sum_to_one_for_all_kernels() {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 5, 4);
        for kernel in DecayKernel::ALL {
            for from in grid.cells() {
                let row = prior_row(&grid, kernel, 2.0, from);
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-10, "{kernel:?} row {from}");
            }
        }
    }

    #[test]
    fn self_transition_is_most_probable() {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 6, 6);
        for kernel in DecayKernel::ALL {
            for from in grid.cells() {
                let row = prior_row(&grid, kernel, 2.0, from);
                let self_p = row[from.index()];
                for (j, &p) in row.iter().enumerate() {
                    if j != from.index() {
                        assert!(self_p >= p, "{kernel:?}: self not maximal from {from}");
                    }
                }
            }
        }
    }

    #[test]
    fn probability_decreases_with_distance_along_a_row_of_cells() {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 8, 1);
        let row = prior_row(&grid, DecayKernel::MeanAxis, 2.0, CellId(0));
        for j in 1..8 {
            assert!(row[j] < row[j - 1], "prior must decay monotonically");
        }
    }

    #[test]
    fn higher_decay_rate_concentrates_mass() {
        let grid = grid3x3();
        let soft = prior_row(&grid, DecayKernel::MeanAxis, 1.5, CellId(4));
        let sharp = prior_row(&grid, DecayKernel::MeanAxis, 4.0, CellId(4));
        assert!(sharp[4] > soft[4]);
    }

    #[test]
    fn normalize_handles_degenerate_rows() {
        let row = normalize_log_row(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(row, vec![0.5, 0.5]);
        let row = normalize_log_row(&[0.0, 0.0, 0.0, 0.0]);
        assert!(row.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }
}
