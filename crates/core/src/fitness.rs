//! The rank-based fitness score (Section 5 of the paper).
//!
//! Given the current cell `c_i` and the observed destination cell `c_h`,
//! all cells are ranked by `P(c_i → ·)` in decreasing order (rank 1 =
//! most probable) and the fitness is `Q = 1 − (π(c_h) − 1)/s`. The most
//! probable destination scores 1, the least probable scores `1/s`, and
//! points that fall outside the grid score 0.
//!
//! Ties use *competition ranking*: cells with equal probability share the
//! best rank among them, so the score does not depend on an arbitrary
//! internal ordering. (The paper's worked example, Figure 11, has no ties;
//! this module's tests reproduce it exactly.)

use gridwatch_grid::{CellId, SparseRow};
use serde::{Deserialize, Serialize};

/// The outcome of scoring one observed transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionScore {
    fitness: f64,
    probability: f64,
    rank: Option<usize>,
    cell_count: usize,
    destination: Option<CellId>,
}

impl TransitionScore {
    /// A score for a destination inside the grid.
    pub(crate) fn in_grid(
        fitness: f64,
        probability: f64,
        rank: usize,
        cell_count: usize,
        destination: CellId,
    ) -> Self {
        TransitionScore {
            fitness,
            probability,
            rank: Some(rank),
            cell_count,
            destination: Some(destination),
        }
    }

    /// The zero score the paper assigns to out-of-grid outliers.
    pub(crate) fn outlier(cell_count: usize) -> Self {
        TransitionScore {
            fitness: 0.0,
            probability: 0.0,
            rank: None,
            cell_count,
            destination: None,
        }
    }

    /// The fitness score `Q ∈ [0, 1]`; 0 for outliers.
    pub fn fitness(&self) -> f64 {
        self.fitness
    }

    /// The model's transition probability `P(x_t → x_{t+1})`; 0 for
    /// outliers.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The destination cell's rank `π(c_h)` (1 = most probable), or
    /// `None` for outliers.
    pub fn rank(&self) -> Option<usize> {
        self.rank
    }

    /// The number of grid cells `s` at scoring time.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// The destination cell, or `None` for outliers.
    pub fn destination(&self) -> Option<CellId> {
        self.destination
    }

    /// Whether the observation fell outside the grid.
    pub fn is_outlier(&self) -> bool {
        self.destination.is_none()
    }
}

/// The competition rank (1-based) of `destination` when cells are ordered
/// by decreasing probability: `1 + #{j : p_j > p_dest}`.
///
/// # Panics
///
/// Panics if `destination` is out of range for `row`.
pub fn rank_of_destination(row: &[f64], destination: CellId) -> usize {
    let p = row[destination.index()];
    1 + row.iter().filter(|&&q| q > p).count()
}

/// The paper's fitness formula `Q = 1 − (rank − 1)/s`.
///
/// # Panics
///
/// Panics if `rank` is 0 or exceeds `cell_count`, or if `cell_count` is 0.
pub fn fitness_from_rank(rank: usize, cell_count: usize) -> f64 {
    assert!(cell_count > 0, "cell count must be positive");
    assert!(
        (1..=cell_count).contains(&rank),
        "rank must be in 1..={cell_count}, got {rank}"
    );
    1.0 - (rank - 1) as f64 / cell_count as f64
}

/// Scores a destination cell against a probability row: computes the rank
/// and fitness in one pass.
pub fn score_row(row: &[f64], destination: CellId) -> TransitionScore {
    let rank = rank_of_destination(row, destination);
    TransitionScore::in_grid(
        fitness_from_rank(rank, row.len()),
        row[destination.index()],
        rank,
        row.len(),
        destination,
    )
}

/// Scores a destination against a u16-quantized row without
/// materializing it.
///
/// Bit-identical to [`score_row`] over the dequantized row
/// `p_j = levels[j] / denom`: dividing by a positive constant preserves
/// strict order (so the competition rank computed on the `u16`s equals
/// the rank on the `f64`s) and the probability is recovered with the
/// same single division the materialization would perform.
///
/// # Panics
///
/// Panics if `destination` is out of range for `levels`.
pub fn score_quantized_row(levels: &[u16], denom: f64, destination: CellId) -> TransitionScore {
    let q = levels[destination.index()];
    let rank = 1 + levels.iter().filter(|&&v| v > q).count();
    TransitionScore::in_grid(
        fitness_from_rank(rank, levels.len()),
        f64::from(q) / denom,
        rank,
        levels.len(),
        destination,
    )
}

/// Scores a destination against a sparse quantized row without
/// materializing it. Bit-identical to [`score_row`] over
/// [`SparseRow::materialize`]: absent cells dequantize to exactly `0.0`
/// and tie at the worst rank, stored entries are all positive so only
/// they can outrank the destination.
///
/// # Panics
///
/// Panics if `destination` is out of range for the row.
pub fn score_sparse_row(row: &SparseRow, destination: CellId) -> TransitionScore {
    assert!(
        destination.index() < row.len(),
        "destination {destination} out of range for {} cells",
        row.len()
    );
    let q = row.level(destination.index());
    let rank = 1 + row.entries().iter().filter(|&&(_, v)| v > q).count();
    TransitionScore::in_grid(
        fitness_from_rank(rank, row.len()),
        f64::from(q) / row.denom(),
        rank,
        row.len(),
        destination,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 11: transition probabilities from c4 over six
    /// cells, with printed ranks and fitness scores.
    #[test]
    fn figure11_worked_example() {
        let row = [0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094];
        let expected_rank = [5, 2, 3, 1, 4, 6];
        let expected_fitness = [0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667];
        for j in 0..6 {
            let s = score_row(&row, CellId(j));
            assert_eq!(s.rank(), Some(expected_rank[j]), "cell c{}", j + 1);
            assert!(
                (s.fitness() - expected_fitness[j]).abs() < 5e-5,
                "cell c{}: fitness {} (paper prints {})",
                j + 1,
                s.fitness(),
                expected_fitness[j]
            );
            assert_eq!(s.probability(), row[j]);
            assert!(!s.is_outlier());
        }
    }

    #[test]
    fn fitness_extremes() {
        assert_eq!(fitness_from_rank(1, 10), 1.0);
        assert!((fitness_from_rank(10, 10) - 0.1).abs() < 1e-12);
        assert_eq!(fitness_from_rank(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "rank must be in")]
    fn fitness_rejects_zero_rank() {
        fitness_from_rank(0, 5);
    }

    #[test]
    #[should_panic(expected = "rank must be in")]
    fn fitness_rejects_excessive_rank() {
        fitness_from_rank(6, 5);
    }

    #[test]
    fn ties_share_best_rank() {
        let row = [0.4, 0.4, 0.2];
        assert_eq!(rank_of_destination(&row, CellId(0)), 1);
        assert_eq!(rank_of_destination(&row, CellId(1)), 1);
        assert_eq!(rank_of_destination(&row, CellId(2)), 3);
    }

    #[test]
    fn outlier_scores_zero() {
        let s = TransitionScore::outlier(9);
        assert_eq!(s.fitness(), 0.0);
        assert_eq!(s.probability(), 0.0);
        assert_eq!(s.rank(), None);
        assert!(s.is_outlier());
        assert_eq!(s.cell_count(), 9);
    }

    #[test]
    fn higher_probability_never_scores_worse() {
        let row = [0.05, 0.30, 0.10, 0.25, 0.20, 0.10];
        let mut indexed: Vec<usize> = (0..row.len()).collect();
        indexed.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        let mut prev = f64::INFINITY;
        for &j in &indexed {
            let f = score_row(&row, CellId(j)).fitness();
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }
}
