use std::fmt;

use gridwatch_grid::{CellId, GridStructure, Interval};
use serde::{Deserialize, Serialize};

/// The human-readable value ranges of one grid cell.
///
/// The paper emphasizes that "the model can output the problematic
/// measurement ranges, which are useful for human debugging" — its Group B
/// walkthrough reports an anomalous jump to the cell
/// `[22588, 45128] & [102940, 137220]`. This type renders exactly that
/// notation.
///
/// # Example
///
/// ```
/// use gridwatch_core::CellRanges;
/// use gridwatch_grid::{CellId, GridStructure};
///
/// let grid = GridStructure::uniform((0.0, 30.0), (0.0, 300.0), 3, 3);
/// let ranges = CellRanges::new(&grid, CellId(4));
/// assert_eq!(ranges.to_string(), "[10, 20) & [100, 200)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellRanges {
    cell: CellId,
    x: Interval,
    y: Interval,
}

impl CellRanges {
    /// Extracts the ranges of `cell` from `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for `grid`.
    pub fn new(grid: &GridStructure, cell: CellId) -> Self {
        let (x, y) = grid.cell_bounds(cell);
        CellRanges { cell, x, y }
    }

    /// The cell these ranges describe.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The first measurement's value range.
    pub fn x_range(&self) -> Interval {
        self.x
    }

    /// The second measurement's value range.
    pub fn y_range(&self) -> Interval {
        self.y
    }
}

/// Formats a bound compactly (integers without decimals, otherwise up to
/// four significant decimals).
fn fmt_bound(v: f64) -> String {
    // Comparing v to its own truncation is the standard exact test for
    // "is an integer"; a tolerance would misprint near-integers.
    #[allow(clippy::float_cmp)]
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

impl fmt::Display for CellRanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}) & [{}, {})",
            fmt_bound(self.x.lower()),
            fmt_bound(self.x.upper()),
            fmt_bound(self.y.lower()),
            fmt_bound(self.y.upper())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_style_ranges() {
        let grid = GridStructure::uniform((0.0, 30.0), (0.0, 300.0), 3, 3);
        let r = CellRanges::new(&grid, CellId(0));
        assert_eq!(r.to_string(), "[0, 10) & [0, 100)");
        assert_eq!(r.cell(), CellId(0));
        assert_eq!(r.x_range().width(), 10.0);
    }

    #[test]
    fn fractional_bounds_are_trimmed() {
        let grid = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), 4, 4);
        let r = CellRanges::new(&grid, CellId(5));
        assert_eq!(r.to_string(), "[0.25, 0.5) & [0.25, 0.5)");
    }
}
