use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use gridwatch_core::ModelConfig;
use gridwatch_timeseries::stats::pearson;
use gridwatch_timeseries::{
    AlignmentPolicy, MeasurementId, MeasurementPair, PairSeries, TimeSeries,
};

/// When and at which level alarms fire.
///
/// The paper flags an alarm "once the fitness score drops below a
/// threshold"; real deployments additionally debounce to suppress
/// single-sample flickers, which we expose as `min_consecutive`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmPolicy {
    /// System-level alarm threshold on `Q_t`.
    pub system_threshold: f64,
    /// Measurement-level alarm threshold on `Q^a_t`.
    pub measurement_threshold: f64,
    /// Number of consecutive below-threshold samples required before an
    /// alarm fires (1 = immediate).
    pub min_consecutive: u32,
}

impl Default for AlarmPolicy {
    fn default() -> Self {
        AlarmPolicy {
            system_threshold: 0.6,
            measurement_threshold: 0.5,
            min_consecutive: 1,
        }
    }
}

/// Configuration of a [`crate::DetectionEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The per-pair model configuration.
    pub model: ModelConfig,
    /// Alarm thresholds and debouncing.
    pub alarm: AlarmPolicy,
    /// Update pair models on worker threads (crossbeam scoped threads).
    /// Worthwhile from a few hundred pairs up.
    pub parallel: bool,
    /// If set, a gap between consecutive snapshots larger than this many
    /// seconds resets every model's trajectory: the first sample after a
    /// monitoring outage must not be scored as a "transition" from the
    /// pre-outage state (the Markov assumption only holds at the sampling
    /// cadence). `None` disables gap detection.
    #[serde(default)]
    pub max_gap_secs: Option<u64>,
    /// Online drift adaptation: when set, a sustained-fitness-decay
    /// detector watches every pair and refits its grid from recent
    /// observations once decay persists (the paper's MAFIA-style
    /// adaptivity; see [`crate::DriftConfig`]). `None` disables the
    /// drift layer entirely — the per-step cost is then one branch.
    #[serde(default)]
    pub drift: Option<crate::DriftConfig>,
    /// Sketch-gated pair selection: when set, a streaming
    /// random-projection sketch scores every candidate pair per snapshot
    /// and only pairs whose estimated correlation clears an admission
    /// threshold get a materialized grid model (see
    /// [`crate::SketchConfig`]). `None` disables the sketch layer
    /// entirely — the per-step cost is then one branch.
    #[serde(default)]
    pub sketch: Option<crate::SketchConfig>,
}

/// Pair-selection criteria mirroring Section 6 of the paper: "1) the
/// sampling rate should be reasonably high …; 2) the measurements do not
/// have any linear relationships with other measurements; and 3) the
/// measurement should have high variance during the monitoring period."
///
/// [`PairScreen::select`] applies the criteria to training series and
/// returns the canonical pair list to model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairScreen {
    /// Minimum number of samples a measurement needs (criterion 1).
    pub min_samples: usize,
    /// Minimum coefficient of variation (criterion 3); `0.0` disables.
    pub min_cv: f64,
    /// If set, drop measurements that have an |r| above this with any
    /// other measurement (criterion 2 — the paper's "difficult cases"
    /// focus on non-linear pairs). `None` keeps everything.
    pub exclude_linear_above: Option<f64>,
    /// Hard cap on the number of pairs (keeps experiments tractable);
    /// pairs are kept in canonical order.
    pub max_pairs: Option<usize>,
}

impl Default for PairScreen {
    fn default() -> Self {
        PairScreen {
            min_samples: 10,
            min_cv: 0.0,
            exclude_linear_above: None,
            max_pairs: None,
        }
    }
}

impl PairScreen {
    /// A screen reproducing the paper's selection: high variance, no
    /// linear relationships.
    pub fn paper_difficult_cases() -> Self {
        PairScreen {
            min_samples: 10,
            min_cv: 0.10,
            exclude_linear_above: Some(0.95),
            max_pairs: None,
        }
    }

    /// Applies the screen to training series and returns the pairs to
    /// model, in canonical order.
    pub fn select(&self, series: &BTreeMap<MeasurementId, TimeSeries>) -> Vec<MeasurementPair> {
        // Criterion 1 + 3: per-measurement filters.
        let mut kept: Vec<MeasurementId> = series
            .iter()
            .filter(|(_, s)| s.len() >= self.min_samples)
            .filter(|(_, s)| {
                gridwatch_grid::float::approx_zero(self.min_cv)
                    || s.coefficient_of_variation()
                        .is_some_and(|cv| cv >= self.min_cv)
            })
            .map(|(&id, _)| id)
            .collect();

        // Criterion 2: drop measurements with a strong linear partner.
        if let Some(limit) = self.exclude_linear_above {
            let mut linear: Vec<MeasurementId> = Vec::new();
            for (i, &a) in kept.iter().enumerate() {
                for &b in kept.iter().skip(i + 1) {
                    let (sa, sb) = (&series[&a], &series[&b]);
                    if let Ok(pair) = PairSeries::align(sa, sb, AlignmentPolicy::Intersect) {
                        let (xs, ys) = pair.columns();
                        if let Some(r) = pearson(&xs, &ys) {
                            if r.abs() >= limit {
                                linear.push(a);
                                linear.push(b);
                            }
                        }
                    }
                }
            }
            kept.retain(|id| !linear.contains(id));
        }

        let mut pairs = Vec::new();
        for (i, &a) in kept.iter().enumerate() {
            for &b in kept.iter().skip(i + 1) {
                if let Some(p) = MeasurementPair::new(a, b) {
                    pairs.push(p);
                }
            }
        }
        if let Some(max) = self.max_pairs {
            pairs.truncate(max);
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MetricKind};

    fn id(k: u32) -> MeasurementId {
        MeasurementId::new(MachineId::new(k), MetricKind::Custom(0))
    }

    fn series_from(values: &[f64]) -> TimeSeries {
        TimeSeries::from_samples(values.iter().enumerate().map(|(k, &v)| (k as u64, v))).unwrap()
    }

    #[test]
    fn all_pairs_without_filters() {
        let mut m = BTreeMap::new();
        for k in 0..4u32 {
            m.insert(
                id(k),
                series_from(
                    &(0..20)
                        .map(|i| (i + i64::from(k)) as f64)
                        .collect::<Vec<_>>(),
                ),
            );
        }
        let pairs = PairScreen::default().select(&m);
        assert_eq!(pairs.len(), 6); // C(4,2)
    }

    #[test]
    fn min_samples_filters_short_series() {
        let mut m = BTreeMap::new();
        m.insert(id(0), series_from(&[1.0, 2.0]));
        m.insert(
            id(1),
            series_from(&(0..20).map(|i| i as f64).collect::<Vec<_>>()),
        );
        m.insert(
            id(2),
            series_from(&(0..20).map(|i| (i * i) as f64).collect::<Vec<_>>()),
        );
        let pairs = PairScreen::default().select(&m);
        assert_eq!(pairs.len(), 1);
        assert!(!pairs[0].contains(id(0)));
    }

    #[test]
    fn linear_screen_drops_perfectly_correlated() {
        let mut m = BTreeMap::new();
        let base: Vec<f64> = (0..50).map(|i| i as f64 + 1.0).collect();
        m.insert(id(0), series_from(&base));
        m.insert(
            id(1),
            series_from(&base.iter().map(|v| 2.0 * v).collect::<Vec<_>>()),
        );
        // A non-linear, high-variance partner.
        m.insert(
            id(2),
            series_from(
                &base
                    .iter()
                    .map(|v| (v * 0.5).sin() * 100.0 + 200.0)
                    .collect::<Vec<_>>(),
            ),
        );
        let screen = PairScreen {
            exclude_linear_above: Some(0.95),
            ..PairScreen::default()
        };
        let pairs = screen.select(&m);
        // 0 and 1 are linearly related and both dropped; only 2 remains,
        // with nobody to pair with.
        assert!(pairs.is_empty());
    }

    #[test]
    fn max_pairs_truncates() {
        let mut m = BTreeMap::new();
        for k in 0..6u32 {
            let vals: Vec<f64> = (0..30)
                .map(|i| ((i * (k as i64 + 2)) as f64).sin() * 10.0 + 20.0)
                .collect();
            m.insert(id(k), series_from(&vals));
        }
        let screen = PairScreen {
            max_pairs: Some(5),
            ..PairScreen::default()
        };
        assert_eq!(screen.select(&m).len(), 5);
    }

    #[test]
    fn default_policy_is_sane() {
        let p = AlarmPolicy::default();
        assert!(p.system_threshold > 0.0 && p.system_threshold < 1.0);
        assert!(p.min_consecutive >= 1);
    }
}
