use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{MachineId, MeasurementId, MeasurementPair, Timestamp};

/// The three-level fitness aggregation of Section 5: pair scores
/// `Q^{a,b}_t`, per-measurement scores `Q^a_t`, and the system score
/// `Q_t`, plus the per-machine averages used for localization
/// (Figure 14).
///
/// # Example
///
/// ```
/// use gridwatch_detect::ScoreBoard;
/// use gridwatch_timeseries::{
///     MachineId, MeasurementId, MeasurementPair, MetricKind, Timestamp,
/// };
///
/// let a = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
/// let b = MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage);
/// let c = MeasurementId::new(MachineId::new(1), MetricKind::CpuUtilization);
/// let mut board = ScoreBoard::new(Timestamp::EPOCH);
/// board.record(MeasurementPair::new(a, b).unwrap(), 1.0);
/// board.record(MeasurementPair::new(a, c).unwrap(), 0.5);
/// assert_eq!(board.measurement_score(a), Some(0.75));
/// assert_eq!(board.machine_score(MachineId::new(1)), Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreBoard {
    at: Timestamp,
    pair_scores: BTreeMap<MeasurementPair, f64>,
}

impl ScoreBoard {
    /// Creates an empty board for one sampling instant.
    pub fn new(at: Timestamp) -> Self {
        ScoreBoard {
            at,
            pair_scores: BTreeMap::new(),
        }
    }

    /// The sampling instant.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// Records the fitness score of one pair.
    pub fn record(&mut self, pair: MeasurementPair, fitness: f64) {
        self.pair_scores.insert(pair, fitness);
    }

    /// Number of recorded pair scores.
    pub fn len(&self) -> usize {
        self.pair_scores.len()
    }

    /// Whether the board has no scores.
    pub fn is_empty(&self) -> bool {
        self.pair_scores.is_empty()
    }

    /// The pair-level score `Q^{a,b}_t`.
    pub fn pair_score(&self, pair: MeasurementPair) -> Option<f64> {
        self.pair_scores.get(&pair).copied()
    }

    /// All pair scores.
    pub fn pair_scores(&self) -> impl ExactSizeIterator<Item = (MeasurementPair, f64)> + '_ {
        self.pair_scores.iter().map(|(&p, &s)| (p, s))
    }

    /// The measurement-level score `Q^a_t`: the mean of the scores of all
    /// pairs involving `a`, or `None` if no such pair was recorded.
    pub fn measurement_score(&self, a: MeasurementId) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&pair, &s) in &self.pair_scores {
            if pair.contains(a) {
                sum += s;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// All measurement-level scores, in sorted measurement order.
    pub fn measurement_scores(&self) -> BTreeMap<MeasurementId, f64> {
        let mut acc: BTreeMap<MeasurementId, (f64, usize)> = BTreeMap::new();
        for (&pair, &s) in &self.pair_scores {
            for id in [pair.first(), pair.second()] {
                let e = acc.entry(id).or_insert((0.0, 0));
                e.0 += s;
                e.1 += 1;
            }
        }
        acc.into_iter()
            .map(|(id, (sum, n))| (id, sum / n as f64))
            .collect()
    }

    /// The system-level score `Q_t`: the mean of all measurement scores,
    /// or `None` if the board is empty.
    pub fn system_score(&self) -> Option<f64> {
        let per_measurement = self.measurement_scores();
        if per_measurement.is_empty() {
            return None;
        }
        Some(per_measurement.values().sum::<f64>() / per_measurement.len() as f64)
    }

    /// Importance-weighted system score: the paper notes that "for less
    /// important system components, we may merge their fitness scores"
    /// into the single administrator-facing number — this generalizes
    /// [`ScoreBoard::system_score`] with per-measurement weights.
    ///
    /// Measurements missing from `weights` default to weight 1; weights
    /// must be non-negative. Returns `None` when no positive total
    /// weight exists.
    ///
    /// # Panics
    ///
    /// Panics if any supplied weight is negative or non-finite.
    pub fn weighted_system_score(&self, weights: &BTreeMap<MeasurementId, f64>) -> Option<f64> {
        let mut total = 0.0;
        let mut sum = 0.0;
        for (id, q) in self.measurement_scores() {
            let w = weights.get(&id).copied().unwrap_or(1.0);
            assert!(
                w.is_finite() && w >= 0.0,
                "importance weight for {id} must be finite and non-negative, got {w}"
            );
            total += w;
            sum += w * q;
        }
        (total > 0.0).then(|| sum / total)
    }

    /// The per-machine average of measurement scores — "the average
    /// fitness score among measurements collected from the same machine"
    /// (Figure 14).
    pub fn machine_scores(&self) -> BTreeMap<MachineId, f64> {
        let mut acc: BTreeMap<MachineId, (f64, usize)> = BTreeMap::new();
        for (id, s) in self.measurement_scores() {
            let e = acc.entry(id.machine()).or_insert((0.0, 0));
            e.0 += s;
            e.1 += 1;
        }
        acc.into_iter()
            .map(|(m, (sum, n))| (m, sum / n as f64))
            .collect()
    }

    /// The average score of one machine's measurements.
    pub fn machine_score(&self, machine: MachineId) -> Option<f64> {
        self.machine_scores().get(&machine).copied()
    }

    /// Absorbs another board's pair scores. Because the three-level
    /// aggregation is a pure function of the pair-score map, merging
    /// partial boards built from disjoint pair subsets reproduces the
    /// board a single engine would have produced — this is what makes
    /// pair-sharded scoring exact.
    ///
    /// # Panics
    ///
    /// Panics when the boards are for different instants or share a pair
    /// (shards must partition the pair set).
    pub fn merge(&mut self, other: ScoreBoard) {
        assert_eq!(
            self.at, other.at,
            "cannot merge score boards from different instants"
        );
        for (pair, score) in other.pair_scores {
            let prev = self.pair_scores.insert(pair, score);
            assert!(
                prev.is_none(),
                "pair {pair:?} scored by two shards; shards must be disjoint"
            );
        }
    }

    /// Fallible [`ScoreBoard::merge`] for boards of untrusted origin
    /// (e.g. received over the network from a remote shard worker): a
    /// mismatched instant or overlapping pair is a protocol violation
    /// to report, not a programming bug to panic on. On error, `self`
    /// is left unchanged.
    pub fn try_merge(&mut self, other: ScoreBoard) -> Result<(), MergeError> {
        if self.at != other.at {
            return Err(MergeError::InstantMismatch {
                ours: self.at,
                theirs: other.at,
            });
        }
        if let Some(pair) = other
            .pair_scores
            .keys()
            .find(|p| self.pair_scores.contains_key(*p))
        {
            return Err(MergeError::OverlappingPair(*pair));
        }
        self.pair_scores.extend(other.pair_scores);
        Ok(())
    }
}

/// Why [`ScoreBoard::try_merge`] refused a partial board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// The boards describe different sampling instants.
    InstantMismatch {
        /// The receiving board's instant.
        ours: Timestamp,
        /// The refused board's instant.
        theirs: Timestamp,
    },
    /// Both boards score the same pair; shards must be disjoint.
    OverlappingPair(MeasurementPair),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::InstantMismatch { ours, theirs } => {
                write!(f, "cannot merge board for {theirs} into board for {ours}")
            }
            MergeError::OverlappingPair(pair) => {
                write!(
                    f,
                    "pair {pair} scored by two shards; shards must be disjoint"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::MetricKind;

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    fn pair(a: MeasurementId, b: MeasurementId) -> MeasurementPair {
        MeasurementPair::new(a, b).unwrap()
    }

    #[test]
    fn three_level_aggregation() {
        // Three measurements on two machines, full triangle of pairs.
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(pair(a, b), 0.9);
        board.record(pair(a, c), 0.6);
        board.record(pair(b, c), 0.3);

        let close = |got: Option<f64>, want: f64| {
            let got = got.expect("score present");
            assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        };
        // Q^a = (0.9 + 0.6)/2, Q^b = (0.9 + 0.3)/2, Q^c = (0.6 + 0.3)/2.
        close(board.measurement_score(a), 0.75);
        close(board.measurement_score(b), 0.6);
        close(board.measurement_score(c), 0.45);

        // System = mean of measurement scores.
        close(board.system_score(), 0.6);

        // Machine 0 holds a and b; machine 1 holds c.
        close(board.machine_score(MachineId::new(0)), 0.675);
        close(board.machine_score(MachineId::new(1)), 0.45);
    }

    #[test]
    fn try_merge_reports_protocol_violations_without_mutating() {
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut left = ScoreBoard::new(Timestamp::EPOCH);
        left.record(pair(a, b), 0.9);

        // Disjoint merge succeeds and matches the panicking merge.
        let mut right = ScoreBoard::new(Timestamp::EPOCH);
        right.record(pair(a, c), 0.6);
        left.try_merge(right).unwrap();
        assert_eq!(left.pair_score(pair(a, c)), Some(0.6));

        // Instant mismatch is refused, board unchanged.
        let other_instant = ScoreBoard::new(Timestamp::from_secs(360));
        let before = left.clone();
        assert!(matches!(
            left.try_merge(other_instant),
            Err(MergeError::InstantMismatch { .. })
        ));
        assert_eq!(left, before);

        // Overlapping pair is refused, board unchanged.
        let mut overlap = ScoreBoard::new(Timestamp::EPOCH);
        overlap.record(pair(a, b), 0.1);
        overlap.record(pair(b, c), 0.2);
        assert_eq!(
            left.try_merge(overlap),
            Err(MergeError::OverlappingPair(pair(a, b)))
        );
        assert_eq!(left, before);
    }

    #[test]
    fn empty_board_has_no_scores() {
        let board = ScoreBoard::new(Timestamp::EPOCH);
        assert!(board.is_empty());
        assert_eq!(board.system_score(), None);
        assert_eq!(board.measurement_score(id(0, 0)), None);
        assert!(board.machine_scores().is_empty());
    }

    #[test]
    fn unknown_measurement_scores_none() {
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(pair(id(0, 0), id(0, 1)), 1.0);
        assert_eq!(board.measurement_score(id(9, 9)), None);
    }

    #[test]
    fn weighted_system_score_generalizes_the_mean() {
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(pair(a, b), 0.9);
        board.record(pair(a, c), 0.6);
        board.record(pair(b, c), 0.3);
        // Uniform weights reproduce the plain system score.
        let uniform = board.weighted_system_score(&BTreeMap::new()).unwrap();
        assert!((uniform - board.system_score().unwrap()).abs() < 1e-12);
        // Down-weighting the weakest measurement (c) raises the score.
        let mut weights = BTreeMap::new();
        weights.insert(c, 0.1);
        let weighted = board.weighted_system_score(&weights).unwrap();
        assert!(
            weighted > uniform,
            "weighted {weighted} vs uniform {uniform}"
        );
        // Zero weight everywhere -> no score.
        let mut zeroes = BTreeMap::new();
        for m in [a, b, c] {
            zeroes.insert(m, 0.0);
        }
        assert_eq!(board.weighted_system_score(&zeroes), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(pair(id(0, 0), id(0, 1)), 0.5);
        let mut weights = BTreeMap::new();
        weights.insert(id(0, 0), -1.0);
        board.weighted_system_score(&weights);
    }

    #[test]
    fn merge_of_disjoint_partials_matches_single_board() {
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut whole = ScoreBoard::new(Timestamp::EPOCH);
        whole.record(pair(a, b), 0.9);
        whole.record(pair(a, c), 0.6);
        whole.record(pair(b, c), 0.3);

        let mut left = ScoreBoard::new(Timestamp::EPOCH);
        left.record(pair(a, b), 0.9);
        let mut right = ScoreBoard::new(Timestamp::EPOCH);
        right.record(pair(a, c), 0.6);
        right.record(pair(b, c), 0.3);
        left.merge(right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "different instants")]
    fn merge_rejects_mismatched_instants() {
        let mut left = ScoreBoard::new(Timestamp::EPOCH);
        left.merge(ScoreBoard::new(Timestamp::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn merge_rejects_overlapping_pairs() {
        let p = pair(id(0, 0), id(0, 1));
        let mut left = ScoreBoard::new(Timestamp::EPOCH);
        left.record(p, 0.5);
        let mut right = ScoreBoard::new(Timestamp::EPOCH);
        right.record(p, 0.7);
        left.merge(right);
    }

    #[test]
    fn recording_same_pair_overwrites() {
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        let p = pair(id(0, 0), id(0, 1));
        board.record(p, 0.2);
        board.record(p, 0.8);
        assert_eq!(board.pair_score(p), Some(0.8));
        assert_eq!(board.len(), 1);
    }
}
