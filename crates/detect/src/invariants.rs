//! Runtime invariant checks for the detection layer.
//!
//! The paper's math only holds under properties the type system cannot
//! express:
//!
//! * every transition row of `V` is a probability distribution — entries
//!   in `[0, 1]`, summing to one (Section 3, Eq. 1);
//! * every fitness score `Q` lies in `[0, 1]` (Section 4.2: `Q = 1 −
//!   (rank − 1)/s`);
//! * the decay rate `w` of the spatial-closeness prior exceeds one
//!   (Section 4.2: probability decays in cell distance);
//! * the grid underlying each model tiles the value space
//!   ([`gridwatch_grid::invariants`]).
//!
//! Pure verifiers return `Err(description)` and are reused by
//! `gridwatch-audit` for offline checkpoint validation; the `check_*`
//! wrappers assert at runtime and are active under `debug_assertions` or
//! the crate's `validate` feature (which also enables the grid-level
//! checks in release builds).

use gridwatch_core::TransitionModel;
use gridwatch_timeseries::MeasurementPair;

/// Tolerance for row sums: rows are normalized in log space from up to
/// `s` terms, so the accumulated rounding budget is larger than the
/// comparison epsilon for individual scores.
pub const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// Default number of observed rows sampled per model by
/// [`verify_model`]'s callers. A handful of rows catches systematic
/// normalization bugs without making startup quadratic in model count.
pub const DEFAULT_ROW_SAMPLE: usize = 8;

/// Whether the assertion wrappers are active in this build: true under
/// `debug_assertions` or with the `validate` feature enabled.
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "validate"))
}

/// Verifies a fitness score `Q ∈ [0, 1]` and finite.
pub fn verify_fitness(q: f64) -> Result<(), String> {
    if !q.is_finite() {
        return Err(format!("fitness score is not finite: {q}"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(format!("fitness score outside [0, 1]: {q}"));
    }
    Ok(())
}

/// Verifies that `row` is a probability distribution: non-empty, every
/// entry finite and in `[0, 1]` (within [`ROW_SUM_TOLERANCE`]), and the
/// entries summing to one within [`ROW_SUM_TOLERANCE`].
pub fn verify_row_stochastic(row: &[f64]) -> Result<(), String> {
    if row.is_empty() {
        return Err("transition row is empty".to_owned());
    }
    let mut sum = 0.0;
    for (k, &p) in row.iter().enumerate() {
        if !p.is_finite() {
            return Err(format!("transition probability {k} is not finite: {p}"));
        }
        if !(-ROW_SUM_TOLERANCE..=1.0 + ROW_SUM_TOLERANCE).contains(&p) {
            return Err(format!("transition probability {k} outside [0, 1]: {p}"));
        }
        sum += p;
    }
    if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
        return Err(format!(
            "transition row is not row-stochastic: sums to {sum}"
        ));
    }
    Ok(())
}

/// Verifies one model's static invariants: a well-formed grid, a decay
/// rate `w > 1`, transition counts that stay inside the grid's cell
/// range, and (for up to `max_rows` observed source cells) row-stochastic
/// transition rows.
pub fn verify_model(model: &TransitionModel, max_rows: usize) -> Result<(), String> {
    let grid = model.grid();
    gridwatch_grid::invariants::verify_grid(grid)?;
    let matrix = model.matrix();
    if !matrix.decay_rate().is_finite() || matrix.decay_rate() <= 1.0 {
        return Err(format!(
            "decay rate must exceed 1, got {}",
            matrix.decay_rate()
        ));
    }
    if let Some(max_cell) = matrix.max_referenced_cell() {
        if max_cell >= grid.cell_count() {
            return Err(format!(
                "transition matrix references cell {max_cell} but the grid has only {} cells",
                grid.cell_count()
            ));
        }
    }
    for from in matrix.observed_sources().take(max_rows) {
        let row = matrix.compute_row(grid, from);
        if let Err(why) = verify_row_stochastic(&row) {
            return Err(format!("row of {from}: {why}"));
        }
    }
    Ok(())
}

/// Asserts [`verify_fitness`] when checks are [`enabled`].
pub fn check_fitness(q: f64) {
    if enabled() {
        let checked = verify_fitness(q);
        assert!(checked.is_ok(), "detection invariant violated: {checked:?}");
    }
}

/// Asserts [`verify_row_stochastic`] when checks are [`enabled`].
pub fn check_row_stochastic(row: &[f64]) {
    if enabled() {
        let checked = verify_row_stochastic(row);
        assert!(checked.is_ok(), "detection invariant violated: {checked:?}");
    }
}

/// Asserts [`verify_model`] for every model when checks are [`enabled`].
/// Called at engine construction (training and snapshot recovery), not
/// per step: the sampled rows make it a startup cost only.
pub fn check_models<'a, I>(models: I)
where
    I: IntoIterator<Item = (&'a MeasurementPair, &'a TransitionModel)>,
{
    if !enabled() {
        return;
    }
    for (pair, model) in models {
        let checked = verify_model(model, DEFAULT_ROW_SAMPLE);
        assert!(
            checked.is_ok(),
            "model invariant violated for {pair}: {checked:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_bounds() {
        assert!(verify_fitness(0.0).is_ok());
        assert!(verify_fitness(1.0).is_ok());
        assert!(verify_fitness(0.37).is_ok());
        assert!(verify_fitness(-0.01).is_err());
        assert!(verify_fitness(1.01).is_err());
        assert!(verify_fitness(f64::NAN).is_err());
        assert!(verify_fitness(f64::INFINITY).is_err());
    }

    #[test]
    fn row_stochastic_bounds() {
        assert!(verify_row_stochastic(&[0.25, 0.25, 0.5]).is_ok());
        assert!(verify_row_stochastic(&[1.0]).is_ok());
        assert!(verify_row_stochastic(&[]).is_err());
        assert!(verify_row_stochastic(&[0.6, 0.6]).is_err());
        assert!(verify_row_stochastic(&[0.5, f64::NAN]).is_err());
        assert!(verify_row_stochastic(&[1.5, -0.5]).is_err());
    }

    #[test]
    fn tiny_rounding_error_is_tolerated() {
        let row = [0.1; 10]; // sums to 1 within rounding, not exactly
        assert!(verify_row_stochastic(&row).is_ok());
    }
}
