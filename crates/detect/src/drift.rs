//! Online drift detection and per-pair model rebuild.
//!
//! The paper's grids are fitted once and then assume the learned
//! correlation structure stays valid; Section 7 points at MAFIA-style
//! adaptive grid maintenance for when it does not. This module supplies
//! that adaptivity: a **sustained-fitness-decay** detector watches every
//! pair's fitness stream and, when decay persists, refits that pair's
//! grid from a sliding window of recent observations.
//!
//! Drift is distinguished from point anomalies by *duration* and
//! *breadth within the window*: a pair only rebuilds after at least
//! [`DriftConfig::decay_fraction`] of the last [`DriftConfig::window`]
//! scored steps fell below [`DriftConfig::fitness_floor`]. A transient
//! fault (the injected two-hour faults span ~20 samples) cannot fill a
//! 40-step window at 85% and therefore never triggers a rebuild, while
//! a permanent correlation rewire does so shortly after its ramp
//! completes.
//!
//! Rebuild bookkeeping (windows, histories, cooldowns) is runtime-only
//! state: it is **not** persisted with [`crate::EngineSnapshot`] and is
//! reconstructed empty from the [`DriftConfig`] on restore, so a
//! restarted engine re-earns its drift evidence before rebuilding.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_timeseries::{MeasurementPair, PairSeries, Timestamp};

use crate::snapshot::Snapshot;

/// Configuration of the sustained-fitness-decay drift detector.
///
/// Part of [`crate::EngineConfig`]; `None` there disables the drift
/// layer entirely (the per-step cost is then a single branch).
///
/// Schema evolution: the struct is always (de)serialized whole as part
/// of [`crate::EngineConfig`]; its fields carry `#[serde(default)]` per
/// the checkpoint-schema policy, and a hand-truncated JSON object
/// zeroes the missing fields, which makes the detector *inert* (a
/// zero-length window can never accumulate decay) rather than
/// trigger-happy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Fitness below this counts as a decayed step.
    #[serde(default)]
    pub fitness_floor: f64,
    /// Length of the per-pair sliding window, in scored steps.
    #[serde(default)]
    pub window: u32,
    /// Fraction of the window that must be decayed to trigger a
    /// rebuild (breadth-within-window; separates drift from dips).
    #[serde(default)]
    pub decay_fraction: f64,
    /// Minimum retained observations before a rebuild may fire (a grid
    /// refit on too little data would be degenerate).
    #[serde(default)]
    pub min_history: u32,
    /// How many recent observations each pair retains for refitting.
    #[serde(default)]
    pub history_points: u32,
    /// Steps a pair stays quiet after a rebuild before it may trigger
    /// again.
    #[serde(default)]
    pub cooldown: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            fitness_floor: 0.45,
            window: 40,
            decay_fraction: 0.85,
            min_history: 60,
            history_points: 480,
            cooldown: 120,
        }
    }
}

impl DriftConfig {
    /// Decayed steps required in a full window to trigger a rebuild.
    pub fn decayed_needed(&self) -> u32 {
        let needed = (f64::from(self.window) * self.decay_fraction).ceil();
        (needed as u32).clamp(1, self.window.max(1))
    }
}

/// One model rebuild decision, surfaced through
/// [`crate::DetectionEngine::take_rebuild_events`], the flight
/// recorder (kind `rebuild`), and from there the history store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebuildEvent {
    /// The pair whose model was rebuilt.
    pub pair: MeasurementPair,
    /// When the rebuild triggered (trace time).
    pub at: Timestamp,
    /// Decayed steps in the window at trigger time.
    pub decayed: u32,
    /// The window length the decay was measured over.
    pub window: u32,
    /// Observations the refit used.
    pub history_len: u32,
    /// Whether the refit produced a usable replacement model. A failed
    /// refit keeps the old model and still starts the cooldown.
    pub succeeded: bool,
}

impl std::fmt::Display for RebuildEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rebuild pair={} at={} decayed={}/{} history={} ok={}",
            self.pair, self.at, self.decayed, self.window, self.history_len, self.succeeded
        )
    }
}

/// Per-pair drift bookkeeping.
#[derive(Debug, Default)]
struct PairDrift {
    /// Decayed-flag ring over the last `window` scored steps.
    window: VecDeque<bool>,
    /// Recent observations `(at_secs, x, y)` for refitting.
    history: VecDeque<(u64, f64, f64)>,
    /// Steps remaining before this pair may trigger again.
    cooldown: u32,
}

/// The engine's drift layer: windows, histories, and pending rebuild
/// events for every watched pair. Exists only when
/// [`crate::EngineConfig::drift`] is set.
#[derive(Debug)]
pub(crate) struct DriftRuntime {
    config: DriftConfig,
    pairs: BTreeMap<MeasurementPair, PairDrift>,
    pending: Vec<RebuildEvent>,
    total_rebuilds: u64,
}

impl DriftRuntime {
    pub(crate) fn new(config: DriftConfig) -> Self {
        DriftRuntime {
            config,
            pairs: BTreeMap::new(),
            pending: Vec::new(),
            total_rebuilds: 0,
        }
    }

    /// Feeds one step's scored results and rebuilds any pair whose
    /// decay evidence is complete. Returns how many rebuilds fired.
    pub(crate) fn observe(
        &mut self,
        models: &mut BTreeMap<MeasurementPair, TransitionModel>,
        model_config: ModelConfig,
        snapshot: &Snapshot,
        results: &[(MeasurementPair, Option<f64>)],
    ) -> usize {
        let mut fired = 0usize;
        for &(pair, fitness) in results {
            let Some(fitness) = fitness else { continue };
            let (Some(x), Some(y)) = (snapshot.value(pair.first()), snapshot.value(pair.second()))
            else {
                continue;
            };
            let state = self.pairs.entry(pair).or_default();
            state.history.push_back((snapshot.at().as_secs(), x, y));
            while state.history.len() > self.config.history_points as usize {
                state.history.pop_front();
            }
            state.window.push_back(fitness < self.config.fitness_floor);
            while state.window.len() > self.config.window as usize {
                state.window.pop_front();
            }
            if state.cooldown > 0 {
                state.cooldown -= 1;
                continue;
            }
            if state.window.len() < self.config.window as usize
                || state.history.len() < self.config.min_history as usize
            {
                continue;
            }
            let decayed = state.window.iter().filter(|&&d| d).count() as u32;
            if decayed < self.config.decayed_needed() {
                continue;
            }
            // Sustained decay: refit this pair's grid from its recent
            // observations (which span the drifted regime).
            let refit = PairSeries::from_samples(state.history.iter().copied())
                .ok()
                .and_then(|series| TransitionModel::fit(&series, model_config).ok());
            let succeeded = refit.is_some();
            if let Some(model) = refit {
                models.insert(pair, model);
            }
            self.pending.push(RebuildEvent {
                pair,
                at: snapshot.at(),
                decayed,
                window: self.config.window,
                history_len: state.history.len() as u32,
                succeeded,
            });
            self.total_rebuilds += 1;
            fired += 1;
            state.window.clear();
            state.cooldown = self.config.cooldown;
        }
        fired
    }

    /// Drains the rebuild events accumulated since the last drain.
    pub(crate) fn take_events(&mut self) -> Vec<RebuildEvent> {
        std::mem::take(&mut self.pending)
    }

    /// The `n` most recently pushed pending events (those fired by the
    /// current step), for flight-recorder announcement.
    pub(crate) fn recent_events(&self, n: usize) -> &[RebuildEvent] {
        &self.pending[self.pending.len().saturating_sub(n)..]
    }

    /// Total rebuilds fired over this runtime's lifetime.
    pub(crate) fn total_rebuilds(&self) -> u64 {
        self.total_rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decayed_needed_rounds_up_and_clamps() {
        let cfg = DriftConfig::default();
        assert_eq!(cfg.decayed_needed(), 34); // ceil(40 * 0.85)
        let tiny = DriftConfig {
            window: 1,
            decay_fraction: 0.0,
            ..DriftConfig::default()
        };
        assert_eq!(tiny.decayed_needed(), 1);
    }

    #[test]
    fn config_round_trips_and_truncated_json_is_inert() {
        let cfg = DriftConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DriftConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // A hand-truncated object zeroes the missing fields; the
        // resulting zero-length window can never trigger (safe mode).
        let partial: DriftConfig = serde_json::from_str("{\"fitness_floor\": 0.9}").unwrap();
        assert_eq!(partial.window, 0);
        assert_eq!(partial.decayed_needed(), 1);
    }

    #[test]
    fn engine_config_without_drift_key_restores_to_none() {
        // Pre-drift checkpoints lack the `drift` key entirely — the
        // real schema-evolution path.
        let legacy = serde_json::to_string(&crate::EngineConfig::default()).unwrap();
        let stripped = legacy.replace(",\"drift\":null", "");
        assert_ne!(legacy, stripped, "drift key present in current schema");
        let cfg: crate::EngineConfig = serde_json::from_str(&stripped).unwrap();
        assert!(cfg.drift.is_none());
    }

    #[test]
    fn rebuild_event_display_is_greppable() {
        let a = gridwatch_timeseries::MeasurementId::new(
            gridwatch_timeseries::MachineId::new(0),
            gridwatch_timeseries::MetricKind::CpuUtilization,
        );
        let b = gridwatch_timeseries::MeasurementId::new(
            gridwatch_timeseries::MachineId::new(1),
            gridwatch_timeseries::MetricKind::CpuUtilization,
        );
        let event = RebuildEvent {
            pair: MeasurementPair::new(a, b).unwrap(),
            at: Timestamp::from_secs(360),
            decayed: 34,
            window: 40,
            history_len: 120,
            succeeded: true,
        };
        let text = event.to_string();
        assert!(text.starts_with("rebuild pair="), "{text}");
        assert!(text.contains("decayed=34/40"), "{text}");
        assert!(text.contains("ok=true"), "{text}");
    }
}
