//! System-level problem determination and localization (Section 5 of the
//! paper).
//!
//! With `l` measurements under watch, the paper keeps `l(l−1)/2` pairwise
//! transition-probability models and evaluates a *fitness score* at three
//! levels at every sampling instant `t`:
//!
//! 1. **Pair** — `Q^{a,b}_t`: the rank-based score of the observed
//!    transition under the pair's model (from `gridwatch-core`);
//! 2. **Measurement** — `Q^a_t`: the mean of `Q^{a,b}_t` over the `l−1`
//!    partners `b ≠ a` (all links leading to node `a` in the correlation
//!    graph);
//! 3. **System** — `Q_t`: the mean over all measurements.
//!
//! Administrators watch `Q_t`; when it drops below a threshold `δ` they
//! drill down to per-measurement scores, per-machine averages (Figure
//! 14), and finally the offending pair's cell ranges for debugging.
//!
//! This crate provides the [`DetectionEngine`] that owns the models and
//! consumes timestamped [`Snapshot`]s, the three-level aggregation
//! ([`ScoreBoard`]), alarm generation with debouncing ([`AlarmPolicy`]),
//! and machine-level localization ([`Localizer`]).
//!
//! # Example
//!
//! ```
//! use gridwatch_detect::{DetectionEngine, EngineConfig, Snapshot};
//! use gridwatch_timeseries::{
//!     MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
//! };
//!
//! let a = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
//! let b = MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage);
//! let pair = MeasurementPair::new(a, b).unwrap();
//! let history = PairSeries::from_samples(
//!     (0..300u64).map(|k| {
//!         let x = (k % 60) as f64;
//!         (k * 360, x, 2.0 * x + 5.0)
//!     }),
//! )?;
//!
//! let mut engine = DetectionEngine::train(
//!     vec![(pair, history)],
//!     EngineConfig::default(),
//! )?;
//!
//! let mut snapshot = Snapshot::new(Timestamp::from_secs(300 * 360));
//! snapshot.insert(a, 30.0);
//! snapshot.insert(b, 65.0);
//! let report = engine.step(&snapshot);
//! assert!(report.scores.system_score().unwrap() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alarm;
mod config;
mod drift;
mod engine;
mod incident;
pub mod invariants;
mod localize;
mod persist;
mod scores;
mod sketch;
mod snapshot;

pub use alarm::{AlarmEvent, AlarmLevel, AlarmTracker};
pub use config::{AlarmPolicy, EngineConfig, PairScreen};
pub use drift::{DriftConfig, RebuildEvent};
pub use engine::{DetectionEngine, NoModelsTrained, StepReport, TrainingOutcome};
pub use incident::{IncidentReport, PairFinding};
pub use localize::{Localizer, SuspectMachine, SuspectMeasurement};
pub use persist::EngineSnapshot;
pub use scores::{MergeError, ScoreBoard};
pub use sketch::{LifecycleKind, PairLifecycleEvent, SketchConfig};
pub use snapshot::Snapshot;
