use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use gridwatch_obs::FlightEvent;
use gridwatch_timeseries::{MachineId, MeasurementId, Timestamp};

use crate::engine::DetectionEngine;
use crate::localize::Localizer;
use crate::scores::ScoreBoard;

/// A fully drilled-down incident report for one sampling instant — the
/// artifact a system administrator would act on.
///
/// The paper's Section 5 describes the workflow this type automates:
/// "If the average score deviates from the normal state, the
/// administrators can drill down to `Q^a` or even `Q^{a,b}` to locate
/// the specific components where system errors occur", and the model
/// "can output the problematic measurement ranges, which are useful for
/// human debugging". An [`IncidentReport`] bundles all three levels plus
/// the offending value ranges of the worst pairs.
///
/// # Example
///
/// ```
/// use gridwatch_detect::{DetectionEngine, EngineConfig, IncidentReport, Snapshot};
/// use gridwatch_timeseries::{
///     MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
/// };
///
/// let a = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
/// let b = MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage);
/// let pair = MeasurementPair::new(a, b).unwrap();
/// let history = PairSeries::from_samples(
///     (0..200u64).map(|k| (k * 360, (k % 40) as f64, 2.0 * (k % 40) as f64)),
/// )?;
/// let mut engine = DetectionEngine::train(vec![(pair, history)], EngineConfig::default())?;
///
/// let mut snap = Snapshot::new(Timestamp::from_secs(200 * 360));
/// snap.insert(a, 20.0);
/// snap.insert(b, 40.0);
/// let report = engine.step(&snap);
/// let incident = IncidentReport::compile(&engine, &report.scores, 3);
/// assert_eq!(incident.at, snap.at());
/// println!("{incident}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentReport {
    /// The sampling instant this report describes.
    pub at: Timestamp,
    /// The system-level fitness `Q_t`, if any pair scored.
    pub system_score: Option<f64>,
    /// The most suspect machines, worst first.
    pub suspect_machines: Vec<(MachineId, f64)>,
    /// The most suspect measurements, worst first (capped).
    pub suspect_measurements: Vec<(MeasurementId, f64)>,
    /// The lowest-scoring pairs with their current cell value ranges
    /// (the paper's "problematic measurement ranges"), worst first
    /// (capped).
    pub worst_pairs: Vec<PairFinding>,
    /// Recent pipeline events from the flight recorder, oldest first —
    /// what the pipeline did in the run-up to this incident. Defaulted
    /// so reports persisted before this field existed still parse.
    #[serde(default)]
    pub recent_events: Vec<FlightEvent>,
}

/// One low-scoring pair within an incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairFinding {
    /// The two measurements, rendered as text.
    pub pair: String,
    /// The pair's fitness `Q^{a,b}_t`.
    pub fitness: f64,
    /// The cell value ranges the trajectory currently occupies, if the
    /// pair's model has context (e.g. `[22588, 45128) & [102940, 137220)`).
    pub ranges: Option<String>,
}

impl IncidentReport {
    /// Compiles a report from the engine and one step's score board,
    /// keeping at most `top` suspects per section.
    pub fn compile(engine: &DetectionEngine, board: &ScoreBoard, top: usize) -> Self {
        let suspect_machines = Localizer::rank_machines(board)
            .into_iter()
            .take(top)
            .map(|s| (s.machine, s.score))
            .collect();
        let suspect_measurements = Localizer::rank_measurements(board)
            .into_iter()
            .take(top)
            .map(|s| (s.id, s.score))
            .collect();
        let mut pair_scores: Vec<_> = board.pair_scores().collect();
        pair_scores.sort_by(|a, b| a.1.total_cmp(&b.1));
        let worst_pairs = pair_scores
            .into_iter()
            .take(top)
            .map(|(pair, fitness)| PairFinding {
                pair: pair.to_string(),
                fitness,
                ranges: engine.explain(pair).map(|r| r.to_string()),
            })
            .collect();
        IncidentReport {
            at: board.at(),
            system_score: board.system_score(),
            suspect_machines,
            suspect_measurements,
            worst_pairs,
            recent_events: Vec::new(),
        }
    }

    /// Attaches a flight-recorder snapshot (oldest first) so the report
    /// carries the pipeline's recent history alongside the scores.
    #[must_use]
    pub fn with_events(mut self, events: Vec<FlightEvent>) -> Self {
        self.recent_events = events;
        self
    }

    /// Per-machine scores as a map (convenience for dashboards).
    pub fn machine_map(&self) -> BTreeMap<MachineId, f64> {
        self.suspect_machines.iter().copied().collect()
    }
}

impl fmt::Display for IncidentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "incident report @ {}", self.at)?;
        match self.system_score {
            Some(q) => writeln!(f, "  system fitness Q_t = {q:.4}")?,
            None => writeln!(f, "  system fitness Q_t = n/a (no pairs scored)")?,
        }
        writeln!(f, "  suspect machines:")?;
        for (m, q) in &self.suspect_machines {
            writeln!(f, "    {m}: {q:.4}")?;
        }
        writeln!(f, "  suspect measurements:")?;
        for (id, q) in &self.suspect_measurements {
            writeln!(f, "    {id}: {q:.4}")?;
        }
        writeln!(f, "  worst pairs:")?;
        for p in &self.worst_pairs {
            write!(f, "    {} fitness {:.4}", p.pair, p.fitness)?;
            if let Some(r) = &p.ranges {
                write!(f, " in ranges {r}")?;
            }
            writeln!(f)?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  recent pipeline events:")?;
            for e in &self.recent_events {
                writeln!(
                    f,
                    "    +{:.3}ms {}: {}",
                    e.at_ns as f64 / 1e6,
                    e.kind,
                    e.detail
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, Snapshot};
    use gridwatch_timeseries::{MeasurementPair, MetricKind, PairSeries};

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    fn engine_with_context() -> (DetectionEngine, ScoreBoard) {
        let a = id(0, 0);
        let b = id(0, 1);
        let c = id(1, 0);
        let mk = |x: MeasurementId, y: MeasurementId, scale: f64| {
            let pair = MeasurementPair::new(x, y).unwrap();
            let history = PairSeries::from_samples((0..200u64).map(|k| {
                let v = (k % 40) as f64 + 1.0;
                (k * 360, v, scale * v)
            }))
            .unwrap();
            (pair, history)
        };
        let mut engine =
            DetectionEngine::train(vec![mk(a, b, 2.0), mk(a, c, 3.0)], EngineConfig::default())
                .unwrap();
        let mut snap = Snapshot::new(Timestamp::from_secs(200 * 360));
        snap.insert(a, 20.0);
        snap.insert(b, 40.0);
        snap.insert(c, 0.5); // break a-c
        let report = engine.step(&snap);
        (engine, report.scores)
    }

    #[test]
    fn compile_orders_worst_first_and_caps() {
        let (engine, board) = engine_with_context();
        let incident = IncidentReport::compile(&engine, &board, 1);
        assert_eq!(incident.worst_pairs.len(), 1);
        assert_eq!(incident.suspect_measurements.len(), 1);
        // The broken measurement c is the prime suspect.
        assert_eq!(incident.suspect_measurements[0].0, id(1, 0));
        // The worst pair includes its current cell ranges.
        assert!(incident.worst_pairs[0].ranges.is_some());
    }

    #[test]
    fn display_is_complete() {
        let (engine, board) = engine_with_context();
        let incident = IncidentReport::compile(&engine, &board, 3);
        let text = incident.to_string();
        assert!(text.contains("incident report @"));
        assert!(text.contains("system fitness"));
        assert!(text.contains("suspect machines"));
        assert!(text.contains("worst pairs"));
    }

    #[test]
    fn empty_board_compiles_to_empty_report() {
        let (engine, _) = engine_with_context();
        let board = ScoreBoard::new(Timestamp::EPOCH);
        let incident = IncidentReport::compile(&engine, &board, 3);
        assert_eq!(incident.system_score, None);
        assert!(incident.suspect_machines.is_empty());
        assert!(incident.worst_pairs.is_empty());
        assert!(incident.to_string().contains("n/a"));
    }

    #[test]
    fn nan_fitness_compiles_without_panicking() {
        // End-to-end regression: a NaN pair fitness flows through every
        // ranking path (machines, measurements, worst pairs) and the
        // report still compiles, with the NaN sorted last, not first.
        let (engine, real_board) = engine_with_context();
        let mut board = ScoreBoard::new(real_board.at());
        let mut pairs: Vec<_> = real_board.pair_scores().collect();
        pairs.sort_by_key(|a| a.0.to_string());
        let (poisoned, _) = pairs[0];
        for (pair, fitness) in &pairs {
            let q = if *pair == poisoned {
                f64::NAN
            } else {
                *fitness
            };
            board.record(*pair, q);
        }
        let incident = IncidentReport::compile(&engine, &board, 10);
        assert_eq!(incident.worst_pairs.len(), pairs.len());
        // total_cmp sorts positive NaN after every finite fitness.
        let last = incident.worst_pairs.last().unwrap();
        assert_eq!(last.pair, poisoned.to_string());
        assert!(last.fitness.is_nan());
        assert!(incident
            .worst_pairs
            .iter()
            .take(pairs.len() - 1)
            .all(|p| p.fitness.is_finite()));
        assert!(!incident.suspect_machines.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let (engine, board) = engine_with_context();
        let incident = IncidentReport::compile(&engine, &board, 3).with_events(vec![FlightEvent {
            at_ns: 1_500_000,
            kind: "alarm".to_string(),
            detail: "system alarm".to_string(),
        }]);
        let json = serde_json::to_string(&incident).unwrap();
        let back: IncidentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(incident, back);
    }

    #[test]
    fn attached_events_render_and_old_reports_still_parse() {
        let (engine, board) = engine_with_context();
        let incident = IncidentReport::compile(&engine, &board, 3);
        assert!(!incident.to_string().contains("recent pipeline events"));

        let with_events = incident.clone().with_events(vec![FlightEvent {
            at_ns: 2_000_000,
            kind: "decode-error".to_string(),
            detail: "conn 3: bad frame".to_string(),
        }]);
        let text = with_events.to_string();
        assert!(text.contains("recent pipeline events:"));
        assert!(text.contains("+2.000ms decode-error: conn 3: bad frame"));

        // A report persisted before `recent_events` existed parses to
        // an empty event list.
        let json = serde_json::to_string(&incident).unwrap();
        let stripped = json.replace(",\"recent_events\":[]", "");
        assert!(stripped.len() < json.len(), "field was present to strip");
        let back: IncidentReport = serde_json::from_str(&stripped).unwrap();
        assert!(back.recent_events.is_empty());
        assert_eq!(back.at, incident.at);
    }
}
