use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use gridwatch_core::{CellRanges, ModelError, TransitionModel};
use gridwatch_timeseries::{MeasurementPair, PairSeries, Point2};

use crate::alarm::{AlarmEvent, AlarmTracker};
use crate::config::EngineConfig;
use crate::drift::{DriftRuntime, RebuildEvent};
use crate::scores::ScoreBoard;
use crate::sketch::{PairLifecycleEvent, SketchRuntime};
use crate::snapshot::Snapshot;

/// Error returned when engine training produces no usable models.
#[derive(Debug, Clone, PartialEq)]
pub struct NoModelsTrained {
    /// How many pairs were offered.
    pub offered: usize,
}

impl fmt::Display for NoModelsTrained {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "none of the {} offered pairs produced a usable model",
            self.offered
        )
    }
}

impl Error for NoModelsTrained {}

/// Summary of a training run: how many pair models were fitted and which
/// pairs were skipped (with the reason).
#[derive(Debug)]
pub struct TrainingOutcome {
    /// Number of successfully fitted pair models.
    pub trained: usize,
    /// Pairs that could not be modeled (e.g. degenerate history).
    pub skipped: Vec<(MeasurementPair, ModelError)>,
}

/// The per-step output: the full three-level score board plus any alarms
/// that fired.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// All fitness scores at this instant.
    pub scores: ScoreBoard,
    /// Alarms raised at this instant (already debounced).
    pub alarms: Vec<AlarmEvent>,
}

/// The online problem-determination engine: owns one
/// [`TransitionModel`] per watched measurement pair and implements the
/// paper's Figure 6 loop over system [`Snapshot`]s.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct DetectionEngine {
    config: EngineConfig,
    models: BTreeMap<MeasurementPair, TransitionModel>,
    tracker: AlarmTracker,
    training: TrainingOutcome,
    last_snapshot_at: Option<gridwatch_timeseries::Timestamp>,
    recorder: Option<gridwatch_obs::FlightRecorder>,
    /// Drift bookkeeping; present exactly when `config.drift` is set.
    /// Runtime-only — not persisted, rebuilt empty on restore.
    drift: Option<DriftRuntime>,
    /// Sketch-gated pair selection; present exactly when
    /// `config.sketch` is set. The sketch state (lanes, streaks) is
    /// runtime-only; the candidate pair list is persisted (see
    /// [`crate::EngineSnapshot`]).
    sketch: Option<SketchRuntime>,
}

impl DetectionEngine {
    /// Trains one model per offered pair from its history series.
    ///
    /// Pairs whose history cannot be modeled (degenerate data,
    /// insufficient samples) are skipped and reported in
    /// [`DetectionEngine::training_outcome`]; training only fails if *no*
    /// pair is usable.
    ///
    /// # Errors
    ///
    /// Returns [`NoModelsTrained`] when every offered pair was skipped.
    pub fn train<I>(pairs: I, config: EngineConfig) -> Result<Self, NoModelsTrained>
    where
        I: IntoIterator<Item = (MeasurementPair, PairSeries)>,
    {
        let mut models = BTreeMap::new();
        let mut skipped = Vec::new();
        let mut offered = 0usize;
        for (pair, history) in pairs {
            offered += 1;
            match TransitionModel::fit(&history, config.model) {
                Ok(model) => {
                    models.insert(pair, model);
                }
                Err(e) => skipped.push((pair, e)),
            }
        }
        if models.is_empty() {
            return Err(NoModelsTrained { offered });
        }
        crate::invariants::check_models(models.iter());
        let mut sketch = config.sketch.map(SketchRuntime::new);
        if let Some(s) = sketch.as_mut() {
            for &pair in models.keys() {
                s.track_pair(pair, true);
            }
        }
        Ok(DetectionEngine {
            config,
            models,
            tracker: AlarmTracker::new(),
            training: TrainingOutcome {
                trained: offered - skipped.len(),
                skipped,
            },
            last_snapshot_at: None,
            recorder: None,
            drift: config.drift.map(DriftRuntime::new),
            sketch,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// What happened during training.
    pub fn training_outcome(&self) -> &TrainingOutcome {
        &self.training
    }

    /// Number of live pair models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The watched pairs, in canonical order.
    pub fn pairs(&self) -> impl ExactSizeIterator<Item = MeasurementPair> + '_ {
        self.models.keys().copied()
    }

    /// Read access to one pair's model.
    pub fn model(&self, pair: MeasurementPair) -> Option<&TransitionModel> {
        self.models.get(&pair)
    }

    /// Processes one snapshot: scores every watched pair whose two
    /// measurements are present, aggregates the three fitness levels,
    /// and evaluates alarms.
    ///
    /// Models adapt (or not) according to the engine's
    /// [`gridwatch_core::ModelConfig::adaptive`] flag, exactly as in the
    /// paper's offline/adaptive comparison (Figure 13a).
    pub fn step(&mut self, snapshot: &Snapshot) -> StepReport {
        let board = self.step_scores(snapshot);
        let alarms = self.tracker.evaluate(&board, &self.config.alarm);
        if !alarms.is_empty() {
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    "alarm",
                    format_args!("{} alarm event(s) at t={}", alarms.len(), board.at()),
                );
            }
        }
        StepReport {
            scores: board,
            alarms,
        }
    }

    /// Attaches a flight recorder: every alarming [`DetectionEngine::step`]
    /// records an `alarm` event, so an [`crate::IncidentReport`] compiled
    /// later can carry the run-up via
    /// [`crate::IncidentReport::with_events`].
    pub fn attach_recorder(&mut self, recorder: gridwatch_obs::FlightRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&gridwatch_obs::FlightRecorder> {
        self.recorder.as_ref()
    }

    /// The scoring half of [`DetectionEngine::step`]: updates every pair
    /// model against the snapshot and returns the score board *without*
    /// evaluating alarms or touching the alarm tracker.
    ///
    /// This is the building block for pair-sharded serving
    /// (`gridwatch-serve`): each shard calls `step_scores` on its slice
    /// of the pairs, the partial boards are merged with
    /// [`ScoreBoard::merge`], and a single tracker evaluates alarms on
    /// the merged board — bit-identical to an unsharded `step`.
    pub fn step_scores(&mut self, snapshot: &Snapshot) -> ScoreBoard {
        // Across a monitoring outage, the "previous point" is stale:
        // reset trajectories instead of scoring a bogus transition.
        if let (Some(max_gap), Some(last)) = (self.config.max_gap_secs, self.last_snapshot_at) {
            if snapshot.at().saturating_secs_since(last) > max_gap {
                self.reset_trajectories();
            }
        }
        self.last_snapshot_at = Some(snapshot.at());
        let mut board = ScoreBoard::new(snapshot.at());
        let results: Vec<(MeasurementPair, Option<f64>)> = if self.config.parallel {
            self.step_parallel(snapshot)
        } else {
            self.models
                .iter_mut()
                .map(|(&pair, model)| (pair, observe_pair(model, pair, snapshot)))
                .collect()
        };
        if let Some(drift) = self.drift.as_mut() {
            let fired = drift.observe(&mut self.models, self.config.model, snapshot, &results);
            if fired > 0 {
                if let Some(recorder) = &self.recorder {
                    for event in drift.recent_events(fired) {
                        recorder.record("rebuild", event);
                    }
                }
            }
        }
        if let Some(sketch) = self.sketch.as_mut() {
            let fired = sketch.observe(&mut self.models, self.config.model, snapshot);
            if fired > 0 {
                if let Some(recorder) = &self.recorder {
                    for event in sketch.recent_events(fired) {
                        recorder.record(event.kind.name(), event);
                    }
                }
            }
        }
        for (pair, fitness) in results {
            if let Some(f) = fitness {
                board.record(pair, f);
            }
        }
        board
    }

    /// Drains the drift layer's rebuild events accumulated since the
    /// last drain (empty when [`EngineConfig::drift`] is unset).
    pub fn take_rebuild_events(&mut self) -> Vec<RebuildEvent> {
        self.drift
            .as_mut()
            .map(DriftRuntime::take_events)
            .unwrap_or_default()
    }

    /// Total model rebuilds the drift layer has fired.
    pub fn rebuild_count(&self) -> u64 {
        self.drift
            .as_ref()
            .map(DriftRuntime::total_rebuilds)
            .unwrap_or(0)
    }

    /// Benchmark probe executing exactly the per-step drift gate (the
    /// only code the disabled drift path adds to `step_scores`).
    #[doc(hidden)]
    pub fn drift_gate_probe(&mut self) -> bool {
        self.drift.is_some()
    }

    /// Benchmark probe executing exactly the per-step sketch gate (the
    /// only code the disabled sketch path adds to `step_scores`).
    #[doc(hidden)]
    pub fn sketch_gate_probe(&mut self) -> bool {
        self.sketch.is_some()
    }

    /// Registers candidate pairs for sketch tracking: they are scored by
    /// the sketch every rescore round and only get a materialized grid
    /// model once promoted. A no-op when [`EngineConfig::sketch`] is
    /// unset, and for pairs that already own a model.
    pub fn add_candidates<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = MeasurementPair>,
    {
        if let Some(sketch) = self.sketch.as_mut() {
            for pair in pairs {
                if !self.models.contains_key(&pair) {
                    sketch.track_pair(pair, false);
                }
            }
        }
    }

    /// The sketch-tracked pairs that currently have no materialized
    /// model, in canonical order (empty when the sketch layer is
    /// disabled).
    pub fn candidates(&self) -> Vec<MeasurementPair> {
        self.sketch
            .as_ref()
            .map(SketchRuntime::candidates)
            .unwrap_or_default()
    }

    /// Total pairs the sketch layer tracks — candidates plus
    /// materialized. Falls back to the model count when the sketch layer
    /// is disabled.
    pub fn tracked_pair_count(&self) -> usize {
        self.sketch
            .as_ref()
            .map(SketchRuntime::tracked_pairs)
            .unwrap_or_else(|| self.models.len())
    }

    /// The `k` best-scoring sketch-only candidate pairs, best first
    /// (empty when the sketch layer is disabled).
    pub fn top_sketch_candidates(&self, k: usize) -> Vec<(MeasurementPair, f64)> {
        self.sketch
            .as_ref()
            .map(|s| s.top_candidates(k))
            .unwrap_or_default()
    }

    /// Approximate heap bytes held by the per-measurement sketches
    /// (0 when the sketch layer is disabled).
    pub fn sketch_bytes(&self) -> usize {
        self.sketch.as_ref().map(SketchRuntime::bytes).unwrap_or(0)
    }

    /// Drains the sketch layer's promotion/demotion events accumulated
    /// since the last drain (empty when [`EngineConfig::sketch`] is
    /// unset).
    pub fn take_lifecycle_events(&mut self) -> Vec<PairLifecycleEvent> {
        self.sketch
            .as_mut()
            .map(SketchRuntime::take_events)
            .unwrap_or_default()
    }

    /// Total pair promotions the sketch layer has materialized.
    pub fn promotion_count(&self) -> u64 {
        self.sketch
            .as_ref()
            .map(SketchRuntime::total_promotions)
            .unwrap_or(0)
    }

    /// Total pair demotions the sketch layer has retired.
    pub fn demotion_count(&self) -> u64 {
        self.sketch
            .as_ref()
            .map(SketchRuntime::total_demotions)
            .unwrap_or(0)
    }

    /// Parallel variant of the per-pair update using crossbeam scoped
    /// threads over disjoint model chunks.
    fn step_parallel(&mut self, snapshot: &Snapshot) -> Vec<(MeasurementPair, Option<f64>)> {
        let mut entries: Vec<(MeasurementPair, &mut TransitionModel)> = self
            .models
            .iter_mut()
            .map(|(&pair, model)| (pair, model))
            .collect();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        let chunk_size = entries.len().div_ceil(workers).max(1);
        let mut results = Vec::with_capacity(entries.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = entries
                .chunks_mut(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter_mut()
                            .map(|(pair, model)| (*pair, observe_pair(model, *pair, snapshot)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("pair-update worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        results
    }

    /// The value ranges of the cell a pair's trajectory currently
    /// occupies — the paper's human-debugging output ("the model can
    /// output the problematic measurement ranges").
    pub fn explain(&self, pair: MeasurementPair) -> Option<CellRanges> {
        let model = self.models.get(&pair)?;
        let cell = model.last_cell()?;
        Some(model.cell_ranges(cell))
    }

    /// Forgets every model's last observed point, so the next snapshot
    /// starts fresh trajectories (used across data gaps; see
    /// [`EngineConfig::max_gap_secs`]).
    pub fn reset_trajectories(&mut self) {
        for model in self.models.values_mut() {
            model.reset_trajectory();
        }
    }

    /// The alarm tracker's current debounce state (for persistence).
    pub(crate) fn tracker_state(&self) -> &AlarmTracker {
        &self.tracker
    }

    /// Rebuilds an engine from persisted parts (see
    /// [`crate::EngineSnapshot`]).
    pub(crate) fn from_parts(
        config: EngineConfig,
        models: BTreeMap<MeasurementPair, TransitionModel>,
        tracker: AlarmTracker,
    ) -> Self {
        crate::invariants::check_models(models.iter());
        let trained = models.len();
        let mut sketch = config.sketch.map(SketchRuntime::new);
        if let Some(s) = sketch.as_mut() {
            for &pair in models.keys() {
                s.track_pair(pair, true);
            }
        }
        DetectionEngine {
            config,
            models,
            tracker,
            training: TrainingOutcome {
                trained,
                skipped: Vec::new(),
            },
            last_snapshot_at: None,
            recorder: None,
            drift: config.drift.map(DriftRuntime::new),
            sketch,
        }
    }
}

/// Scores and updates one pair model against a snapshot; `None` when
/// either measurement is missing or the model has no transition context
/// yet.
fn observe_pair(
    model: &mut TransitionModel,
    pair: MeasurementPair,
    snapshot: &Snapshot,
) -> Option<f64> {
    let x = snapshot.value(pair.first())?;
    let y = snapshot.value(pair.second())?;
    let outcome = model.observe(Point2::new(x, y));
    let fitness = outcome.score.map(|s| s.fitness());
    if let Some(q) = fitness {
        crate::invariants::check_fitness(q);
    }
    fitness
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind, Timestamp};

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    /// Three measurements where all are linearly driven by a common load.
    fn training_pairs() -> Vec<(MeasurementPair, PairSeries)> {
        let ids = [id(0, 0), id(0, 1), id(1, 0)];
        let value = |m: usize, k: u64| {
            let load = (k % 60) as f64;
            (m as f64 + 1.0) * load + 10.0 * m as f64
        };
        let mut out = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
                let history = PairSeries::from_samples(
                    (0..400u64).map(|k| (k * 360, value(i, k), value(j, k))),
                )
                .unwrap();
                out.push((pair, history));
            }
        }
        out
    }

    fn snapshot_at(k: u64, values: [f64; 3]) -> Snapshot {
        let ids = [id(0, 0), id(0, 1), id(1, 0)];
        let mut s = Snapshot::new(Timestamp::from_secs(400 * 360 + k * 360));
        for (i, &v) in values.iter().enumerate() {
            s.insert(ids[i], v);
        }
        s
    }

    #[test]
    fn train_builds_all_pair_models() {
        let engine = DetectionEngine::train(training_pairs(), EngineConfig::default()).unwrap();
        assert_eq!(engine.model_count(), 3);
        assert_eq!(engine.training_outcome().trained, 3);
        assert!(engine.training_outcome().skipped.is_empty());
    }

    #[test]
    fn degenerate_pairs_are_skipped_not_fatal() {
        let mut pairs = training_pairs();
        // A constant pair: degenerate grid.
        let ghost = MeasurementPair::new(id(5, 0), id(5, 1)).unwrap();
        let flat = PairSeries::from_samples((0..50u64).map(|k| (k * 360, 1.0, 1.0))).unwrap();
        pairs.push((ghost, flat));
        let engine = DetectionEngine::train(pairs, EngineConfig::default()).unwrap();
        assert_eq!(engine.model_count(), 3);
        assert_eq!(engine.training_outcome().skipped.len(), 1);
        assert_eq!(engine.training_outcome().skipped[0].0, ghost);
    }

    #[test]
    fn all_degenerate_training_fails() {
        let ghost = MeasurementPair::new(id(5, 0), id(5, 1)).unwrap();
        let flat = PairSeries::from_samples((0..50u64).map(|k| (k * 360, 1.0, 1.0))).unwrap();
        let err = DetectionEngine::train([(ghost, flat)], EngineConfig::default()).unwrap_err();
        assert_eq!(err.offered, 1);
        assert!(err.to_string().contains("none of the 1"));
    }

    #[test]
    fn normal_snapshot_scores_high_broken_scores_lower() {
        let mut engine = DetectionEngine::train(training_pairs(), EngineConfig::default()).unwrap();
        // Consistent with training: load 30 -> values (40, 70, 100).
        let good = engine.step(&snapshot_at(0, [40.0, 70.0, 100.0]));
        let q_good = good.scores.system_score().unwrap();
        // Measurement 2 breaks away.
        let bad = engine.step(&snapshot_at(1, [41.0, 72.0, 0.0]));
        let q_bad = bad.scores.system_score().unwrap();
        assert!(q_good > q_bad, "good {q_good} vs bad {q_bad}");
        // The broken measurement has the lowest per-measurement score.
        let suspects = crate::Localizer::rank_measurements(&bad.scores);
        assert_eq!(suspects[0].id, id(1, 0));
    }

    #[test]
    fn missing_measurements_are_tolerated() {
        let mut engine = DetectionEngine::train(training_pairs(), EngineConfig::default()).unwrap();
        let ids = [id(0, 0), id(0, 1)];
        let mut snap = Snapshot::new(Timestamp::from_secs(400 * 360));
        snap.insert(ids[0], 40.0);
        snap.insert(ids[1], 70.0);
        // Only the (0,0)-(0,1) pair is fully present.
        let report = engine.step(&snap);
        assert_eq!(report.scores.len(), 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial_cfg = EngineConfig::default();
        let parallel_cfg = EngineConfig {
            parallel: true,
            ..EngineConfig::default()
        };
        let mut serial = DetectionEngine::train(training_pairs(), serial_cfg).unwrap();
        let mut parallel = DetectionEngine::train(training_pairs(), parallel_cfg).unwrap();
        for k in 0..20 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, [load + 0.5, 2.0 * load + 10.0, 3.0 * load + 20.0]);
            let a = serial.step(&snap);
            let b = parallel.step(&snap);
            assert_eq!(a.scores, b.scores, "step {k}");
        }
    }

    #[test]
    fn step_decomposes_into_scores_plus_tracker() {
        let config = EngineConfig {
            alarm: crate::AlarmPolicy {
                system_threshold: 0.7,
                measurement_threshold: 0.4,
                min_consecutive: 2,
            },
            ..EngineConfig::default()
        };
        let mut whole = DetectionEngine::train(training_pairs(), config).unwrap();
        let mut split = DetectionEngine::train(training_pairs(), config).unwrap();
        let mut tracker = crate::AlarmTracker::new();
        for k in 0..12 {
            let snap = snapshot_at(k, [40.0, 70.0, if k < 3 { 100.0 } else { -35.0 }]);
            let report = whole.step(&snap);
            let board = split.step_scores(&snap);
            let alarms = tracker.evaluate(&board, &split.config().alarm);
            assert_eq!(report.scores, board, "step {k}");
            assert_eq!(report.alarms, alarms, "step {k}");
        }
    }

    #[test]
    fn alarms_fire_on_sustained_breakage() {
        let config = EngineConfig {
            alarm: crate::AlarmPolicy {
                system_threshold: 0.7,
                measurement_threshold: 0.0,
                min_consecutive: 2,
            },
            ..EngineConfig::default()
        };
        let mut engine = DetectionEngine::train(training_pairs(), config).unwrap();
        let mut fired = Vec::new();
        for k in 0..12 {
            // Persistent break on measurement 2: wild values.
            let report = engine.step(&snapshot_at(
                k,
                [40.0, 70.0, if k < 2 { 100.0 } else { -35.0 }],
            ));
            fired.extend(report.alarms);
        }
        assert!(
            fired.iter().any(|a| a.level == crate::AlarmLevel::System),
            "sustained break must raise a system alarm; got {fired:?}"
        );
    }

    fn drift_config() -> crate::DriftConfig {
        crate::DriftConfig {
            fitness_floor: 0.45,
            window: 20,
            decay_fraction: 0.7,
            min_history: 30,
            history_points: 200,
            cooldown: 50,
        }
    }

    #[test]
    fn sustained_decay_triggers_rebuild_and_recovers_fitness() {
        // Drift detection pairs with a *frozen* (non-adaptive) model: an
        // adaptive grid extends itself over the rewired trajectory and
        // self-heals, so fitness never decays. A frozen grid scores
        // off-manifold points as outliers, which is exactly the
        // sustained decay the drift layer watches for.
        let config = EngineConfig {
            model: gridwatch_core::ModelConfig::default().frozen(),
            drift: Some(drift_config()),
            ..EngineConfig::default()
        };
        let mut engine = DetectionEngine::train(training_pairs(), config).unwrap();
        // Permanent rewire: measurement 2 flips between two branches, a
        // repetitive (learnable) regime far off the trained manifold.
        let mut decayed_scores = Vec::new();
        let mut rebuilt_scores = Vec::new();
        for k in 0..200u64 {
            let load = (k % 60) as f64;
            let rewired = if k % 2 == 0 {
                3.0 * load
            } else {
                200.0 - 3.0 * load
            };
            let report = engine.step(&snapshot_at(k, [load + 1.0, 2.0 * load + 10.0, rewired]));
            let before = engine.rebuild_count() == 0;
            if let Some(q) = report.scores.system_score() {
                if before {
                    decayed_scores.push(q);
                } else {
                    rebuilt_scores.push(q);
                }
            }
        }
        assert!(engine.rebuild_count() >= 1, "drift must trigger a rebuild");
        let events = engine.take_rebuild_events();
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e.succeeded), "{events:?}");
        // Second drain is empty (events ship exactly once).
        assert!(engine.take_rebuild_events().is_empty());
        // The rebuilt model fits the new regime better than the stale one.
        let stale_mean: f64 = decayed_scores.iter().rev().take(10).sum::<f64>() / 10.0;
        let fresh_mean: f64 =
            rebuilt_scores.iter().rev().take(10).sum::<f64>() / rebuilt_scores.len().min(10) as f64;
        assert!(
            fresh_mean > stale_mean,
            "rebuilt {fresh_mean} vs stale {stale_mean}"
        );
    }

    #[test]
    fn point_dips_do_not_trigger_rebuilds() {
        let config = EngineConfig {
            model: gridwatch_core::ModelConfig::default().frozen(),
            drift: Some(drift_config()),
            ..EngineConfig::default()
        };
        let mut engine = DetectionEngine::train(training_pairs(), config).unwrap();
        for k in 0..200u64 {
            let load = (k % 60) as f64;
            // A short anomaly burst (5 steps ~ a point fault), otherwise
            // faithful to training.
            let v2 = if (60..65).contains(&k) {
                -35.0
            } else {
                3.0 * load + 20.0
            };
            engine.step(&snapshot_at(k, [load + 0.5, 2.0 * load + 10.0, v2]));
        }
        assert_eq!(engine.rebuild_count(), 0);
        assert!(engine.take_rebuild_events().is_empty());
    }

    #[test]
    fn disabled_drift_layer_is_inert() {
        let mut engine = DetectionEngine::train(training_pairs(), EngineConfig::default()).unwrap();
        assert!(!engine.drift_gate_probe());
        for k in 0..50u64 {
            engine.step(&snapshot_at(k, [0.0, -100.0, 100.0]));
        }
        assert_eq!(engine.rebuild_count(), 0);
        assert!(engine.take_rebuild_events().is_empty());
    }

    #[test]
    fn explain_reports_cell_ranges() {
        let mut engine = DetectionEngine::train(training_pairs(), EngineConfig::default()).unwrap();
        engine.step(&snapshot_at(0, [40.0, 70.0, 100.0]));
        let pair = engine.pairs().next().unwrap();
        let ranges = engine.explain(pair).unwrap();
        let text = ranges.to_string();
        assert!(text.contains('[') && text.contains('&'), "{text}");
    }
}
