use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{MachineId, MeasurementId};

use crate::scores::ScoreBoard;

/// A measurement ranked as a problem suspect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuspectMeasurement {
    /// The measurement.
    pub id: MeasurementId,
    /// Its fitness score `Q^a_t` (lower = more suspect).
    pub score: f64,
}

/// A machine ranked as a problem suspect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuspectMachine {
    /// The machine.
    pub machine: MachineId,
    /// Its average fitness score (lower = more suspect).
    pub score: f64,
}

/// Problem localization: the drill-down from a system alarm to the
/// offending measurement or machine.
///
/// "If the average score deviates from the normal state, the
/// administrators can drill down to `Q^a` or even `Q^{a,b}` to locate the
/// specific components where system errors occur" (Section 5); Figure 14
/// plots the per-machine averages with the faulty machine clearly lowest.
#[derive(Debug, Clone, Copy, Default)]
pub struct Localizer;

impl Localizer {
    /// Measurements sorted most-suspect first (ascending score).
    pub fn rank_measurements(board: &ScoreBoard) -> Vec<SuspectMeasurement> {
        let mut out: Vec<SuspectMeasurement> = board
            .measurement_scores()
            .into_iter()
            .map(|(id, score)| SuspectMeasurement { id, score })
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score));
        out
    }

    /// Machines sorted most-suspect first (ascending score).
    pub fn rank_machines(board: &ScoreBoard) -> Vec<SuspectMachine> {
        let mut out: Vec<SuspectMachine> = board
            .machine_scores()
            .into_iter()
            .map(|(machine, score)| SuspectMachine { machine, score })
            .collect();
        out.sort_by(|a, b| a.score.total_cmp(&b.score));
        out
    }

    /// The most suspect machine, if any scores exist.
    pub fn prime_suspect(board: &ScoreBoard) -> Option<SuspectMachine> {
        Self::rank_machines(board).into_iter().next()
    }

    /// Measurements ranked by their *drop* relative to a per-measurement
    /// baseline (most negative drop first).
    ///
    /// Absolute scores conflate "inherently hard to predict" with
    /// "broken": an uncorrelated measurement always scores low. Comparing
    /// against each measurement's own normal-period baseline isolates the
    /// change, which is what an administrator actually reacts to.
    /// Measurements without a baseline entry are ranked by absolute score
    /// at the end.
    pub fn rank_measurements_relative(
        board: &ScoreBoard,
        baseline: &std::collections::BTreeMap<MeasurementId, f64>,
    ) -> Vec<SuspectMeasurement> {
        let mut out: Vec<(f64, SuspectMeasurement)> = board
            .measurement_scores()
            .into_iter()
            .map(|(id, score)| {
                let key = match baseline.get(&id) {
                    Some(&b) => score - b,
                    None => score,
                };
                (key, SuspectMeasurement { id, score })
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out.into_iter().map(|(_, s)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MeasurementPair, MetricKind, Timestamp};

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    fn triangle_board() -> ScoreBoard {
        // Machine 1's measurement drags every pair it touches down.
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(MeasurementPair::new(a, b).unwrap(), 0.95);
        board.record(MeasurementPair::new(a, c).unwrap(), 0.20);
        board.record(MeasurementPair::new(b, c).unwrap(), 0.25);
        board
    }

    #[test]
    fn most_suspect_measurement_first() {
        let suspects = Localizer::rank_measurements(&triangle_board());
        assert_eq!(suspects[0].id, id(1, 0));
        assert!(suspects[0].score < suspects[1].score);
        assert_eq!(suspects.len(), 3);
    }

    #[test]
    fn machine_ranking_isolates_faulty_machine() {
        let machines = Localizer::rank_machines(&triangle_board());
        assert_eq!(machines[0].machine, MachineId::new(1));
        assert_eq!(
            Localizer::prime_suspect(&triangle_board()).unwrap().machine,
            MachineId::new(1)
        );
    }

    #[test]
    fn relative_ranking_uses_baseline_drop() {
        // c is always low (baseline 0.25) but stable; b dropped from a
        // high baseline — b must outrank c as a suspect.
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(MeasurementPair::new(a, b).unwrap(), 0.55);
        board.record(MeasurementPair::new(a, c).unwrap(), 0.60);
        board.record(MeasurementPair::new(b, c).unwrap(), 0.25);
        let mut baseline = std::collections::BTreeMap::new();
        baseline.insert(a, 0.7);
        baseline.insert(b, 0.95);
        baseline.insert(c, 0.45);
        let ranked = Localizer::rank_measurements_relative(&board, &baseline);
        assert_eq!(ranked[0].id, b, "{ranked:?}");
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // A pair model can emit NaN fitness (e.g. a 0/0 degenerate
        // visit count upstream); ranking must stay total, not panic.
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(MeasurementPair::new(a, b).unwrap(), f64::NAN);
        board.record(MeasurementPair::new(a, c).unwrap(), 0.20);
        board.record(MeasurementPair::new(b, c).unwrap(), 0.25);

        let suspects = Localizer::rank_measurements(&board);
        assert_eq!(suspects.len(), 3);
        // c's average stays finite; a and b are poisoned by the NaN
        // pair and must sort AFTER every finite score (total_cmp puts
        // positive NaN last), never first.
        assert_eq!(suspects[0].id, c);
        assert!(suspects[0].score.is_finite());
        assert!(suspects[1].score.is_nan() && suspects[2].score.is_nan());

        let machines = Localizer::rank_machines(&board);
        assert_eq!(machines[0].machine, MachineId::new(1));
        assert!(machines[1].score.is_nan());
        assert_eq!(
            Localizer::prime_suspect(&board).map(|s| s.machine),
            Some(MachineId::new(1))
        );

        // The relative ranking sorts on score-minus-baseline deltas,
        // which are NaN for the poisoned measurements; same contract.
        let baseline = std::collections::BTreeMap::from([(a, 0.9), (b, 0.9), (c, 0.9)]);
        let relative = Localizer::rank_measurements_relative(&board, &baseline);
        assert_eq!(relative.len(), 3);
        assert_eq!(relative[0].id, c);
    }

    #[test]
    fn empty_board_yields_no_suspects() {
        let board = ScoreBoard::new(Timestamp::EPOCH);
        assert!(Localizer::rank_measurements(&board).is_empty());
        assert!(Localizer::prime_suspect(&board).is_none());
    }
}
