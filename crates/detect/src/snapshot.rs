use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{MeasurementId, Timestamp};

/// The values of all monitored measurements at one sampling instant — the
/// unit of online input to the [`crate::DetectionEngine`].
///
/// # Example
///
/// ```
/// use gridwatch_detect::Snapshot;
/// use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind, Timestamp};
///
/// let id = MeasurementId::new(MachineId::new(1), MetricKind::CpuUtilization);
/// let mut snap = Snapshot::new(Timestamp::from_secs(360));
/// snap.insert(id, 42.0);
/// assert_eq!(snap.value(id), Some(42.0));
/// assert_eq!(snap.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    at: Timestamp,
    values: BTreeMap<MeasurementId, f64>,
}

impl Snapshot {
    /// Creates an empty snapshot at the given instant.
    pub fn new(at: Timestamp) -> Self {
        Snapshot {
            at,
            values: BTreeMap::new(),
        }
    }

    /// The snapshot's sampling instant.
    pub fn at(&self) -> Timestamp {
        self.at
    }

    /// Records a measurement value. Non-finite values are ignored (a
    /// sensor glitch must not poison the step).
    pub fn insert(&mut self, id: MeasurementId, value: f64) {
        if value.is_finite() {
            self.values.insert(id, value);
        }
    }

    /// The value of a measurement, if present.
    pub fn value(&self, id: MeasurementId) -> Option<f64> {
        self.values.get(&id).copied()
    }

    /// Number of measurements present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(measurement, value)` entries.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (MeasurementId, f64)> + '_ {
        self.values.iter().map(|(&id, &v)| (id, v))
    }
}

impl Extend<(MeasurementId, f64)> for Snapshot {
    fn extend<T: IntoIterator<Item = (MeasurementId, f64)>>(&mut self, iter: T) {
        for (id, v) in iter {
            self.insert(id, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MetricKind};

    fn id(k: u32) -> MeasurementId {
        MeasurementId::new(MachineId::new(k), MetricKind::CpuUtilization)
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = Snapshot::new(Timestamp::from_secs(0));
        s.insert(id(0), 1.0);
        s.insert(id(1), 2.0);
        assert_eq!(s.value(id(0)), Some(1.0));
        assert_eq!(s.value(id(2)), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut s = Snapshot::new(Timestamp::from_secs(0));
        s.insert(id(0), f64::NAN);
        s.insert(id(1), f64::INFINITY);
        assert!(s.is_empty());
    }

    #[test]
    fn extend_collects_entries() {
        let mut s = Snapshot::new(Timestamp::from_secs(0));
        s.extend([(id(0), 1.0), (id(1), 2.0)]);
        assert_eq!(s.iter().count(), 2);
    }
}
