use serde::{Deserialize, Serialize};

use gridwatch_core::TransitionModel;
use gridwatch_timeseries::MeasurementPair;

use crate::alarm::AlarmTracker;
use crate::config::EngineConfig;
use crate::engine::DetectionEngine;

/// A serializable snapshot of a running [`DetectionEngine`]: its
/// configuration, every pair model's full state (grid + matrix + online
/// counters), and the alarm debounce streaks.
///
/// Monitoring daemons restart; a snapshot taken before shutdown restores
/// the engine exactly, so models keep the correlations learned since the
/// last offline training, with no retraining pass.
///
/// The drift layer's runtime state (decay windows, refit histories,
/// cooldowns — see [`crate::DriftConfig`]) is deliberately *not* part of
/// the snapshot: it is reconstructed empty from the persisted config, so
/// a restored engine re-earns its drift evidence before rebuilding any
/// model. The sketch layer follows the same policy: lanes, moments, and
/// hysteresis streaks are rebuilt empty, but the candidate *pair list*
/// is persisted (in [`EngineSnapshot::candidates`]) so a restored engine
/// keeps watching the same pairs it was gating.
///
/// # Example
///
/// ```
/// use gridwatch_detect::{DetectionEngine, EngineConfig, EngineSnapshot, Snapshot};
/// use gridwatch_timeseries::{
///     MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
/// };
///
/// let a = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
/// let b = MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage);
/// let pair = MeasurementPair::new(a, b).unwrap();
/// let history = PairSeries::from_samples(
///     (0..100u64).map(|k| (k * 360, (k % 20) as f64, 3.0 * (k % 20) as f64)),
/// )?;
/// let engine = DetectionEngine::train(vec![(pair, history)], EngineConfig::default())?;
///
/// let json = serde_json::to_string(&engine.snapshot())?;
/// let restored: EngineSnapshot = serde_json::from_str(&json)?;
/// let engine2 = DetectionEngine::from_snapshot(restored);
/// assert_eq!(engine2.model_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The engine configuration.
    pub config: EngineConfig,
    /// Every pair model's full state, in canonical pair order. (A list
    /// rather than a map: JSON map keys must be strings, and a
    /// [`MeasurementPair`] is a structured key.)
    pub models: Vec<(MeasurementPair, TransitionModel)>,
    /// The alarm tracker's debounce streaks.
    pub tracker: AlarmTracker,
    /// Sketch-tracked candidate pairs without a materialized model, in
    /// canonical order. Empty when the sketch layer is disabled;
    /// snapshots written before the sketch stage existed deserialize to
    /// empty.
    #[serde(default)]
    pub candidates: Vec<MeasurementPair>,
}

/// Counts completed directory syncs so tests can assert the durability
/// path is actually exercised (see [`EngineSnapshot::save`]).
#[cfg(test)]
static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fsyncs `dir` so a rename into it survives power loss; empty parents
/// (bare file names) resolve to the current directory.
fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    let dir = if dir.as_os_str().is_empty() {
        std::path::Path::new(".")
    } else {
        dir
    };
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(test)]
    DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

impl EngineSnapshot {
    /// Writes the snapshot to `path` as JSON, durably: temp file +
    /// fsync + atomic rename + parent-directory fsync. Syncing only the
    /// data file is not enough — the rename lives in the directory
    /// inode, and a crash before that inode hits disk silently loses a
    /// "committed" snapshot.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let json = serde_json::to_string(self).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("serialize engine snapshot: {e}"),
            )
        })?;
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_dir(path.parent().unwrap_or(std::path::Path::new(".")))
    }

    /// Reads a snapshot previously written by [`EngineSnapshot::save`]
    /// (or any JSON serialization of one).
    pub fn load(path: &std::path::Path) -> std::io::Result<EngineSnapshot> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("parse engine snapshot {}: {e}", path.display()),
            )
        })
    }
}

impl DetectionEngine {
    /// Captures the engine's full state for persistence.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            config: *self.config(),
            models: self
                .pairs()
                .filter_map(|p| self.model(p).map(|m| (p, m.clone())))
                .collect(),
            tracker: self.tracker_state().clone(),
            candidates: self.candidates(),
        }
    }

    /// Restores an engine from a snapshot.
    ///
    /// The restored engine's [`DetectionEngine::training_outcome`]
    /// reports all models as trained and no skips (the skip list is not
    /// part of the persisted state).
    pub fn from_snapshot(snapshot: EngineSnapshot) -> Self {
        let mut engine = DetectionEngine::from_parts(
            snapshot.config,
            snapshot.models.into_iter().collect(),
            snapshot.tracker,
        );
        engine.add_candidates(snapshot.candidates);
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind, PairSeries, Timestamp};

    fn trained_engine() -> DetectionEngine {
        let a = MeasurementId::new(MachineId::new(0), MetricKind::Custom(0));
        let b = MeasurementId::new(MachineId::new(0), MetricKind::Custom(1));
        let pair = MeasurementPair::new(a, b).unwrap();
        let history = PairSeries::from_samples((0..150u64).map(|k| {
            let x = (k % 30) as f64;
            (k * 360, x, 2.0 * x + 1.0)
        }))
        .unwrap();
        DetectionEngine::train([(pair, history)], EngineConfig::default()).unwrap()
    }

    fn snapshot_at(k: u64, x: f64, y: f64) -> Snapshot {
        let a = MeasurementId::new(MachineId::new(0), MetricKind::Custom(0));
        let b = MeasurementId::new(MachineId::new(0), MetricKind::Custom(1));
        let mut s = Snapshot::new(Timestamp::from_secs(150 * 360 + k * 360));
        s.insert(a, x);
        s.insert(b, y);
        s
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut original = trained_engine();
        // Advance the original so it has online state.
        original.step(&snapshot_at(0, 10.0, 21.0));

        let json = serde_json::to_string(&original.snapshot()).unwrap();
        let restored: EngineSnapshot = serde_json::from_str(&json).unwrap();
        let mut twin = DetectionEngine::from_snapshot(restored);

        // Both engines must score the next stream identically.
        for k in 1..20u64 {
            let snap = snapshot_at(k, (k % 30) as f64, 2.0 * (k % 30) as f64 + 1.0);
            let a = original.step(&snap);
            let b = twin.step(&snap);
            assert_eq!(a.scores, b.scores, "step {k}");
            assert_eq!(a.alarms, b.alarms, "step {k}");
        }
    }

    #[test]
    fn save_is_atomic_and_syncs_the_directory() {
        use std::sync::atomic::Ordering;
        let dir =
            std::env::temp_dir().join(format!("gridwatch-persist-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.json");

        let snapshot = trained_engine().snapshot();
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        snapshot.save(&path).unwrap();
        assert!(
            DIR_SYNCS.load(Ordering::Relaxed) > before,
            "save must fsync the parent directory after the rename"
        );
        assert!(!dir.join("engine.tmp").exists(), "temp file must be gone");
        assert_eq!(EngineSnapshot::load(&path).unwrap(), snapshot);

        // Corrupt bytes come back as a typed error, not a panic.
        std::fs::write(&path, "{ torn").unwrap();
        let err = EngineSnapshot::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_training_outcome_counts_models() {
        let engine = trained_engine();
        let twin = DetectionEngine::from_snapshot(engine.snapshot());
        assert_eq!(twin.training_outcome().trained, 1);
        assert!(twin.training_outcome().skipped.is_empty());
        assert_eq!(twin.model_count(), 1);
    }
}
