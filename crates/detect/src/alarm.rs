use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::{MeasurementId, Timestamp};

use crate::config::AlarmPolicy;
use crate::scores::ScoreBoard;

/// The scope an alarm refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlarmLevel {
    /// The system-wide score `Q_t` dropped below the threshold.
    System,
    /// One measurement's score `Q^a_t` dropped below the threshold.
    Measurement(MeasurementId),
}

impl fmt::Display for AlarmLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlarmLevel::System => write!(f, "system"),
            AlarmLevel::Measurement(id) => write!(f, "measurement {id}"),
        }
    }
}

/// An alarm raised by the detection engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmEvent {
    /// When the alarm fired.
    pub at: Timestamp,
    /// What it refers to.
    pub level: AlarmLevel,
    /// The fitness score that triggered it.
    pub score: f64,
    /// The threshold it violated.
    pub threshold: f64,
}

impl fmt::Display for AlarmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} fitness {:.4} below threshold {:.4}",
            self.at, self.level, self.score, self.threshold
        )
    }
}

/// Stateful alarm generation with debouncing: a subject must stay below
/// its threshold for `min_consecutive` successive samples before an alarm
/// fires, and re-arms once it recovers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlarmTracker {
    /// Consecutive below-threshold samples per subject.
    streaks: BTreeMap<AlarmLevel, u32>,
}

impl AlarmTracker {
    /// Creates a tracker with no active streaks.
    pub fn new() -> Self {
        AlarmTracker::default()
    }

    /// Evaluates one score board against the policy and returns the
    /// alarms that fire at this instant.
    pub fn evaluate(&mut self, board: &ScoreBoard, policy: &AlarmPolicy) -> Vec<AlarmEvent> {
        let mut alarms = Vec::new();
        if let Some(q) = board.system_score() {
            self.track(
                AlarmLevel::System,
                q,
                policy.system_threshold,
                policy.min_consecutive,
                board.at(),
                &mut alarms,
            );
        }
        for (id, q) in board.measurement_scores() {
            self.track(
                AlarmLevel::Measurement(id),
                q,
                policy.measurement_threshold,
                policy.min_consecutive,
                board.at(),
                &mut alarms,
            );
        }
        alarms
    }

    fn track(
        &mut self,
        level: AlarmLevel,
        score: f64,
        threshold: f64,
        min_consecutive: u32,
        at: Timestamp,
        alarms: &mut Vec<AlarmEvent>,
    ) {
        if score < threshold {
            let streak = self.streaks.entry(level).or_insert(0);
            *streak += 1;
            // Fire exactly once when the streak reaches the debounce
            // length; a continuing violation does not refire until
            // recovery re-arms it.
            if *streak == min_consecutive.max(1) {
                alarms.push(AlarmEvent {
                    at,
                    level,
                    score,
                    threshold,
                });
            }
        } else {
            self.streaks.remove(&level);
        }
    }

    /// Whether a subject is currently in a below-threshold streak.
    pub fn is_active(&self, level: AlarmLevel) -> bool {
        self.streaks.contains_key(&level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MeasurementPair, MetricKind};

    fn board_with_system_score(at: u64, q: f64) -> ScoreBoard {
        let a = MeasurementId::new(MachineId::new(0), MetricKind::Custom(0));
        let b = MeasurementId::new(MachineId::new(1), MetricKind::Custom(0));
        let mut board = ScoreBoard::new(Timestamp::from_secs(at));
        board.record(MeasurementPair::new(a, b).unwrap(), q);
        board
    }

    fn policy(threshold: f64, consecutive: u32) -> AlarmPolicy {
        AlarmPolicy {
            system_threshold: threshold,
            measurement_threshold: 0.0, // disabled in these tests
            min_consecutive: consecutive,
        }
    }

    #[test]
    fn fires_immediately_with_consecutive_one() {
        let mut tracker = AlarmTracker::new();
        let alarms = tracker.evaluate(&board_with_system_score(0, 0.3), &policy(0.5, 1));
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].level, AlarmLevel::System);
        assert!(tracker.is_active(AlarmLevel::System));
    }

    #[test]
    fn debounce_waits_for_streak() {
        let mut tracker = AlarmTracker::new();
        let p = policy(0.5, 3);
        assert!(tracker
            .evaluate(&board_with_system_score(0, 0.3), &p)
            .is_empty());
        assert!(tracker
            .evaluate(&board_with_system_score(1, 0.3), &p)
            .is_empty());
        let alarms = tracker.evaluate(&board_with_system_score(2, 0.3), &p);
        assert_eq!(alarms.len(), 1);
        // Continuing violation does not refire.
        assert!(tracker
            .evaluate(&board_with_system_score(3, 0.3), &p)
            .is_empty());
    }

    #[test]
    fn recovery_rearms() {
        let mut tracker = AlarmTracker::new();
        let p = policy(0.5, 1);
        assert_eq!(
            tracker.evaluate(&board_with_system_score(0, 0.3), &p).len(),
            1
        );
        assert!(tracker
            .evaluate(&board_with_system_score(1, 0.9), &p)
            .is_empty());
        assert!(!tracker.is_active(AlarmLevel::System));
        assert_eq!(
            tracker.evaluate(&board_with_system_score(2, 0.3), &p).len(),
            1
        );
    }

    #[test]
    fn healthy_scores_never_alarm() {
        let mut tracker = AlarmTracker::new();
        for k in 0..10 {
            assert!(tracker
                .evaluate(&board_with_system_score(k, 0.95), &policy(0.5, 1))
                .is_empty());
        }
    }

    #[test]
    fn measurement_level_alarms_name_the_measurement() {
        let a = MeasurementId::new(MachineId::new(0), MetricKind::Custom(0));
        let b = MeasurementId::new(MachineId::new(1), MetricKind::Custom(0));
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        board.record(MeasurementPair::new(a, b).unwrap(), 0.1);
        let mut tracker = AlarmTracker::new();
        let p = AlarmPolicy {
            system_threshold: 0.0,
            measurement_threshold: 0.5,
            min_consecutive: 1,
        };
        let alarms = tracker.evaluate(&board, &p);
        assert_eq!(alarms.len(), 2);
        assert!(alarms
            .iter()
            .all(|e| matches!(e.level, AlarmLevel::Measurement(_))));
        let display = alarms[0].to_string();
        assert!(display.contains("below threshold"));
    }
}
