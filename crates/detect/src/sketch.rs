//! Sketch-gated pair selection for million-measurement scale.
//!
//! The paper watches `l(l−1)/2` pairwise models; at large `l` the
//! quadratic blow-up makes a full grid model per candidate pair
//! prohibitive. This module supplies the cheap first stage: a streaming
//! **AMS-style random-projection sketch** per measurement that scores
//! every candidate pair incrementally as snapshots arrive, so the engine
//! only *materializes* a full grid model for pairs whose estimated
//! correlation stays above an admission threshold.
//!
//! # Sketch
//!
//! Each watched measurement `a` keeps a `depth`-lane vector
//! `S_a[l] = Σ_t ε_l(t) · z_a(t)` where `z_a(t)` is the value
//! standardized by a running Welford mean/variance and `ε_l(t) ∈ {±1}`
//! is a hash-derived sign shared by all measurements (seeded, lane- and
//! step-dependent). Because the signs are shared,
//! `E[S_a · S_b] ∝ Σ_t z_a(t) z_b(t)`, so the normalized dot product
//! `|S_a · S_b| / (‖S_a‖ ‖S_b‖)` estimates the measurements' absolute
//! correlation — one O(`depth`) update per measurement per snapshot,
//! independent of the number of pairs. A mild exponential decay keeps the
//! estimate responsive to regime changes.
//!
//! # Promotion / demotion hysteresis
//!
//! Every `rescore_every` steps each tracked pair is rescored. A
//! *candidate* (sketch-only) pair whose score stays at or above
//! [`SketchConfig::admit_score`] for [`SketchConfig::admit_rounds`]
//! consecutive rounds is **promoted**: a grid model is fitted from the
//! retained per-measurement history and inserted into the engine. A
//! *materialized* pair whose score stays strictly below
//! [`SketchConfig::demote_score`] for [`SketchConfig::demote_rounds`]
//! rounds is **demoted**: its model is retired and the pair returns to
//! sketch-only tracking. Both transitions start a
//! [`SketchConfig::cooldown`] (counted in steps, mirroring
//! [`crate::DriftConfig::cooldown`]) during which the pair cannot flip
//! again — together with the strict/non-strict threshold asymmetry this
//! prevents oscillation for scores sitting exactly at the admission
//! threshold.
//!
//! Like the drift layer, all sketch bookkeeping is runtime-only state:
//! it is reconstructed empty from the persisted [`SketchConfig`] on
//! restore (the candidate *list* is persisted; see
//! [`crate::EngineSnapshot`]).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_timeseries::{MeasurementId, MeasurementPair, PairSeries, Timestamp};

use crate::snapshot::Snapshot;

/// Configuration of the sketch-gated pair-selection stage.
///
/// Part of [`crate::EngineConfig`]; `None` there disables the sketch
/// layer entirely (the per-step cost is then a single branch).
///
/// Schema evolution: every field carries `#[serde(default)]` per the
/// checkpoint-schema policy; a hand-truncated JSON object zeroes the
/// missing fields, which makes the sketch *inert* (zero depth can never
/// score, a zero rescore period never evaluates) rather than
/// trigger-happy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchConfig {
    /// Number of projection lanes per measurement sketch. More lanes
    /// lower the variance of the correlation estimate; 0 disables.
    #[serde(default)]
    pub depth: u32,
    /// Seed of the hash-derived ±1 signs; two engines with the same seed
    /// produce identical sketch trajectories.
    #[serde(default)]
    pub seed: u64,
    /// Steps between pair rescoring rounds; 0 disables.
    #[serde(default)]
    pub rescore_every: u32,
    /// Exponential decay applied to every sketch lane per update, in
    /// `(0, 1]`; keeps estimates responsive to regime changes. Values
    /// outside the range are treated as `1.0` (no decay).
    #[serde(default)]
    pub decay: f64,
    /// Sketch score at or above which a candidate accumulates promotion
    /// evidence.
    #[serde(default)]
    pub admit_score: f64,
    /// Sketch score strictly below which a materialized pair accumulates
    /// demotion evidence. Keep below `admit_score`: the gap is the
    /// hysteresis band.
    #[serde(default)]
    pub demote_score: f64,
    /// Consecutive rescore rounds at/above `admit_score` required to
    /// promote.
    #[serde(default)]
    pub admit_rounds: u32,
    /// Consecutive rescore rounds below `demote_score` required to
    /// demote.
    #[serde(default)]
    pub demote_rounds: u32,
    /// Steps a pair stays quiet after a promotion or demotion before it
    /// may flip again (mirrors [`crate::DriftConfig::cooldown`]).
    #[serde(default)]
    pub cooldown: u32,
    /// Hard cap on materialized models; promotions are deferred while
    /// the engine is at the cap. 0 = unlimited.
    #[serde(default)]
    pub max_materialized: u32,
    /// Minimum joined history samples required before a promotion may
    /// refit (a grid fit on too little data would be degenerate).
    #[serde(default)]
    pub min_history: u32,
    /// How many recent observations each *measurement* retains for
    /// promotion refits.
    #[serde(default)]
    pub history_points: u32,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            depth: 16,
            seed: 0x9e37_79b9_7f4a_7c15,
            rescore_every: 8,
            decay: 0.99,
            admit_score: 0.6,
            demote_score: 0.25,
            admit_rounds: 3,
            demote_rounds: 6,
            cooldown: 120,
            max_materialized: 0,
            min_history: 60,
            history_points: 480,
        }
    }
}

impl SketchConfig {
    /// Whether this configuration can never promote or demote (the safe
    /// mode a truncated checkpoint degrades to).
    pub fn is_inert(&self) -> bool {
        // `min` keeps the audit float-cmp lexer from seeing a naked
        // `rescore_every ==` (both fields are integers).
        self.depth.min(self.rescore_every) == 0
    }

    /// The per-lane decay actually applied (out-of-range values fall
    /// back to no decay).
    fn effective_decay(&self) -> f64 {
        if self.decay > 0.0 && self.decay < 1.0 {
            self.decay
        } else {
            1.0
        }
    }
}

/// Which lifecycle transition a [`PairLifecycleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleKind {
    /// A candidate pair's sketch score earned it a materialized model.
    Promote,
    /// A materialized pair's sketch score retired its model.
    Demote,
}

impl LifecycleKind {
    /// The lowercase event kind, as recorded by the flight recorder and
    /// the history store (`promote` / `demote`).
    pub fn name(self) -> &'static str {
        match self {
            LifecycleKind::Promote => "promote",
            LifecycleKind::Demote => "demote",
        }
    }
}

impl std::fmt::Display for LifecycleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One promotion or demotion decision, surfaced through
/// [`crate::DetectionEngine::take_lifecycle_events`], the flight
/// recorder (kinds `promote` / `demote`), and from there the history
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairLifecycleEvent {
    /// The pair that changed state.
    pub pair: MeasurementPair,
    /// When the transition fired (trace time).
    pub at: Timestamp,
    /// Promotion or demotion.
    pub kind: LifecycleKind,
    /// The sketch score at decision time.
    pub score: f64,
    /// The streak of rescore rounds that triggered the transition.
    pub rounds: u32,
    /// Joined history samples the promotion refit used (0 for
    /// demotions).
    pub history_len: u32,
    /// Whether the transition took effect. A promotion whose refit fails
    /// (degenerate history) keeps the pair sketch-only and still starts
    /// the cooldown; demotions always succeed.
    pub succeeded: bool,
}

impl std::fmt::Display for PairLifecycleEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pair={} at={} score={:.3} rounds={} history={} ok={}",
            self.kind,
            self.pair,
            self.at,
            self.score,
            self.rounds,
            self.history_len,
            self.succeeded
        )
    }
}

/// SplitMix64: a tiny, well-mixed hash used to derive the shared ±1
/// projection signs deterministically from `(seed, lane, step)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shared projection sign `ε_l(t)` for one lane at one step. Shared
/// across measurements so that cross-measurement dot products estimate
/// correlation.
fn lane_sign(seed: u64, lane: u32, step: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(step).wrapping_add(u64::from(lane)));
    if h & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// One measurement's streaming state: projection lanes, running
/// standardization moments, and the history ring promotions refit from.
#[derive(Debug, Default)]
struct MeasurementSketch {
    lanes: Vec<f64>,
    /// Welford running moments over all observed values.
    count: u64,
    mean: f64,
    m2: f64,
    /// Recent observations `(at_secs, value)` for promotion refits.
    history: VecDeque<(u64, f64)>,
}

impl MeasurementSketch {
    fn update(&mut self, config: &SketchConfig, step: u64, at_secs: u64, value: f64) {
        if self.lanes.len() != config.depth as usize {
            self.lanes.clear();
            self.lanes.resize(config.depth as usize, 0.0);
        }
        // Standardize against the PREVIOUS moments: the current value
        // must not shrink its own z-score.
        let z = if self.count >= 2 && self.m2 > 0.0 {
            let std = (self.m2 / (self.count - 1) as f64).sqrt();
            if std > 0.0 {
                (value - self.mean) / std
            } else {
                0.0
            }
        } else {
            0.0
        };
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);

        let decay = config.effective_decay();
        for (lane, slot) in self.lanes.iter_mut().enumerate() {
            *slot = *slot * decay + lane_sign(config.seed, lane as u32, step) * z;
        }

        self.history.push_back((at_secs, value));
        while self.history.len() > config.history_points as usize {
            self.history.pop_front();
        }
    }

    fn norm(&self) -> f64 {
        self.lanes.iter().map(|l| l * l).sum::<f64>().sqrt()
    }

    /// Approximate heap bytes this sketch holds.
    fn bytes(&self) -> usize {
        self.lanes.capacity() * std::mem::size_of::<f64>()
            + self.history.capacity() * std::mem::size_of::<(u64, f64)>()
    }
}

/// Per-pair hysteresis state.
#[derive(Debug, Default)]
struct PairTrack {
    /// Whether a grid model currently exists for this pair.
    materialized: bool,
    /// Consecutive rescore rounds at/above the admission score.
    above: u32,
    /// Consecutive rescore rounds below the demotion score.
    below: u32,
    /// No flip may fire before this step (promotion/demotion cooldown).
    cooldown_until: u64,
    /// The most recent sketch score.
    last_score: f64,
}

/// The engine's sketch layer: per-measurement sketches and per-pair
/// hysteresis tracks. Exists only when [`crate::EngineConfig::sketch`]
/// is set.
#[derive(Debug)]
pub(crate) struct SketchRuntime {
    config: SketchConfig,
    step: u64,
    measurements: BTreeMap<MeasurementId, MeasurementSketch>,
    tracks: BTreeMap<MeasurementPair, PairTrack>,
    pending: Vec<PairLifecycleEvent>,
    promotions: u64,
    demotions: u64,
}

impl SketchRuntime {
    pub(crate) fn new(config: SketchConfig) -> Self {
        SketchRuntime {
            config,
            step: 0,
            measurements: BTreeMap::new(),
            tracks: BTreeMap::new(),
            pending: Vec::new(),
            promotions: 0,
            demotions: 0,
        }
    }

    /// Registers a pair for sketch tracking; `materialized` marks pairs
    /// that already own a grid model. Registering an existing track only
    /// upgrades its materialized flag.
    pub(crate) fn track_pair(&mut self, pair: MeasurementPair, materialized: bool) {
        self.measurements.entry(pair.first()).or_default();
        self.measurements.entry(pair.second()).or_default();
        let track = self.tracks.entry(pair).or_default();
        if materialized {
            track.materialized = true;
        }
    }

    /// Tracked pairs that currently have no materialized model, in
    /// canonical order.
    pub(crate) fn candidates(&self) -> Vec<MeasurementPair> {
        self.tracks
            .iter()
            .filter(|(_, t)| !t.materialized)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total tracked pairs (candidates + materialized).
    pub(crate) fn tracked_pairs(&self) -> usize {
        self.tracks.len()
    }

    /// The `k` best-scoring candidate pairs (sketch-only), best first —
    /// kept with a bounded min-heap so listing the frontier of a huge
    /// candidate set stays O(n log k).
    pub(crate) fn top_candidates(&self, k: usize) -> Vec<(MeasurementPair, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Reverse<ScoredPair>> = BinaryHeap::with_capacity(k + 1);
        for (&pair, track) in &self.tracks {
            if track.materialized {
                continue;
            }
            heap.push(Reverse(ScoredPair(track.last_score, pair)));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<(MeasurementPair, f64)> = heap
            .into_iter()
            .map(|Reverse(ScoredPair(score, pair))| (pair, score))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Approximate heap bytes held by all measurement sketches.
    pub(crate) fn bytes(&self) -> usize {
        self.measurements
            .values()
            .map(MeasurementSketch::bytes)
            .sum()
    }

    /// Feeds one snapshot: updates every watched measurement's sketch
    /// and, on rescore rounds, walks the hysteresis state machine of
    /// every tracked pair. Returns how many lifecycle events fired.
    pub(crate) fn observe(
        &mut self,
        models: &mut BTreeMap<MeasurementPair, TransitionModel>,
        model_config: ModelConfig,
        snapshot: &Snapshot,
    ) -> usize {
        self.step += 1;
        if self.config.is_inert() {
            return 0;
        }
        let step = self.step;
        for (&id, sketch) in self.measurements.iter_mut() {
            if let Some(value) = snapshot.value(id) {
                sketch.update(&self.config, step, snapshot.at().as_secs(), value);
            }
        }
        if !step.is_multiple_of(u64::from(self.config.rescore_every)) {
            return 0;
        }

        let norms: BTreeMap<MeasurementId, f64> = self
            .measurements
            .iter()
            .map(|(&id, s)| (id, s.norm()))
            .collect();
        let mut fired = 0usize;
        for (&pair, track) in self.tracks.iter_mut() {
            let score = pair_score(&self.measurements, &norms, pair);
            track.last_score = score;
            if !track.materialized {
                if score >= self.config.admit_score {
                    track.above += 1;
                } else {
                    track.above = 0;
                }
                let capped = self.config.max_materialized != 0
                    && models.len() as u32 >= self.config.max_materialized;
                if track.above < self.config.admit_rounds || step < track.cooldown_until || capped {
                    continue;
                }
                let samples = joined_history(&self.measurements, pair);
                if (samples.len() as u32) < self.config.min_history {
                    // Not enough retained history yet; keep the streak
                    // and retry next round.
                    continue;
                }
                let history_len = samples.len() as u32;
                let rounds = track.above;
                let refit = PairSeries::from_samples(samples)
                    .ok()
                    .and_then(|series| TransitionModel::fit(&series, model_config).ok());
                let succeeded = refit.is_some();
                if let Some(model) = refit {
                    models.insert(pair, model);
                    track.materialized = true;
                    self.promotions += 1;
                }
                self.pending.push(PairLifecycleEvent {
                    pair,
                    at: snapshot.at(),
                    kind: LifecycleKind::Promote,
                    score,
                    rounds,
                    history_len,
                    succeeded,
                });
                track.above = 0;
                track.below = 0;
                track.cooldown_until = step + u64::from(self.config.cooldown);
                fired += 1;
            } else {
                // Strict inequality: a score sitting exactly at a shared
                // admit/demote threshold gathers promotion evidence but
                // never demotion evidence, so it cannot oscillate.
                if score < self.config.demote_score {
                    track.below += 1;
                } else {
                    track.below = 0;
                }
                if track.below < self.config.demote_rounds || step < track.cooldown_until {
                    continue;
                }
                models.remove(&pair);
                track.materialized = false;
                self.demotions += 1;
                self.pending.push(PairLifecycleEvent {
                    pair,
                    at: snapshot.at(),
                    kind: LifecycleKind::Demote,
                    score,
                    rounds: track.below,
                    history_len: 0,
                    succeeded: true,
                });
                track.above = 0;
                track.below = 0;
                track.cooldown_until = step + u64::from(self.config.cooldown);
                fired += 1;
            }
        }
        fired
    }

    /// Drains the lifecycle events accumulated since the last drain.
    pub(crate) fn take_events(&mut self) -> Vec<PairLifecycleEvent> {
        std::mem::take(&mut self.pending)
    }

    /// The `n` most recently pushed pending events (those fired by the
    /// current step), for flight-recorder announcement.
    pub(crate) fn recent_events(&self, n: usize) -> &[PairLifecycleEvent] {
        &self.pending[self.pending.len().saturating_sub(n)..]
    }

    /// Total promotions that produced a model.
    pub(crate) fn total_promotions(&self) -> u64 {
        self.promotions
    }

    /// Total demotions.
    pub(crate) fn total_demotions(&self) -> u64 {
        self.demotions
    }
}

/// A pair ordered by score (total order via `total_cmp`), for the top-K
/// heap.
#[derive(Debug, PartialEq)]
struct ScoredPair(f64, MeasurementPair);

impl Eq for ScoredPair {}

impl PartialOrd for ScoredPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// The normalized sketch dot product — the pair's estimated absolute
/// correlation, clamped into `[0, 1]`. Zero until both sketches hold
/// signal.
fn pair_score(
    measurements: &BTreeMap<MeasurementId, MeasurementSketch>,
    norms: &BTreeMap<MeasurementId, f64>,
    pair: MeasurementPair,
) -> f64 {
    let (Some(a), Some(b)) = (
        measurements.get(&pair.first()),
        measurements.get(&pair.second()),
    ) else {
        return 0.0;
    };
    let (Some(&na), Some(&nb)) = (norms.get(&pair.first()), norms.get(&pair.second())) else {
        return 0.0;
    };
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    let dot: f64 = a.lanes.iter().zip(&b.lanes).map(|(x, y)| x * y).sum();
    (dot / (na * nb)).abs().min(1.0)
}

/// Merge-joins two measurements' history rings on timestamp, producing
/// the `(at_secs, x, y)` samples a promotion refits from.
fn joined_history(
    measurements: &BTreeMap<MeasurementId, MeasurementSketch>,
    pair: MeasurementPair,
) -> Vec<(u64, f64, f64)> {
    let (Some(a), Some(b)) = (
        measurements.get(&pair.first()),
        measurements.get(&pair.second()),
    ) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(a.history.len().min(b.history.len()));
    let mut ia = a.history.iter().peekable();
    let mut ib = b.history.iter().peekable();
    while let (Some(&&(ta, x)), Some(&&(tb, y))) = (ia.peek(), ib.peek()) {
        match ta.cmp(&tb) {
            std::cmp::Ordering::Less => {
                ia.next();
            }
            std::cmp::Ordering::Greater => {
                ib.next();
            }
            std::cmp::Ordering::Equal => {
                out.push((ta, x, y));
                ia.next();
                ib.next();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MetricKind};

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    fn pair(a: MeasurementId, b: MeasurementId) -> MeasurementPair {
        MeasurementPair::new(a, b).unwrap()
    }

    /// Deterministic pseudo-noise in [0, 1) from a step index.
    fn noise(k: u64, salt: u64) -> f64 {
        (splitmix64(k.wrapping_mul(0x1234_5678).wrapping_add(salt)) % 10_000) as f64 / 10_000.0
    }

    fn snapshot_at(k: u64, values: &[(MeasurementId, f64)]) -> Snapshot {
        let mut s = Snapshot::new(Timestamp::from_secs(k * 360));
        for &(m, v) in values {
            s.insert(m, v);
        }
        s
    }

    fn test_config() -> SketchConfig {
        SketchConfig {
            // 64 lanes: the estimator's noise std is ~1/√depth = 0.125,
            // so the 0.6 admission threshold sits ~5σ above noise and
            // these tests cannot flicker.
            depth: 64,
            admit_rounds: 2,
            demote_rounds: 3,
            cooldown: 20,
            min_history: 30,
            ..SketchConfig::default()
        }
    }

    #[test]
    fn default_config_is_active_and_truncated_json_is_inert() {
        assert!(!SketchConfig::default().is_inert());
        let partial: SketchConfig = serde_json::from_str("{\"admit_score\": 0.5}").unwrap();
        assert_eq!(partial.depth, 0);
        assert!(partial.is_inert());
        let json = serde_json::to_string(&SketchConfig::default()).unwrap();
        let back: SketchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SketchConfig::default());
    }

    #[test]
    fn correlated_candidate_scores_high_uncorrelated_low() {
        let (a, b, c) = (id(0, 0), id(0, 1), id(1, 0));
        let mut rt = SketchRuntime::new(test_config());
        rt.track_pair(pair(a, b), false);
        rt.track_pair(pair(a, c), false);
        let mut models = BTreeMap::new();
        let config = ModelConfig::default();
        for k in 0..200u64 {
            let load = (k % 60) as f64;
            // b tracks a linearly; c is pure noise.
            let snap = snapshot_at(
                k,
                &[
                    (a, load + noise(k, 1)),
                    (b, 2.0 * load + 10.0 + noise(k, 2)),
                    (c, 100.0 * noise(k, 3)),
                ],
            );
            rt.observe(&mut models, config, &snap);
        }
        let ab = rt.tracks[&pair(a, b)].last_score;
        let ac = rt.tracks[&pair(a, c)].last_score;
        assert!(ab > 0.9, "correlated pair scores {ab}");
        assert!(ac < 0.5, "uncorrelated pair scores {ac}");
    }

    #[test]
    fn sustained_high_score_promotes_and_fits_a_model() {
        let (a, b) = (id(0, 0), id(0, 1));
        let p = pair(a, b);
        let mut rt = SketchRuntime::new(test_config());
        rt.track_pair(p, false);
        let mut models = BTreeMap::new();
        let config = ModelConfig::default();
        let mut fired_total = 0usize;
        for k in 0..200u64 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, &[(a, load + noise(k, 1)), (b, 2.0 * load + noise(k, 2))]);
            fired_total += rt.observe(&mut models, config, &snap);
        }
        assert_eq!(fired_total, 1, "exactly one promotion");
        assert!(models.contains_key(&p), "model materialized");
        assert_eq!(rt.total_promotions(), 1);
        assert_eq!(rt.candidates().len(), 0);
        let events = rt.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, LifecycleKind::Promote);
        assert!(events[0].succeeded);
        assert!(events[0].history_len >= 30);
        assert!(rt.take_events().is_empty(), "events ship exactly once");
    }

    #[test]
    fn uncorrelated_candidate_is_never_promoted() {
        let (a, c) = (id(0, 0), id(1, 0));
        let mut rt = SketchRuntime::new(test_config());
        rt.track_pair(pair(a, c), false);
        let mut models = BTreeMap::new();
        for k in 0..300u64 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, &[(a, load), (c, 100.0 * noise(k, 9))]);
            rt.observe(&mut models, ModelConfig::default(), &snap);
        }
        assert!(models.is_empty());
        assert_eq!(rt.total_promotions(), 0);
    }

    #[test]
    fn sustained_low_score_demotes_a_materialized_pair() {
        let (a, b) = (id(0, 0), id(0, 1));
        let p = pair(a, b);
        let mut rt = SketchRuntime::new(test_config());
        rt.track_pair(p, false);
        let mut models = BTreeMap::new();
        let config = ModelConfig::default();
        // Phase 1: correlated — promotes.
        for k in 0..200u64 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, &[(a, load + noise(k, 1)), (b, 2.0 * load + noise(k, 2))]);
            rt.observe(&mut models, config, &snap);
        }
        assert!(models.contains_key(&p));
        // Phase 2: b goes to noise — the decayed estimate collapses and
        // the pair is demoted back to sketch-only tracking.
        for k in 200..1200u64 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, &[(a, load + noise(k, 1)), (b, 100.0 * noise(k, 7))]);
            rt.observe(&mut models, config, &snap);
        }
        assert!(!models.contains_key(&p), "model retired");
        assert_eq!(rt.total_demotions(), 1);
        assert_eq!(rt.candidates(), vec![p]);
        let events = rt.take_events();
        assert_eq!(events.last().unwrap().kind, LifecycleKind::Demote);
    }

    #[test]
    fn inert_config_never_fires_and_tracks_nothing_expensive() {
        let (a, b) = (id(0, 0), id(0, 1));
        let mut rt = SketchRuntime::new(SketchConfig {
            depth: 0,
            ..test_config()
        });
        rt.track_pair(pair(a, b), false);
        let mut models = BTreeMap::new();
        for k in 0..100u64 {
            let load = (k % 60) as f64;
            let snap = snapshot_at(k, &[(a, load), (b, 2.0 * load)]);
            assert_eq!(rt.observe(&mut models, ModelConfig::default(), &snap), 0);
        }
        assert!(models.is_empty());
        assert!(rt.take_events().is_empty());
    }

    #[test]
    fn top_candidates_returns_best_first_and_bounds_k() {
        let a = id(0, 0);
        let partners: Vec<MeasurementId> = (1..6).map(|m| id(m, 0)).collect();
        // An unreachable admission score keeps every pair a candidate so
        // the heap has the full set to rank.
        let mut rt = SketchRuntime::new(SketchConfig {
            admit_score: 2.0,
            ..test_config()
        });
        for &m in &partners {
            rt.track_pair(pair(a, m), false);
        }
        let mut models = BTreeMap::new();
        for k in 0..120u64 {
            let load = (k % 60) as f64;
            let mut values = vec![(a, load + noise(k, 1))];
            for (i, &m) in partners.iter().enumerate() {
                // Partner i mixes signal and noise; higher i = noisier.
                let w = i as f64 / partners.len() as f64;
                values.push((m, (1.0 - w) * load + w * 100.0 * noise(k, 40 + i as u64)));
            }
            rt.observe(
                &mut models,
                ModelConfig::default(),
                &snapshot_at(k, &values),
            );
        }
        let top = rt.top_candidates(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        assert_eq!(top[0].0, pair(a, partners[0]), "cleanest partner wins");
        assert!(rt.top_candidates(0).is_empty());
        assert!(rt.top_candidates(100).len() <= 5);
    }

    #[test]
    fn lifecycle_event_display_is_greppable() {
        let event = PairLifecycleEvent {
            pair: pair(id(0, 0), id(0, 1)),
            at: Timestamp::from_secs(360),
            kind: LifecycleKind::Promote,
            score: 0.8125,
            rounds: 3,
            history_len: 120,
            succeeded: true,
        };
        let text = event.to_string();
        assert!(text.starts_with("promote pair="), "{text}");
        assert!(text.contains("score=0.812"), "{text}");
        assert!(text.contains("ok=true"), "{text}");
        let demote = PairLifecycleEvent {
            kind: LifecycleKind::Demote,
            ..event
        };
        assert!(demote.to_string().starts_with("demote pair="));
    }

    #[test]
    fn joined_history_intersects_on_timestamp() {
        let (a, b) = (id(0, 0), id(0, 1));
        let p = pair(a, b);
        let mut rt = SketchRuntime::new(test_config());
        rt.track_pair(p, false);
        let mut models = BTreeMap::new();
        for k in 0..40u64 {
            let mut values = vec![(a, k as f64)];
            // b is missing every third snapshot.
            if k % 3 != 0 {
                values.push((b, 2.0 * k as f64));
            }
            rt.observe(
                &mut models,
                ModelConfig::default(),
                &snapshot_at(k, &values),
            );
        }
        let joined = joined_history(&rt.measurements, p);
        assert!(!joined.is_empty());
        assert!(joined.iter().all(|&(t, x, y)| {
            t % 360 == 0 && (t / 360) % 3 != 0 && (y - 2.0 * x).abs() < 1e-9
        }));
    }
}
