//! Property coverage for the drift layer's false-positive behavior:
//! on a *stationary* trace — replay drawn from the same process the
//! model was trained on — the detector must never fire, for any seed,
//! noise level, load rhythm, or (sane) detector tuning.
//!
//! This is the contract that makes `DriftConfig::default()` safe to
//! enable everywhere: rebuilds carry real cost (refit + a model swap),
//! so zero false rebuilds on in-distribution data is a hard floor, not
//! a statistical hope. The engine here uses a frozen model — the
//! configuration drift detection is designed for, and the one *most*
//! prone to false decay, since frozen grids never absorb what they see.

use gridwatch_detect::{DetectionEngine, DriftConfig, EngineConfig, Snapshot};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn id(tag: u16) -> MeasurementId {
    MeasurementId::new(MachineId::new(0), MetricKind::Custom(tag))
}

/// One stationary sample of the two coupled measurements at tick `k`:
/// a diurnal-ish load driving both linearly, plus bounded sensor noise.
fn stationary(k: u64, period: u64, noise: f64, rng: &mut StdRng) -> (f64, f64) {
    let phase = (k % period) as f64 / period as f64 * std::f64::consts::TAU;
    let load = 30.0 + 25.0 * phase.sin();
    let jitter = |rng: &mut StdRng| 1.0 + noise * (rng.random::<f64>() * 2.0 - 1.0);
    (load * jitter(rng), (2.0 * load + 10.0) * jitter(rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero rebuilds on stationary replay: the drift detector stays
    /// silent when the data keeps looking like training, whatever the
    /// seed, the noise, the load period, or the detector window.
    #[test]
    fn stationary_traces_never_trigger_a_rebuild(
        seed in 0u64..1_000_000,
        noise in 0.0f64..0.06,
        period in 24u64..120,
        window in 10u32..50,
        decay_fraction in 0.6f64..0.95,
        replay in 100usize..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = MeasurementPair::new(id(0), id(1)).unwrap();
        let history = PairSeries::from_samples((0..500u64).map(|k| {
            let (x, y) = stationary(k, period, noise, &mut rng);
            (k * 360, x, y)
        }))
        .unwrap();
        let config = EngineConfig {
            model: gridwatch_core::ModelConfig::default().frozen(),
            drift: Some(DriftConfig {
                window,
                decay_fraction,
                ..DriftConfig::default()
            }),
            ..EngineConfig::default()
        };
        let mut engine = DetectionEngine::train(vec![(pair, history)], config).unwrap();

        for k in 0..replay as u64 {
            let (x, y) = stationary(500 + k, period, noise, &mut rng);
            let mut snap = Snapshot::new(Timestamp::from_secs((500 + k) * 360));
            snap.insert(id(0), x);
            snap.insert(id(1), y);
            engine.step_scores(&snap);
            prop_assert_eq!(
                engine.rebuild_count(),
                0,
                "false rebuild at stationary step {} (seed {}, noise {}, period {}, \
                 window {}, fraction {})",
                k, seed, noise, period, window, decay_fraction
            );
        }
        prop_assert!(engine.take_rebuild_events().is_empty());
    }
}
