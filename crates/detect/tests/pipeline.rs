//! End-to-end pipeline test: simulated infrastructure → training →
//! online detection, checking the paper's two headline behaviours on a
//! small scale — correlation breaks are caught (and localized), load
//! spikes are not flagged.

use std::collections::BTreeMap;

use gridwatch_core::ModelConfig;
use gridwatch_detect::{DetectionEngine, EngineConfig, Localizer, PairScreen, Snapshot};
use gridwatch_sim::scenario::{figure12_fault_window, group_fault_scenario, TEST_DAY};
use gridwatch_sim::Trace;
use gridwatch_timeseries::{
    AlignmentPolicy, GroupId, MeasurementId, PairSeries, SampleInterval, Timestamp,
};

/// Trains an engine on the first `train_days` of a trace, applying the
/// paper's high-variance screen and a small update threshold `δ` so the
/// model does not learn anomalous transitions.
fn train_engine(trace: &Trace, train_days: u64) -> DetectionEngine {
    let train_end = Timestamp::from_days(train_days);
    let mut training = BTreeMap::new();
    for id in trace.measurement_ids() {
        training.insert(
            id,
            trace.series(id).unwrap().slice(Timestamp::EPOCH, train_end),
        );
    }
    // Criterion 3 of the paper: high variance only. This drops the
    // near-constant FreeDiskSpace metric, whose unpredictability would
    // otherwise dominate absolute rankings.
    let screen = PairScreen {
        min_cv: 0.05,
        ..PairScreen::default()
    };
    let pairs = screen.select(&training);
    assert!(!pairs.is_empty());
    let pair_histories: Vec<_> = pairs
        .into_iter()
        .filter_map(|p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();
    let config = EngineConfig {
        model: ModelConfig::builder()
            .update_threshold(0.005)
            .build()
            .unwrap(),
        ..EngineConfig::default()
    };
    DetectionEngine::train(pair_histories, config).unwrap()
}

/// Steps the engine over `[start, end)`, returning per-tick measurement
/// score maps.
fn replay(
    engine: &mut DetectionEngine,
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> Vec<(Timestamp, BTreeMap<MeasurementId, f64>)> {
    let mut out = Vec::new();
    for t in SampleInterval::SIX_MINUTES.ticks(start, end) {
        let mut snap = Snapshot::new(t);
        for id in trace.measurement_ids() {
            if let Some(v) = trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        let report = engine.step(&snap);
        if !report.scores.is_empty() {
            out.push((t, report.scores.measurement_scores()));
        }
    }
    out
}

fn mean_of(
    rows: &[(Timestamp, BTreeMap<MeasurementId, f64>)],
    id: MeasurementId,
    lo: Timestamp,
    hi: Timestamp,
) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|(t, _)| *t >= lo && *t < hi)
        .filter_map(|(_, m)| m.get(&id).copied())
        .collect();
    assert!(!vals.is_empty(), "no scores for {id} in [{lo}, {hi})");
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[test]
fn fault_dents_target_score_while_spike_does_not() {
    let scenario = group_fault_scenario(GroupId::A, 3, 42);
    let (_, target) = scenario.focus_pair.unwrap();
    let mut engine = train_engine(&scenario.trace, 8);

    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let rows = replay(&mut engine, &scenario.trace, start, end);
    assert!(rows.len() > 200);

    let (fs, fe) = figure12_fault_window(GroupId::A);
    let day = start.as_secs();
    let evening_lo = Timestamp::from_secs(day + 19 * 3600);
    let evening_hi = Timestamp::from_secs(day + 23 * 3600);

    // The broken measurement's own fitness dips during the fault.
    let q_fault = mean_of(&rows, target, fs, fe);
    let q_normal = mean_of(&rows, target, evening_lo, evening_hi);
    assert!(
        q_fault < q_normal - 0.05,
        "fault mean {q_fault} should be clearly below normal {q_normal}"
    );

    // The correlation-preserving load spike (4-5am) must not dent it
    // comparably.
    let spike_lo = Timestamp::from_secs(day + 4 * 3600);
    let spike_hi = Timestamp::from_secs(day + 5 * 3600);
    let q_spike = mean_of(&rows, target, spike_lo, spike_hi);
    assert!(
        (q_normal - q_spike) < (q_normal - q_fault) / 2.0,
        "spike mean {q_spike} must stay much closer to normal {q_normal} than fault {q_fault}"
    );
}

#[test]
fn faulty_measurement_is_localized() {
    let scenario = group_fault_scenario(GroupId::B, 3, 11);
    let (_, target) = scenario.focus_pair.unwrap();
    let mut engine = train_engine(&scenario.trace, 8);

    let (fs, fe) = figure12_fault_window(GroupId::B);
    // Warm up on the two hours before the fault to build baselines.
    let warm_start = Timestamp::from_secs(fs.as_secs() - 2 * 3600);
    let warm_rows = replay(&mut engine, &scenario.trace, warm_start, fs);
    let mut baseline: BTreeMap<MeasurementId, f64> = BTreeMap::new();
    let mut counts: BTreeMap<MeasurementId, usize> = BTreeMap::new();
    for (_, m) in &warm_rows {
        for (&id, &q) in m {
            *baseline.entry(id).or_insert(0.0) += q;
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    for (id, sum) in baseline.iter_mut() {
        *sum /= counts[id] as f64;
    }

    // During the fault, vote for the measurement with the largest drop
    // below its own baseline.
    let mut votes: BTreeMap<MeasurementId, u32> = BTreeMap::new();
    for t in SampleInterval::SIX_MINUTES.ticks(fs, fe) {
        let mut snap = Snapshot::new(t);
        for id in scenario.trace.measurement_ids() {
            if let Some(v) = scenario.trace.series(id).unwrap().value_at(t) {
                snap.insert(id, v);
            }
        }
        let report = engine.step(&snap);
        if report.scores.is_empty() {
            continue;
        }
        let ranked = Localizer::rank_measurements_relative(&report.scores, &baseline);
        if let Some(worst) = ranked.first() {
            *votes.entry(worst.id).or_insert(0) += 1;
        }
    }
    let (winner, _) = votes
        .iter()
        .max_by_key(|(_, &n)| n)
        .expect("at least one vote");
    assert_eq!(*winner, target, "votes: {votes:?}");
}
