//! Property coverage for the sketch layer's hysteresis contract: on a
//! *stationary* trace — any fixed mixing of shared load and noise, any
//! seed — no tracked pair may flip state (promote or demote) twice
//! within one cooldown window. This is the guarantee that makes the
//! admission gate safe at scale: a pair whose sketch score hovers near
//! a threshold may churn *eventually*, but never faster than the
//! configured cooldown, so promotion refits can't stampede the engine.
//!
//! The trace deliberately includes a borderline pair (a tunable mix of
//! signal and noise) so the estimator sits near the thresholds where
//! oscillation would happen if the cooldown or the strict/non-strict
//! threshold asymmetry were broken.

use std::collections::BTreeMap;

use gridwatch_detect::{DetectionEngine, EngineConfig, PairLifecycleEvent, SketchConfig, Snapshot};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEP_SECS: u64 = 360;

fn id(tag: u16) -> MeasurementId {
    MeasurementId::new(MachineId::new(0), MetricKind::Custom(tag))
}

/// The shared stationary load at tick `k`.
fn load_at(k: u64, period: u64) -> f64 {
    let phase = (k % period) as f64 / period as f64 * std::f64::consts::TAU;
    30.0 + 25.0 * phase.sin()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No pair flips state twice within one cooldown window, on any
    /// stationary trace and any (sane) sketch tuning. Consecutive
    /// lifecycle events for the same pair must be at least
    /// `cooldown * STEP_SECS` seconds of trace time apart.
    #[test]
    fn no_pair_flips_twice_within_one_cooldown_window(
        seed in 0u64..1_000_000,
        period in 24u64..120,
        mix in 0.2f64..0.9,
        cooldown in 10u32..80,
        demote_score in 0.1f64..0.4,
        band in 0.05f64..0.4,
        admit_rounds in 1u32..4,
        demote_rounds in 1u32..4,
        replay in 300usize..700,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trained = MeasurementPair::new(id(0), id(1)).unwrap();
        let borderline = MeasurementPair::new(id(0), id(2)).unwrap();
        let history = PairSeries::from_samples((0..300u64).map(|k| {
            let load = load_at(k, period);
            (k * STEP_SECS, load, 2.0 * load + 10.0)
        }))
        .unwrap();
        let sketch = SketchConfig {
            // Few lanes = a noisy estimator, the worst case for
            // threshold churn.
            depth: 8,
            rescore_every: 4,
            admit_score: demote_score + band,
            demote_score,
            admit_rounds,
            demote_rounds,
            cooldown,
            min_history: 20,
            ..SketchConfig::default()
        };
        let config = EngineConfig {
            sketch: Some(sketch),
            ..EngineConfig::default()
        };
        let mut engine = DetectionEngine::train(vec![(trained, history)], config).unwrap();
        engine.add_candidates([borderline]);

        for k in 0..replay as u64 {
            let tick = 300 + k;
            let load = load_at(tick, period);
            let noise = |rng: &mut StdRng| rng.random::<f64>() * 2.0 - 1.0;
            let mut snap = Snapshot::new(Timestamp::from_secs(tick * STEP_SECS));
            snap.insert(id(0), load + noise(&mut rng));
            snap.insert(id(1), 2.0 * load + 10.0 + noise(&mut rng));
            // The borderline partner mixes signal and noise so its
            // sketch score hovers wherever `mix` puts it.
            snap.insert(id(2), mix * load + (1.0 - mix) * 30.0 * noise(&mut rng));
            engine.step_scores(&snap);
        }

        let mut by_pair: BTreeMap<MeasurementPair, Vec<PairLifecycleEvent>> = BTreeMap::new();
        for event in engine.take_lifecycle_events() {
            by_pair.entry(event.pair).or_default().push(event);
        }
        let min_gap = u64::from(cooldown) * STEP_SECS;
        for (pair, events) in &by_pair {
            for pair_of_events in events.windows(2) {
                let gap = pair_of_events[1].at.as_secs() - pair_of_events[0].at.as_secs();
                prop_assert!(
                    gap >= min_gap,
                    "pair {} flipped twice {}s apart (cooldown window is {}s): \
                     {} then {} (seed {}, mix {:.2}, band {:.2})",
                    pair, gap, min_gap,
                    pair_of_events[0], pair_of_events[1],
                    seed, mix, band
                );
            }
        }
        prop_assert!(engine.take_lifecycle_events().is_empty(), "events drain once");
    }
}

/// A config without the `sketch` key (any pre-sketch snapshot) restores
/// to a sketchless engine, not a panic or an accidental default-on.
#[test]
fn engine_config_without_sketch_key_restores_to_none() {
    let json = serde_json::to_string(&EngineConfig::default()).unwrap();
    let stripped = json.replace(",\"sketch\":null", "");
    assert_ne!(json, stripped, "the sketch key must be present to strip");
    let config: EngineConfig = serde_json::from_str(&stripped).unwrap();
    assert_eq!(config.sketch, None);
}

fn correlated_history() -> (MeasurementPair, PairSeries) {
    let pair = MeasurementPair::new(id(0), id(1)).unwrap();
    let history = PairSeries::from_samples((0..300u64).map(|k| {
        let load = load_at(k, 60);
        (k * STEP_SECS, load, 2.0 * load + 10.0)
    }))
    .unwrap();
    (pair, history)
}

/// Candidate pairs survive an engine snapshot round-trip even though the
/// sketch runtime state itself is rebuilt empty.
#[test]
fn candidates_survive_snapshot_roundtrip() {
    let (pair, history) = correlated_history();
    let candidate = MeasurementPair::new(id(0), id(2)).unwrap();
    let config = EngineConfig {
        sketch: Some(SketchConfig::default()),
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(vec![(pair, history)], config).unwrap();
    engine.add_candidates([candidate]);
    assert_eq!(engine.candidates(), vec![candidate]);
    assert_eq!(engine.tracked_pair_count(), 2);

    let json = serde_json::to_string(&engine.snapshot()).unwrap();
    let restored = DetectionEngine::from_snapshot(serde_json::from_str(&json).unwrap());
    assert_eq!(restored.candidates(), vec![candidate]);
    assert_eq!(restored.tracked_pair_count(), 2);
    assert_eq!(restored.model_count(), 1);
}

/// With the sketch disabled, the gate probe reports inactive and the
/// candidate API degrades to no-ops — the engine behaves exactly as
/// before the sketch stage existed.
#[test]
fn disabled_sketch_is_a_single_branch() {
    let (pair, history) = correlated_history();
    let mut engine =
        DetectionEngine::train(vec![(pair, history)], EngineConfig::default()).unwrap();
    assert!(!engine.sketch_gate_probe());
    engine.add_candidates([MeasurementPair::new(id(0), id(2)).unwrap()]);
    assert!(engine.candidates().is_empty());
    assert_eq!(engine.tracked_pair_count(), 1, "falls back to model count");
    assert_eq!(engine.sketch_bytes(), 0);
    assert!(engine.take_lifecycle_events().is_empty());
    assert_eq!(engine.promotion_count(), 0);
    assert_eq!(engine.demotion_count(), 0);
}

/// End-to-end gated pipeline: a big candidate set where only the truly
/// correlated pairs are promoted, keeping materialized models a small
/// fraction of the tracked population.
#[test]
fn gated_pipeline_materializes_only_correlated_pairs() {
    let (pair, history) = correlated_history();
    let config = EngineConfig {
        sketch: Some(SketchConfig {
            depth: 64,
            admit_rounds: 2,
            cooldown: 20,
            min_history: 30,
            ..SketchConfig::default()
        }),
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(vec![(pair, history)], config).unwrap();
    // 20 candidates off measurement 0: one correlated (tag 2), the rest
    // pure noise.
    let correlated = MeasurementPair::new(id(0), id(2)).unwrap();
    let noisy: Vec<MeasurementPair> = (3..22)
        .map(|tag| MeasurementPair::new(id(0), id(tag)).unwrap())
        .collect();
    engine.add_candidates([correlated]);
    engine.add_candidates(noisy.iter().copied());
    assert_eq!(engine.candidates().len(), 20);

    let mut rng = StdRng::seed_from_u64(7);
    for k in 0..300u64 {
        let tick = 300 + k;
        let load = load_at(tick, 60);
        let mut snap = Snapshot::new(Timestamp::from_secs(tick * STEP_SECS));
        snap.insert(id(0), load + 0.1 * rng.random::<f64>());
        snap.insert(id(1), 2.0 * load + 10.0 + 0.1 * rng.random::<f64>());
        snap.insert(id(2), 3.0 * load + 5.0 + 0.1 * rng.random::<f64>());
        for m in &noisy {
            snap.insert(m.second(), 100.0 * rng.random::<f64>());
        }
        engine.step_scores(&snap);
    }

    assert_eq!(engine.promotion_count(), 1, "only the correlated candidate");
    assert_eq!(engine.model_count(), 2);
    assert!(engine.model(correlated).is_some());
    assert_eq!(engine.candidates().len(), 19);
    assert_eq!(engine.tracked_pair_count(), 21);
    assert!(engine.sketch_bytes() > 0);
    let events = engine.take_lifecycle_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].pair, correlated);
    assert!(events[0].succeeded);
    // Materialized models stay a small fraction of tracked pairs: the
    // acceptance bar for the gate (2 of 21 < 10%; 1 of 20 candidates).
    assert!(engine.model_count() * 10 <= engine.tracked_pair_count() * 2);
}
